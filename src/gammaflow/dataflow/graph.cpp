#include "gammaflow/dataflow/graph.hpp"

#include <ostream>
#include <sstream>
#include <unordered_set>

namespace gammaflow::dataflow {

const std::vector<EdgeId> Graph::kNoEdges;

const std::vector<EdgeId>& Graph::out_edges(NodeId id, PortId port) const {
  if (id >= out_adj_.size() || port >= out_adj_[id].size()) return kNoEdges;
  return out_adj_[id][port];
}

const std::vector<EdgeId>& Graph::in_edges(NodeId id, PortId port) const {
  if (id >= in_adj_.size() || port >= in_adj_[id].size()) return kNoEdges;
  return in_adj_[id][port];
}

std::vector<NodeId> Graph::roots() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::Const) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Graph::outputs() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::Output) out.push_back(id);
  }
  return out;
}

std::optional<NodeId> Graph::find(const std::string& name) const {
  std::optional<NodeId> found;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].name == name) {
      if (found) return std::nullopt;  // ambiguous
      found = id;
    }
  }
  return found;
}

std::optional<EdgeId> Graph::find_edge(Label label) const {
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    if (edges_[id].label == label) return id;
  }
  return std::nullopt;
}

void Graph::validate() const {
  std::unordered_set<Label> labels;
  for (EdgeId eid = 0; eid < edges_.size(); ++eid) {
    const Edge& e = edges_[eid];
    if (e.src >= nodes_.size() || e.dst >= nodes_.size()) {
      throw GraphError("edge " + std::to_string(eid) + " references a missing node");
    }
    if (e.src_port >= output_arity(nodes_[e.src].kind)) {
      throw GraphError("edge '" + e.label.str() + "' leaves invalid port " +
                       std::to_string(e.src_port) + " of " +
                       dataflow::to_string(nodes_[e.src].kind) + " node " +
                       std::to_string(e.src));
    }
    if (e.dst_port >= input_arity(nodes_[e.dst])) {
      throw GraphError("edge '" + e.label.str() + "' enters invalid port " +
                       std::to_string(e.dst_port) + " of " +
                       dataflow::to_string(nodes_[e.dst].kind) + " node " +
                       std::to_string(e.dst));
    }
    if (!labels.insert(e.label).second) {
      throw GraphError("duplicate edge label '" + e.label.str() + "'");
    }
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const std::size_t in_arity = input_arity(nodes_[id]);
    for (PortId p = 0; p < in_arity; ++p) {
      if (in_edges(id, p).empty()) {
        throw GraphError(std::string(dataflow::to_string(nodes_[id].kind)) + " node " +
                         std::to_string(id) +
                         (nodes_[id].name.empty() ? "" : " ('" + nodes_[id].name + "')") +
                         " input port " + std::to_string(p) + " is unconnected");
      }
    }
    if (nodes_[id].kind == NodeKind::Arith &&
        !expr::is_arithmetic(nodes_[id].op)) {
      throw GraphError("arith node " + std::to_string(id) +
                       " carries non-arithmetic operator");
    }
    if (nodes_[id].kind == NodeKind::Cmp && !expr::is_comparison(nodes_[id].op)) {
      throw GraphError("cmp node " + std::to_string(id) +
                       " carries non-comparison operator");
    }
  }
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Graph& g) {
  os << "graph: " << g.node_count() << " nodes, " << g.edge_count() << " edges\n";
  for (NodeId id = 0; id < g.node_count(); ++id) {
    const Node& n = g.node(id);
    os << "  n" << id << " " << to_string(n.kind);
    if (n.kind == NodeKind::Arith || n.kind == NodeKind::Cmp) {
      os << '(' << expr::to_string(n.op) << ')';
    }
    if (n.kind == NodeKind::Const) os << '(' << n.constant << ')';
    if (!n.name.empty()) os << " '" << n.name << "'";
    os << '\n';
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.src << ':' << e.src_port << " -[" << e.label << "]-> n"
       << e.dst << ':' << e.dst_port << '\n';
  }
  return os;
}

// ---- GraphBuilder ----

NodeId GraphBuilder::add_node(Node node) {
  const auto id = static_cast<NodeId>(graph_.nodes_.size());
  graph_.out_adj_.emplace_back(output_arity(node.kind));
  graph_.in_adj_.emplace_back(input_arity(node));
  graph_.nodes_.push_back(std::move(node));
  return id;
}

void GraphBuilder::set_name(NodeId node, std::string name) {
  if (node >= graph_.nodes_.size()) {
    throw GraphError("set_name on missing node");
  }
  graph_.nodes_[node].name = std::move(name);
}

GraphBuilder::Port GraphBuilder::constant(Value v, std::string name) {
  Node n;
  n.kind = NodeKind::Const;
  n.constant = std::move(v);
  n.name = std::move(name);
  return Port{add_node(std::move(n)), 0};
}

NodeId GraphBuilder::arith(expr::BinOp op, std::string name) {
  if (!expr::is_arithmetic(op)) {
    throw GraphError(std::string("arith node requires arithmetic op, got ") +
                     expr::to_string(op));
  }
  Node n;
  n.kind = NodeKind::Arith;
  n.op = op;
  n.name = std::move(name);
  return add_node(std::move(n));
}

NodeId GraphBuilder::cmp(expr::BinOp op, std::string name) {
  if (!expr::is_comparison(op)) {
    throw GraphError(std::string("cmp node requires comparison op, got ") +
                     expr::to_string(op));
  }
  Node n;
  n.kind = NodeKind::Cmp;
  n.op = op;
  n.name = std::move(name);
  return add_node(std::move(n));
}

NodeId GraphBuilder::arith_imm(expr::BinOp op, Value imm, std::string name) {
  const NodeId id = arith(op, std::move(name));
  graph_.nodes_[id].has_immediate = true;
  graph_.nodes_[id].constant = std::move(imm);
  graph_.in_adj_[id].resize(1);
  return id;
}

NodeId GraphBuilder::cmp_imm(expr::BinOp op, Value imm, std::string name) {
  const NodeId id = cmp(op, std::move(name));
  graph_.nodes_[id].has_immediate = true;
  graph_.nodes_[id].constant = std::move(imm);
  graph_.in_adj_[id].resize(1);
  return id;
}

NodeId GraphBuilder::steer(std::string name) {
  Node n;
  n.kind = NodeKind::Steer;
  n.name = std::move(name);
  return add_node(std::move(n));
}

NodeId GraphBuilder::inctag(std::string name) {
  Node n;
  n.kind = NodeKind::IncTag;
  n.name = std::move(name);
  return add_node(std::move(n));
}

NodeId GraphBuilder::dectag(std::string name) {
  Node n;
  n.kind = NodeKind::DecTag;
  n.name = std::move(name);
  return add_node(std::move(n));
}

NodeId GraphBuilder::output(std::string name) {
  if (name.empty()) throw GraphError("output node requires a name");
  Node n;
  n.kind = NodeKind::Output;
  n.name = std::move(name);
  return add_node(std::move(n));
}

EdgeId GraphBuilder::connect(Port src, NodeId dst, PortId dst_port,
                             std::string_view label) {
  std::string label_str(label);
  if (label_str.empty()) {
    label_str = "e" + std::to_string(next_auto_label_++);
  }
  Edge e{src.node, src.port, dst, dst_port, Label(label_str)};
  const auto eid = static_cast<EdgeId>(graph_.edges_.size());
  if (src.node >= graph_.nodes_.size() || dst >= graph_.nodes_.size()) {
    throw GraphError("connect references a missing node");
  }
  if (src.port >= graph_.out_adj_[src.node].size()) {
    throw GraphError("connect from invalid output port");
  }
  if (dst_port >= graph_.in_adj_[dst].size()) {
    throw GraphError("connect to invalid input port");
  }
  graph_.out_adj_[src.node][src.port].push_back(eid);
  graph_.in_adj_[dst][dst_port].push_back(eid);
  graph_.edges_.push_back(std::move(e));
  return eid;
}

GraphBuilder::Port GraphBuilder::arith(expr::BinOp op, Port a, Port b,
                                       std::string name) {
  const NodeId id = arith(op, std::move(name));
  connect(a, id, 0);
  connect(b, id, 1);
  return Port{id, 0};
}

GraphBuilder::Port GraphBuilder::cmp(expr::BinOp op, Port a, Port b,
                                     std::string name) {
  const NodeId id = cmp(op, std::move(name));
  connect(a, id, 0);
  connect(b, id, 1);
  return Port{id, 0};
}

GraphBuilder::Port GraphBuilder::arith_imm(expr::BinOp op, Port a, Value imm,
                                           std::string name) {
  const NodeId id = arith_imm(op, std::move(imm), std::move(name));
  connect(a, id, 0);
  return Port{id, 0};
}

GraphBuilder::Port GraphBuilder::cmp_imm(expr::BinOp op, Port a, Value imm,
                                         std::string name) {
  const NodeId id = cmp_imm(op, std::move(imm), std::move(name));
  connect(a, id, 0);
  return Port{id, 0};
}

NodeId GraphBuilder::steer(Port data, Port control, std::string name) {
  const NodeId id = steer(std::move(name));
  connect(data, id, kSteerData);
  connect(control, id, kSteerControl);
  return id;
}

GraphBuilder::Port GraphBuilder::inctag(Port in, std::string name) {
  const NodeId id = inctag(std::move(name));
  connect(in, id, 0);
  return Port{id, 0};
}

NodeId GraphBuilder::output(Port in, std::string name) {
  const NodeId id = output(std::move(name));
  connect(in, id, 0);
  return id;
}

Graph GraphBuilder::build() && {
  graph_.validate();
  return std::move(graph_);
}

}  // namespace gammaflow::dataflow
