// Dataflow graph D(I, E): nodes are operations, labeled edges carry tagged
// operands between (node, port) endpoints. Edge labels are the bridge to
// Gamma — Algorithm 1 turns each edge label into the multiset element label
// its tokens become.
//
// Structure notes mirroring the paper's figures:
//  * an output port may fan out to several consumers (each its own edge with
//    its own label, like B12/B13 both leaving the Fig. 2 copy point);
//  * an input port may have several producers (the Fig. 2 inctag input is
//    fed by A1 initially and by the steer's loop-back edge A11) — correct
//    merging is guaranteed by the tag discipline, not the structure;
//  * a port with no out-edges discards its tokens (the unused steer FALSE
//    ports in Fig. 2 implement the reactions' "by 0 else").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "gammaflow/common/error.hpp"
#include "gammaflow/common/label.hpp"
#include "gammaflow/dataflow/node.hpp"

namespace gammaflow::dataflow {

using NodeId = std::uint32_t;
using PortId = std::uint32_t;
using EdgeId = std::uint32_t;

struct Edge {
  NodeId src = 0;
  PortId src_port = 0;
  NodeId dst = 0;
  PortId dst_port = 0;
  Label label;
};

class Graph {
 public:
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_.at(id); }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Out-edges of (node, port), in insertion order.
  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId id,
                                                     PortId port) const;
  /// In-edges of (node, port).
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId id,
                                                    PortId port) const;

  /// All root (Const) nodes.
  [[nodiscard]] std::vector<NodeId> roots() const;
  /// All Output nodes.
  [[nodiscard]] std::vector<NodeId> outputs() const;

  /// Looks up a node by name; nullopt when absent or ambiguous.
  [[nodiscard]] std::optional<NodeId> find(const std::string& name) const;
  /// Looks up an edge by label.
  [[nodiscard]] std::optional<EdgeId> find_edge(Label label) const;

  /// Structural checks: port indices in range, arities respected, every
  /// non-root input port fed by at least one edge, unique edge labels.
  /// Throws GraphError describing the first violation.
  void validate() const;

  [[nodiscard]] std::string to_string() const;

 private:
  friend class GraphBuilder;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  // adjacency indexed by flattened (node, port)
  std::vector<std::vector<std::vector<EdgeId>>> out_adj_;  // [node][port]
  std::vector<std::vector<std::vector<EdgeId>>> in_adj_;   // [node][port]
  static const std::vector<EdgeId> kNoEdges;
};

std::ostream& operator<<(std::ostream& os, const Graph& g);

/// Incremental graph construction with auto or explicit edge labels.
class GraphBuilder {
 public:
  /// A (node, output port) handle used to wire consumers.
  struct Port {
    NodeId node = 0;
    PortId port = 0;
  };

  NodeId add_node(Node node);

  /// Renames an existing node (reconstruction labels expression-tree roots
  /// with their reaction's name after building the tree).
  void set_name(NodeId node, std::string name);

  /// Node constructors. `name` is optional except Output (its result key).
  Port constant(Value v, std::string name = {});
  NodeId arith(expr::BinOp op, std::string name = {});
  NodeId cmp(expr::BinOp op, std::string name = {});
  /// Immediate-operand forms: one token input, computes `input op imm`.
  NodeId arith_imm(expr::BinOp op, Value imm, std::string name = {});
  NodeId cmp_imm(expr::BinOp op, Value imm, std::string name = {});
  NodeId steer(std::string name = {});
  NodeId inctag(std::string name = {});
  NodeId dectag(std::string name = {});
  NodeId output(std::string name);

  /// Wires src -> (dst, dst_port). Auto-labels the edge "e<N>" when `label`
  /// is empty. Returns the edge id.
  EdgeId connect(Port src, NodeId dst, PortId dst_port,
                 std::string_view label = {});

  /// Convenience single-output port handles.
  [[nodiscard]] static Port out(NodeId node, PortId port = 0) {
    return Port{node, port};
  }
  [[nodiscard]] static Port true_out(NodeId steer_node) {
    return Port{steer_node, kSteerTrue};
  }
  [[nodiscard]] static Port false_out(NodeId steer_node) {
    return Port{steer_node, kSteerFalse};
  }

  /// One-call wiring helpers: create node and connect inputs (auto labels).
  Port arith(expr::BinOp op, Port a, Port b, std::string name = {});
  Port cmp(expr::BinOp op, Port a, Port b, std::string name = {});
  Port arith_imm(expr::BinOp op, Port a, Value imm, std::string name = {});
  Port cmp_imm(expr::BinOp op, Port a, Value imm, std::string name = {});
  NodeId steer(Port data, Port control, std::string name = {});
  Port inctag(Port in, std::string name = {});
  NodeId output(Port in, std::string name);

  /// Finalizes: validates and returns the graph. The builder is consumed.
  [[nodiscard]] Graph build() &&;

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

 private:
  Graph graph_;
  std::uint32_t next_auto_label_ = 0;
};

}  // namespace gammaflow::dataflow
