#include "gammaflow/dataflow/dot.hpp"

#include <ostream>
#include <sstream>

namespace gammaflow::dataflow {
namespace {

const char* shape(NodeKind kind) {
  switch (kind) {
    case NodeKind::Const: return "square";
    case NodeKind::Arith:
    case NodeKind::Cmp: return "circle";
    case NodeKind::Steer: return "triangle";
    case NodeKind::IncTag:
    case NodeKind::DecTag: return "diamond";
    case NodeKind::Output: return "doublecircle";
  }
  return "circle";
}

std::string node_label(const Node& n) {
  std::ostringstream os;
  switch (n.kind) {
    case NodeKind::Const: os << n.constant; break;
    case NodeKind::Arith:
    case NodeKind::Cmp:
      os << expr::to_string(n.op);
      if (n.has_immediate) os << n.constant;
      break;
    case NodeKind::Steer: os << "steer"; break;
    case NodeKind::IncTag: os << "inctag"; break;
    case NodeKind::DecTag: os << "dectag"; break;
    case NodeKind::Output: os << "out"; break;
  }
  if (!n.name.empty()) os << "\\n" << n.name;
  return os.str();
}

}  // namespace

void write_dot(std::ostream& os, const Graph& graph, const std::string& title) {
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=TB;\n";
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const Node& n = graph.node(id);
    os << "  n" << id << " [shape=" << shape(n.kind) << ", label=\""
       << node_label(n) << "\"];\n";
  }
  for (const Edge& e : graph.edges()) {
    os << "  n" << e.src << " -> n" << e.dst << " [label=\"" << e.label << '"';
    if (graph.node(e.src).kind == NodeKind::Steer) {
      os << (e.src_port == kSteerTrue ? ", taillabel=\"T\""
                                      : ", taillabel=\"F\"");
    }
    os << "];\n";
  }
  os << "}\n";
}

std::string to_dot(const Graph& graph, const std::string& title) {
  std::ostringstream os;
  write_dot(os, graph, title);
  return os.str();
}

}  // namespace gammaflow::dataflow
