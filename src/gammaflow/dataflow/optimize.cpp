#include "gammaflow/dataflow/optimize.hpp"

#include <deque>
#include <optional>
#include <vector>

#include "gammaflow/dataflow/engine.hpp"

namespace gammaflow::dataflow {
namespace {

/// What happens to each node in one rewrite round.
struct Action {
  enum class Kind { Keep, Fold, Bypass, Drop };
  Kind kind = Kind::Keep;
  Value folded;  // Fold: replacement constant
};

/// The single producer of (node, port), when there is exactly one.
std::optional<GraphBuilder::Port> single_producer(const Graph& g, NodeId node,
                                                  PortId port) {
  const auto& in = g.in_edges(node, port);
  if (in.size() != 1) return std::nullopt;
  const Edge& e = g.edge(in[0]);
  return GraphBuilder::Port{e.src, e.src_port};
}

bool is_identity_immediate(const Node& n) {
  if (!n.has_immediate || n.kind != NodeKind::Arith) return false;
  switch (n.op) {
    case expr::BinOp::Add:
    case expr::BinOp::Sub:
      return n.constant == Value(std::int64_t{0});
    case expr::BinOp::Mul:
    case expr::BinOp::Div:
      return n.constant == Value(std::int64_t{1});
    default:
      return false;
  }
}

/// Liveness: reachability to any Output node.
std::vector<bool> live_set(const Graph& g) {
  std::vector<bool> live(g.node_count(), false);
  std::deque<NodeId> queue;
  for (const NodeId out : g.outputs()) {
    live[out] = true;
    queue.push_back(out);
  }
  // Predecessor propagation over edges.
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    for (const Edge& e : g.edges()) {
      if (e.dst == n && !live[e.src]) {
        live[e.src] = true;
        queue.push_back(e.src);
      }
    }
  }
  return live;
}

/// One rewrite round; returns nullopt when nothing changed.
std::optional<Graph> round(const Graph& g, const OptimizeOptions& options,
                           OptimizeResult& stats) {
  std::vector<Action> actions(g.node_count());
  bool changed = false;

  if (options.fold_constants || options.bypass_identities) {
    for (NodeId id = 0; id < g.node_count(); ++id) {
      const Node& n = g.node(id);
      if (n.kind != NodeKind::Arith && n.kind != NodeKind::Cmp) continue;

      if (options.bypass_identities && is_identity_immediate(n) &&
          single_producer(g, id, 0)) {
        actions[id].kind = Action::Kind::Bypass;
        ++stats.bypassed;
        changed = true;
        continue;
      }
      if (!options.fold_constants) continue;

      // Foldable: every input port fed by exactly one Const node.
      std::vector<Value> inputs;
      bool foldable = true;
      const std::size_t arity = input_arity(n);
      for (PortId p = 0; p < arity && foldable; ++p) {
        const auto src = single_producer(g, id, p);
        foldable = src && g.node(src->node).kind == NodeKind::Const;
        if (foldable) inputs.push_back(g.node(src->node).constant);
      }
      if (!foldable) continue;
      try {
        const Firing f = fire_node(n, inputs, 0);
        actions[id].kind = Action::Kind::Fold;
        actions[id].folded = f.value;
        ++stats.folded;
        changed = true;
      } catch (const Error&) {
        // would throw at runtime (e.g. 1/0): preserve for the real run
      }
    }
  }

  std::vector<bool> live(g.node_count(), true);
  if (options.eliminate_dead) {
    live = live_set(g);
    for (NodeId id = 0; id < g.node_count(); ++id) {
      if (!live[id] && actions[id].kind == Action::Kind::Keep) {
        actions[id].kind = Action::Kind::Drop;
        ++stats.removed;
        changed = true;
      } else if (!live[id]) {
        actions[id].kind = Action::Kind::Drop;  // folded AND dead: just drop
        changed = true;
      }
    }
  }
  if (!changed) return std::nullopt;

  // Rebuild. Folded nodes become Consts; bypassed nodes vanish (their
  // consumers rewire to the producer); dropped nodes and their edges vanish.
  GraphBuilder b;
  std::vector<NodeId> remap(g.node_count(), 0);
  for (NodeId id = 0; id < g.node_count(); ++id) {
    switch (actions[id].kind) {
      case Action::Kind::Keep:
        remap[id] = b.add_node(g.node(id));
        break;
      case Action::Kind::Fold: {
        Node c;
        c.kind = NodeKind::Const;
        c.constant = actions[id].folded;
        c.name = g.node(id).name;
        remap[id] = b.add_node(std::move(c));
        break;
      }
      case Action::Kind::Bypass:
      case Action::Kind::Drop:
        break;
    }
  }

  // Resolves (node, port) through bypass chains to a surviving source.
  auto resolve = [&](GraphBuilder::Port p) -> std::optional<GraphBuilder::Port> {
    while (actions[p.node].kind == Action::Kind::Bypass) {
      const auto src = single_producer(g, p.node, 0);
      if (!src) return std::nullopt;  // unreachable: bypass requires one
      p = *src;
    }
    if (actions[p.node].kind == Action::Kind::Drop) return std::nullopt;
    if (actions[p.node].kind == Action::Kind::Fold) {
      return GraphBuilder::Port{remap[p.node], 0};
    }
    return GraphBuilder::Port{remap[p.node], p.port};
  };

  for (const Edge& e : g.edges()) {
    const auto dst_kind = actions[e.dst].kind;
    if (dst_kind == Action::Kind::Drop || dst_kind == Action::Kind::Bypass ||
        dst_kind == Action::Kind::Fold) {
      continue;  // consumer gone or no longer takes inputs
    }
    const auto src = resolve(GraphBuilder::Port{e.src, e.src_port});
    if (!src) continue;
    b.connect(*src, remap[e.dst], e.dst_port, e.label.str());
  }
  return std::move(b).build();
}

}  // namespace

OptimizeResult optimize(const Graph& graph, const OptimizeOptions& options) {
  OptimizeResult result;
  result.graph = graph;
  while (result.iterations < options.max_iterations) {
    auto next = round(result.graph, options, result);
    if (!next) break;
    result.graph = std::move(*next);
    ++result.iterations;
  }
  return result;
}

}  // namespace gammaflow::dataflow
