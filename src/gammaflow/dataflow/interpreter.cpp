// Interpreter: single-threaded tagged-token machine processed in wavefronts.
// Each wavefront fires every node instance that became ready in the previous
// one — so `result.wavefronts` is the graph's exposed parallelism over time
// (what a machine with unbounded PEs could do per step), while execution
// itself stays deterministic.
#include <array>
#include <deque>
#include <unordered_map>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::dataflow {

std::string journal_token_str(const Graph& graph, NodeId dst, PortId port,
                              Tag tag, const Value& value) {
  const Node& n = graph.node(dst);
  std::string s = n.name.empty() ? std::string("n") : n.name;
  s += '#';
  s += std::to_string(dst);
  s += '.';
  s += std::to_string(port);
  s += " t";
  s += std::to_string(tag);
  s += " = ";
  s += value.to_string();
  return s;
}

std::string journal_output_str(const std::string& name, Tag tag,
                               const Value& value) {
  return "out " + name + " t" + std::to_string(tag) + " = " +
         value.to_string();
}

namespace {

struct ReadyInstance {
  NodeId node;
  Tag tag;
  std::vector<Value> inputs;
};

// Local aliases: the journal renderings are shared with the parallel engine
// (declared in engine.hpp); these keep the call sites short.
constexpr auto tok_str = journal_token_str;
constexpr auto out_str = journal_output_str;

class Machine {
 public:
  Machine(const Graph& graph, const DfRunOptions& options)
      : graph_(graph),
        options_(options),
        loop_(options, options.max_fires, "interpreter", "max_fires"),
        trace_(options),
        telemetry_(options, "df"),
        waiting_(graph.node_count()) {
    result_.fires_by_node.assign(graph.node_count(), 0);
    if (options.compile) code_ = compile_graph(graph);
    if ((jrec_ = options.record) != nullptr) {
      // The dataflow "store" is the set of parked tokens plus captured
      // outputs; it starts empty (Const roots and injections are fires).
      jrec_->begin("interpreter", "dataflow", {});
    }
    if ((tel_ = telemetry_.sink()) != nullptr) {
      rec_ = telemetry_.recorder("df-interpreter");
      tag_hist_ = &tel_->stats().hist("df.inctag_depth");
      wave_hist_ = &tel_->stats().hist("df.wavefront_width");
      ready_hist_ = &tel_->stats().hist("df.ready_queue_depth");
    }
  }

  void deliver(NodeId node, PortId port, Token token) {
    const std::size_t arity = input_arity(graph_.node(node));
    if (arity == 1) {
      ready_.push_back(ReadyInstance{node, token.tag, {std::move(token.value)}});
      return;
    }
    // Tag-matching store: operands wait until all ports hold this tag.
    auto& slots = waiting_[node][token.tag];
    if (slots.values.empty()) slots.values.resize(arity);
    if (slots.values[port].has_value()) {
      // A second operand for an occupied (tag, port) slot means the graph
      // violates the single-assignment discipline for this iteration.
      throw EngineError("duplicate operand at node " + std::to_string(node) +
                        " port " + std::to_string(port) + " tag " +
                        std::to_string(token.tag));
    }
    slots.values[port] = std::move(token.value);
    if (++slots.filled == arity) {
      std::vector<Value> inputs;
      inputs.reserve(arity);
      for (auto& v : slots.values) inputs.push_back(std::move(*v));
      waiting_[node].erase(token.tag);
      ready_.push_back(ReadyInstance{node, token.tag, std::move(inputs)});
    }
  }

  void emit_from(NodeId node, const Firing& firing,
                 std::vector<std::string>* produced = nullptr) {
    if (!firing.emits) return;
    if (tel_ != nullptr) {
      const NodeKind kind = graph_.node(node).kind;
      if (kind == NodeKind::Steer) {
        ++(firing.port == kSteerData ? steer_true_ : steer_false_);
      } else if (kind == NodeKind::IncTag) {
        tag_hist_->observe(static_cast<double>(firing.tag));
      }
    }
    const auto& edges = graph_.out_edges(node, firing.port);
    // No consumer => the token is discarded (steer FALSE port in Fig. 2).
    for (const EdgeId eid : edges) {
      const Edge& e = graph_.edge(eid);
      if (produced != nullptr) {
        produced->push_back(
            tok_str(graph_, e.dst, e.dst_port, firing.tag, firing.value));
      }
      deliver(e.dst, e.dst_port, Token{firing.value, firing.tag});
    }
  }

  DfRunResult run(const std::vector<std::pair<Label, Token>>& extra_tokens) {
    for (const NodeId root : graph_.roots()) {
      if (stopping()) break;
      const Firing f = fire_node(graph_.node(root), {}, 0);
      count_fire(root);
      std::vector<std::string> produced;
      emit_from(root, f, jrec_ != nullptr ? &produced : nullptr);
      record_fire(root, nullptr, std::move(produced));
    }
    for (const auto& [label, token] : extra_tokens) {
      const auto eid = graph_.find_edge(label);
      if (!eid) throw EngineError("inject on unknown edge '" + label.str() + "'");
      const Edge& e = graph_.edge(*eid);
      if (jrec_ != nullptr) {
        obs::FireRecord fr;
        fr.reaction = "inject:" + label.str();
        fr.produced.push_back(
            tok_str(graph_, e.dst, e.dst_port, token.tag, token.value));
        jrec_->fire(std::move(fr));
      }
      deliver(e.dst, e.dst_port, token);
    }

    while (!ready_.empty() && loop_.running()) {
      // One wavefront: everything currently ready fires "simultaneously".
      const std::size_t wave = ready_.size();
      result_.wavefronts.push_back(wave);
      obs::Span wave_span(tel_, rec_, "wavefront");
      if (tel_ != nullptr) {
        wave_span.set_arg(wave);
        wave_hist_->observe(static_cast<double>(wave));
      }
      for (std::size_t i = 0; i < wave; ++i) {
        if (stopping()) break;  // unfired instances become leftovers
        ReadyInstance inst = std::move(ready_.front());
        ready_.pop_front();
        const Node& node = graph_.node(inst.node);
        count_fire(inst.node);
        if (node.kind == NodeKind::Output) {
          if (jrec_ != nullptr) {
            record_fire(inst.node, &inst,
                        {out_str(node.name, inst.tag, inst.inputs[0])});
          }
          result_.outputs[node.name].emplace_back(inst.tag,
                                                  std::move(inst.inputs[0]));
          continue;
        }
        std::vector<std::string> produced;
        const Firing f = compute(node, inst);
        emit_from(inst.node, f, jrec_ != nullptr ? &produced : nullptr);
        record_fire(inst.node, &inst, std::move(produced));
      }
      if (jrec_ != nullptr) jrec_->round(snapshot());
      // Ready tokens the wavefront produced for the next one: the token
      // queue depth over time.
      if (tel_ != nullptr) {
        ready_hist_->observe(static_cast<double>(ready_.size()));
      }
    }

    collect_leftovers();
    if (tel_ != nullptr) {
      auto& stats = tel_->stats();
      for (std::size_t k = 0; k < fires_by_kind_.size(); ++k) {
        if (fires_by_kind_[k] > 0) {
          stats.count(std::string("df.fires.") +
                          to_string(static_cast<NodeKind>(k)),
                      fires_by_kind_[k]);
        }
      }
      stats.count("df.fires", result_.fires);
      stats.count("df.steer_true", steer_true_);
      stats.count("df.steer_false", steer_false_);
      if (options_.compile) {
        stats.count("df.compiled_nodes", code_.compiled_nodes);
        stats.hist("expr.compile_ms").observe(code_.compile_ms);
      }
    }
    result_.outcome = loop_.outcome();
    result_.trace = trace_.take();
    result_.trace_dropped = trace_.dropped();
    telemetry_.finish(result_.outcome, result_.metrics);
    if (jrec_ != nullptr) jrec_->finish(to_string(result_.outcome), snapshot());
    result_.wall_seconds = loop_.wall_seconds();
    return std::move(result_);
  }

 private:
  struct Slots {
    std::vector<std::optional<Value>> values;
    std::size_t filled = 0;
  };

  /// Fires `node`, with DF-DTM-style trace reuse for pure operator nodes
  /// when enabled: the same (node, operands) always produces the same value,
  /// so a cache hit skips the computation. Tag-dependent kinds (inctag,
  /// dectag) and routing (steer — cheap anyway) always execute.
  Firing compute(const Node& node, const ReadyInstance& inst) {
    const bool cacheable =
        options_.memoize &&
        (node.kind == NodeKind::Arith || node.kind == NodeKind::Cmp);
    if (!cacheable) {
      return fire_node(node, inst.inputs, inst.tag, code_.chunk(inst.node),
                       vm_);
    }

    // Operation-level reuse: the cache is keyed by the OPERATION signature
    // (kind, operator, immediate), not the node id, so identical
    // computations share entries across nodes — exactly what makes the
    // Fig. 4 replicated instances profit from each other's traces.
    std::size_t key =
        (static_cast<std::size_t>(node.kind) << 8) ^
        (static_cast<std::size_t>(node.op) << 1) ^
        static_cast<std::size_t>(node.has_immediate);
    if (node.has_immediate) key ^= node.constant.hash() << 16;
    for (const Value& v : inst.inputs) {
      key ^= v.hash() + 0x9e3779b97f4a7c15ULL + (key << 6) + (key >> 2);
    }
    const auto [lo, hi] = memo_.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      const MemoEntry& e = it->second;
      if (e.kind == node.kind && e.op == node.op &&
          e.has_immediate == node.has_immediate &&
          (!node.has_immediate || e.immediate == node.constant) &&
          e.inputs == inst.inputs) {
        ++result_.memo_hits;
        Firing f;
        f.emits = true;
        f.value = e.value;
        f.tag = inst.tag;  // the value repeats; the iteration does not
        return f;
      }
    }
    ++result_.memo_misses;
    Firing f = fire_node(node, inst.inputs, inst.tag, code_.chunk(inst.node),
                         vm_);
    memo_.emplace(key, MemoEntry{node.kind, node.op, node.has_immediate,
                                 node.constant, inst.inputs, f.value});
    return f;
  }

  struct MemoEntry {
    NodeKind kind;
    expr::BinOp op;
    bool has_immediate;
    Value immediate;
    std::vector<Value> inputs;
    Value value;
  };

  /// Cooperative stop probe: budget, then cancel/deadline. Sticky through
  /// the StepLoop's outcome so enclosing loops unwind without firing further.
  [[nodiscard]] bool stopping() {
    if (!loop_.running()) return true;
    if (!loop_.admit(result_.fires)) return true;
    return loop_.should_stop();
  }

  /// Journals one firing: consumed operands from `inst` (null for Const
  /// roots, which fire from nothing), produced token strings from the
  /// emission. No-op when recording is off.
  void record_fire(NodeId node, const ReadyInstance* inst,
                   std::vector<std::string> produced) {
    if (jrec_ == nullptr) return;
    obs::FireRecord fr;
    const Node& n = graph_.node(node);
    fr.reaction = n.name.empty()
                      ? std::string(to_string(n.kind)) + "#" +
                            std::to_string(node)
                      : n.name;
    if (inst != nullptr) {
      fr.consumed.reserve(inst->inputs.size());
      for (PortId p = 0; p < inst->inputs.size(); ++p) {
        fr.consumed.push_back(
            tok_str(graph_, node, p, inst->tag, inst->inputs[p]));
      }
    }
    fr.produced = std::move(produced);
    jrec_->fire(std::move(fr));
  }

  /// The journal's store view: every parked token (ready or tag-matching)
  /// plus every captured output.
  [[nodiscard]] obs::StoreCounts snapshot() const {
    obs::StoreCounts counts;
    for (const ReadyInstance& inst : ready_) {
      for (PortId p = 0; p < inst.inputs.size(); ++p) {
        ++counts[tok_str(graph_, inst.node, p, inst.tag, inst.inputs[p])];
      }
    }
    for (NodeId node = 0; node < waiting_.size(); ++node) {
      for (const auto& [tag, slots] : waiting_[node]) {
        for (PortId p = 0; p < slots.values.size(); ++p) {
          if (slots.values[p].has_value()) {
            ++counts[tok_str(graph_, node, p, tag, *slots.values[p])];
          }
        }
      }
    }
    for (const auto& [name, tokens] : result_.outputs) {
      for (const auto& [tag, value] : tokens) {
        ++counts[out_str(name, tag, value)];
      }
    }
    return counts;
  }

  void count_fire(NodeId node) {
    ++result_.fires;
    ++result_.fires_by_node[node];
    if (tel_ != nullptr) {
      ++fires_by_kind_[static_cast<std::size_t>(graph_.node(node).kind)];
    }
    if (trace_.admit()) trace_.push(node);
  }

  void collect_leftovers() {
    // On an early stop, ready-but-unfired instances are still part of the
    // machine state: surface their operands instead of dropping them.
    for (const ReadyInstance& inst : ready_) {
      for (PortId p = 0; p < inst.inputs.size(); ++p) {
        result_.leftovers.push_back(
            PendingOperand{inst.node, p, inst.tag, inst.inputs[p]});
      }
    }
    for (NodeId node = 0; node < waiting_.size(); ++node) {
      for (const auto& [tag, slots] : waiting_[node]) {
        for (PortId p = 0; p < slots.values.size(); ++p) {
          if (slots.values[p].has_value()) {
            result_.leftovers.push_back(
                PendingOperand{node, p, tag, *slots.values[p]});
          }
        }
      }
    }
  }

  const Graph& graph_;
  const DfRunOptions& options_;
  runtime::StepLoop loop_;
  runtime::TraceSink<NodeId> trace_;
  runtime::EngineTelemetry telemetry_;
  std::vector<std::unordered_map<Tag, Slots>> waiting_;
  std::deque<ReadyInstance> ready_;
  std::unordered_multimap<std::size_t, MemoEntry> memo_;
  GraphCode code_;  // empty (all-null chunks) when options.compile is off
  expr::Vm vm_;
  DfRunResult result_;

  obs::Telemetry* tel_ = nullptr;
  obs::ThreadRecorder* rec_ = nullptr;
  obs::RunRecorder* jrec_ = nullptr;
  Histogram* tag_hist_ = nullptr;
  Histogram* wave_hist_ = nullptr;
  Histogram* ready_hist_ = nullptr;
  std::array<std::uint64_t, 7> fires_by_kind_{};
  std::uint64_t steer_true_ = 0;
  std::uint64_t steer_false_ = 0;
};

}  // namespace

DfRunResult Interpreter::run(
    const Graph& graph, const DfRunOptions& options,
    const std::vector<std::pair<Label, Token>>& extra_tokens) const {
  graph.validate();
  Machine machine(graph, options);
  return machine.run(extra_tokens);
}

}  // namespace gammaflow::dataflow
