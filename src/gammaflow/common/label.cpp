#include "gammaflow/common/label.hpp"

#include <deque>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <unordered_map>

namespace gammaflow {
namespace {

// Reader-mostly interning table. Strings live in a deque so `str()` references
// stay valid across growth; lookups take a shared lock, insertions exclusive.
class LabelTable {
 public:
  static LabelTable& instance() {
    static LabelTable table;
    return table;
  }

  Label::Id intern(std::string_view name) {
    {
      std::shared_lock lock(mutex_);
      if (auto it = ids_.find(std::string(name)); it != ids_.end()) {
        return it->second;
      }
    }
    std::unique_lock lock(mutex_);
    auto [it, inserted] = ids_.try_emplace(std::string(name),
                                           static_cast<Label::Id>(names_.size()));
    if (inserted) names_.emplace_back(it->first);
    return it->second;
  }

  const std::string& name(Label::Id id) const {
    std::shared_lock lock(mutex_);
    return names_[id];
  }

  std::size_t size() const {
    std::shared_lock lock(mutex_);
    return names_.size();
  }

 private:
  LabelTable() {
    names_.emplace_back("");
    ids_.emplace("", 0);
  }

  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;
  std::unordered_map<std::string, Label::Id> ids_;
};

}  // namespace

Label::Label(std::string_view name) : id_(LabelTable::instance().intern(name)) {}

const std::string& Label::str() const noexcept {
  return LabelTable::instance().name(id_);
}

std::size_t Label::interned_count() { return LabelTable::instance().size(); }

std::ostream& operator<<(std::ostream& os, Label label) {
  return os << label.str();
}

}  // namespace gammaflow
