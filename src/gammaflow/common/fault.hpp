// Deterministic fault injection for the distributed simulation. A FaultPlan
// declares WHAT can go wrong (message loss, duplication, reordering delay,
// transient node crashes, scheduled ring partitions); a FaultInjector draws
// every probabilistic decision from its own seeded RNG stream, so a given
// (plan, seed) pair replays the exact same failure schedule — which is what
// makes every recovery path unit-testable.
//
// The injector's stream is independent of the nodes' chemistry RNGs:
// enabling faults perturbs the network, not which reactions the nodes would
// have picked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gammaflow/common/error.hpp"
#include "gammaflow/common/rng.hpp"

namespace gammaflow {

/// Seed-deterministic membership churn for the elastic cluster: scheduled
/// joins/leaves pinned to exact rounds, plus an optional random churn rate.
/// Leaves are GRACEFUL (the node drains before deactivating) — crashes stay
/// in FaultPlan proper. Node 0 never leaves: it is the Safra initiator and
/// the consolidation collector.
struct MembershipPlan {
  /// A membership event pinned to an exact (round, node). For a join the
  /// node must be a spare index >= the initial cluster size (capacity =
  /// nodes + joins); for a leave it must be a node that is a member at that
  /// round (initial or previously joined) other than node 0.
  struct Event {
    std::size_t round = 0;
    std::size_t node = 0;
  };
  std::vector<Event> joins;
  std::vector<Event> leaves;

  /// P(a random membership event this round): a leave of a random non-zero
  /// member, or a rejoin of a node that previously completed a leave.
  double churn_rate = 0.0;
  /// Total random events are capped so a churny run still quiesces.
  std::size_t max_churn = 8;

  [[nodiscard]] bool any() const noexcept {
    return !joins.empty() || !leaves.empty() || churn_rate > 0.0;
  }

  /// Throws ProgramError on malformed schedules. Needs the cluster size to
  /// check join spares; events at round 0 would race initial placement.
  void validate(std::size_t nodes) const {
    if (churn_rate < 0.0 || churn_rate > 1.0) {
      throw ProgramError("MembershipPlan::churn_rate must be a probability "
                         "in [0,1], got " + std::to_string(churn_rate));
    }
    for (const Event& e : joins) {
      if (e.round == 0) {
        throw ProgramError("MembershipPlan join rounds start at 1 (round 0 "
                           "is initial placement)");
      }
      if (e.node < nodes) {
        throw ProgramError("MembershipPlan joins node " +
                           std::to_string(e.node) +
                           " but joining nodes must be spare indices >= the "
                           "initial cluster size " + std::to_string(nodes));
      }
      std::size_t uses = 0;
      for (const Event& other : joins) {
        if (other.node == e.node) ++uses;
      }
      if (uses > 1) {
        throw ProgramError("MembershipPlan schedules node " +
                           std::to_string(e.node) + " to join twice");
      }
    }
    for (const Event& e : leaves) {
      if (e.round == 0) {
        throw ProgramError("MembershipPlan leave rounds start at 1");
      }
      if (e.node == 0) {
        throw ProgramError("node 0 cannot leave: it is the Safra initiator "
                           "and the consolidation collector");
      }
      if (e.node >= nodes) {
        bool joins_first = false;
        for (const Event& j : joins) {
          joins_first = joins_first || (j.node == e.node && j.round < e.round);
        }
        if (!joins_first) {
          throw ProgramError("MembershipPlan schedules node " +
                             std::to_string(e.node) +
                             " to leave but it never joins before that");
        }
      }
    }
  }
};

/// Declarative failure schedule for a simulated cluster run. Probabilities
/// are per PHYSICAL message; crash_rate is per node per round.
struct FaultPlan {
  /// P(a physical message copy vanishes in the network).
  double loss = 0.0;
  /// P(the network delivers an extra copy of a message).
  double duplication = 0.0;
  /// P(a message is delayed by extra rounds beyond the base latency).
  double reorder = 0.0;
  /// Max extra rounds a reordered message is delayed (uniform in [1, jitter]).
  std::size_t reorder_jitter = 3;

  /// P(an up node crashes this round); loses its volatile state, which is
  /// restored from the replica checkpointed at its ring successor.
  double crash_rate = 0.0;
  /// Rounds a crashed node stays down (drops everything addressed to it).
  std::size_t crash_downtime = 3;
  /// Total spontaneous crashes are capped so a faulty run still quiesces.
  std::size_t max_crashes = 16;

  /// A crash pinned to an exact (round, node) — for regression tests that
  /// need the failure at a protocol-relevant moment (e.g. token in hand).
  struct Crash {
    std::size_t round = 0;
    std::size_t node = 0;
    std::size_t downtime = 3;
  };
  std::vector<Crash> crashes;

  /// Ring partition: during rounds [start, start+duration) every message
  /// between the node groups [0, cut) and [cut, N) is dropped.
  struct Partition {
    std::size_t start = 0;
    std::size_t duration = 0;
    std::size_t cut = 1;
  };
  std::vector<Partition> partitions;

  /// Rounds the Safra initiator waits without seeing the token before it
  /// declares the token lost and regenerates it. 0 = derived from cluster
  /// size and latency (see distrib/cluster.cpp).
  std::size_t token_timeout = 0;

  /// Membership churn schedule (graceful joins/leaves). Not a fault in the
  /// crash sense — leaves drain instead of losing state — but it rides in
  /// the FaultPlan because it perturbs the same protocol machinery (Safra
  /// generations, the ring, the retry loop) and must replay from the same
  /// seed. Does NOT count toward any()/crashes_possible().
  MembershipPlan membership;

  [[nodiscard]] bool any() const noexcept {
    return loss > 0.0 || duplication > 0.0 || reorder > 0.0 ||
           crash_rate > 0.0 || !crashes.empty() || !partitions.empty();
  }
  [[nodiscard]] bool crashes_possible() const noexcept {
    return crash_rate > 0.0 || !crashes.empty();
  }

  /// Throws ProgramError on out-of-range probabilities or degenerate knobs.
  void validate() const {
    auto probability = [](double p, const char* name) {
      if (p < 0.0 || p > 1.0) {
        throw ProgramError(std::string("FaultPlan::") + name +
                           " must be a probability in [0,1], got " +
                           std::to_string(p));
      }
    };
    probability(loss, "loss");
    probability(duplication, "duplication");
    probability(reorder, "reorder");
    probability(crash_rate, "crash_rate");
    if (reorder > 0.0 && reorder_jitter == 0) {
      throw ProgramError("FaultPlan::reorder_jitter must be >= 1 when "
                         "reordering is enabled");
    }
    if (crashes_possible() && crash_downtime == 0) {
      throw ProgramError("FaultPlan::crash_downtime must be >= 1 when "
                         "crashes are enabled");
    }
    // Membership is validated by the cluster (it knows the node count).
  }
};

/// Draws every fault decision from a dedicated seeded stream. Decisions are
/// consumed in simulation order, so a fixed (plan, seed) replays exactly.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed)
      : plan_(std::move(plan)), rng_(seed ^ kStreamSalt) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Should this physical message copy be dropped?
  [[nodiscard]] bool lose() noexcept {
    return plan_.loss > 0.0 && rng_.coin(plan_.loss);
  }
  /// Should the network emit an extra copy?
  [[nodiscard]] bool duplicate() noexcept {
    return plan_.duplication > 0.0 && rng_.coin(plan_.duplication);
  }
  /// Extra delivery delay in rounds (0 = in order).
  [[nodiscard]] std::size_t jitter() noexcept {
    if (plan_.reorder <= 0.0 || !rng_.coin(plan_.reorder)) return 0;
    return 1 + static_cast<std::size_t>(rng_.bounded(plan_.reorder_jitter));
  }
  /// Does `node` spontaneously crash this round? (Scheduled crashes are the
  /// caller's job; this only rolls the crash_rate dice, capped.)
  [[nodiscard]] bool spontaneous_crash() noexcept {
    if (plan_.crash_rate <= 0.0 || spontaneous_ >= plan_.max_crashes) {
      return false;
    }
    if (!rng_.coin(plan_.crash_rate)) return false;
    ++spontaneous_;
    return true;
  }
  /// Does a random membership event happen this round? (Scheduled joins and
  /// leaves are the caller's job; this only rolls the churn_rate dice,
  /// capped by max_churn.)
  [[nodiscard]] bool spontaneous_churn() noexcept {
    if (plan_.membership.churn_rate <= 0.0 ||
        churned_ >= plan_.membership.max_churn) {
      return false;
    }
    if (!rng_.coin(plan_.membership.churn_rate)) return false;
    ++churned_;
    return true;
  }

  /// Is the link a <-> b cut by a scheduled partition during `round`?
  [[nodiscard]] bool severed(std::size_t a, std::size_t b,
                             std::size_t round) const noexcept {
    for (const FaultPlan::Partition& p : plan_.partitions) {
      if (round < p.start || round >= p.start + p.duration) continue;
      if ((a < p.cut) != (b < p.cut)) return true;
    }
    return false;
  }

 private:
  static constexpr std::uint64_t kStreamSalt = 0xfa0172c8d15ea5edULL;
  FaultPlan plan_;
  Rng rng_;
  std::size_t spontaneous_ = 0;
  std::size_t churned_ = 0;
};

}  // namespace gammaflow
