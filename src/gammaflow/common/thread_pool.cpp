#include "gammaflow/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace gammaflow {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Block-partition so each worker touches a contiguous range (cache-friendly
  // and one future per worker, not per element).
  const std::size_t chunks = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
    begin = end;
  }
  for (auto& f : futures) f.get();
}

}  // namespace gammaflow
