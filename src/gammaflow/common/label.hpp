// Interned labels. Gamma elements produced by Algorithm 1 carry an edge label
// ("A1", "B12", ...) that reactions match on; interning makes matching an
// integer compare / bucket lookup instead of a string compare. The table is
// process-wide and thread-safe (symbols, like in a compiler), so labels flow
// freely between a dataflow graph and the Gamma program converted from it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace gammaflow {

class Label {
 public:
  using Id = std::uint32_t;

  /// The default-constructed label is the distinguished empty label "".
  Label() noexcept : id_(0) {}

  /// Interns (or finds) `name`. O(1) amortized; thread-safe.
  explicit Label(std::string_view name);

  [[nodiscard]] Id id() const noexcept { return id_; }
  [[nodiscard]] const std::string& str() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return id_ == 0; }

  friend bool operator==(Label a, Label b) noexcept { return a.id_ == b.id_; }
  friend bool operator!=(Label a, Label b) noexcept { return a.id_ != b.id_; }
  /// Orders by interning id (creation order), not lexicographically; stable
  /// within a process which is all canonicalization needs.
  friend bool operator<(Label a, Label b) noexcept { return a.id_ < b.id_; }

  /// Number of distinct labels interned so far (diagnostics / bench sizing).
  static std::size_t interned_count();

 private:
  Id id_;
};

std::ostream& operator<<(std::ostream& os, Label label);

}  // namespace gammaflow

template <>
struct std::hash<gammaflow::Label> {
  std::size_t operator()(gammaflow::Label l) const noexcept {
    return std::hash<gammaflow::Label::Id>{}(l.id());
  }
};
