// Cooperative cancellation and deadlines for the engines. A run can be told
// to stop three ways — an external CancelToken, a wall-clock deadline, or a
// firing budget with LimitPolicy::Partial — and in every case the engine
// returns a VALID partial state (multiset / outputs so far, metrics filled,
// worker threads joined) with RunResult::outcome saying why it stopped,
// instead of throwing mid-flight.
//
// The RunGovernor is the per-thread checker: the shared token is one relaxed
// atomic load per call, and the clock is consulted only every kStride calls
// so the probe can sit inside the hottest engine loops.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gammaflow {

/// Why a run returned. Completed is the fixed point / drained graph; the
/// other three are cooperative early exits with valid partial state.
enum class Outcome : std::uint8_t {
  Completed = 0,
  DeadlineExceeded,
  Cancelled,
  BudgetExhausted,
};

[[nodiscard]] constexpr const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::Completed: return "completed";
    case Outcome::DeadlineExceeded: return "deadline_exceeded";
    case Outcome::Cancelled: return "cancelled";
    case Outcome::BudgetExhausted: return "budget_exhausted";
  }
  return "unknown";
}

/// What an engine does when its firing budget (max_steps / max_fires) runs
/// out: Throw preserves the historical EngineError; Partial returns the
/// state reached so far with Outcome::BudgetExhausted.
enum class LimitPolicy : std::uint8_t { Throw, Partial };

/// Shared stop flag. Any thread may cancel(); engine threads poll it through
/// their RunGovernor. Reusable across runs via reset().
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Converts RunOptions::deadline (seconds from run start; <= 0 disables)
/// into an absolute time point all of a run's governors share.
[[nodiscard]] inline std::chrono::steady_clock::time_point deadline_from_now(
    double seconds) noexcept {
  if (seconds <= 0.0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// Per-thread cancellation/deadline checker. Not thread-safe: each engine
/// worker owns one, sharing the token and the absolute deadline.
class RunGovernor {
 public:
  /// Clock probes are amortized: the deadline is checked once per kStride
  /// should_stop() calls (the token on every call — it is one atomic load).
  static constexpr std::uint64_t kStride = 64;

  RunGovernor(const CancelToken* token,
              std::chrono::steady_clock::time_point deadline) noexcept
      : token_(token),
        deadline_(deadline),
        armed_(token != nullptr ||
               deadline != std::chrono::steady_clock::time_point::max()) {}

  RunGovernor(const CancelToken* token, double deadline_seconds) noexcept
      : RunGovernor(token, deadline_from_now(deadline_seconds)) {}

  /// True once the run must wind down; sticky. Call from the engine's loop.
  [[nodiscard]] bool should_stop() noexcept {
    if (!armed_) return false;
    if (outcome_ != Outcome::Completed) return true;
    if (token_ != nullptr && token_->cancelled()) {
      outcome_ = Outcome::Cancelled;
      return true;
    }
    if (++calls_ % kStride == 0 &&
        deadline_ != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= deadline_) {
      outcome_ = Outcome::DeadlineExceeded;
      return true;
    }
    return false;
  }

  /// Why should_stop() fired; Completed while the run may continue.
  [[nodiscard]] Outcome outcome() const noexcept { return outcome_; }

 private:
  const CancelToken* token_;
  std::chrono::steady_clock::time_point deadline_;
  bool armed_;
  std::uint64_t calls_ = 0;
  Outcome outcome_ = Outcome::Completed;
};

}  // namespace gammaflow
