// Deterministic, fast PRNG (xoshiro256** seeded via splitmix64). Every
// nondeterministic choice in the engines (which reaction fires, which subset
// of the multiset reacts, worker tie-breaking in tests) flows through this so
// experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace gammaflow {

/// splitmix64: seed expander; also usable standalone for hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (rejection sampling
  /// over the largest multiple of `bound` representable in 64 bits).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = max() - max() % bound;
    while (true) {
      const std::uint64_t x = (*this)();
      if (x < threshold) return x % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  bool coin(double p = 0.5) noexcept { return uniform() < p; }

  /// Derives an independent child stream (for per-worker RNGs).
  Rng split() noexcept { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace gammaflow
