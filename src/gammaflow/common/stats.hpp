// Lightweight execution statistics shared by both runtimes and the benches:
// monotonically increasing counters (thread-safe) and a streaming summary
// accumulator (count/min/max/mean/variance via Welford).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace gammaflow {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Welford's online mean/variance; single-writer (merge for multi-writer).
class Summary {
 public:
  void observe(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named-metric registry a run can fill and a bench can print uniformly.
class StatsRegistry {
 public:
  void record(const std::string& name, double x);
  void count(const std::string& name, std::uint64_t n = 1);
  [[nodiscard]] Summary summary(const std::string& name) const;
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  void clear();

  friend std::ostream& operator<<(std::ostream& os, const StatsRegistry& reg);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Summary> summaries_;
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace gammaflow
