// Lightweight execution statistics shared by both runtimes and the benches:
// monotonically increasing counters (thread-safe), a streaming summary
// accumulator (count/min/max/mean/variance via Welford), log-bucketed
// latency histograms, and a named-metric registry with plain-value
// snapshots that travel inside RunResult/DfRunResult.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <mutex>
#include <string>

namespace gammaflow {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Welford's online mean/variance; single-writer (merge for multi-writer).
class Summary {
 public:
  void observe(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  void merge(const Summary& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Plain-value view of a Histogram; copyable, lives inside RunResult.
/// Bucket b counts observations x with 2^(b-1) <= x < 2^b (bucket 0: x < 1).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  /// Estimated value at quantile q in [0,1]: the upper bound of the bucket
  /// containing the q-th observation (exact for min/max extremes).
  [[nodiscard]] double quantile(double q) const noexcept;
  void merge(const HistogramSnapshot& other) noexcept;
};

/// Log-bucketed (powers of two) histogram; lock-free multi-writer recording
/// through relaxed atomics, so engines can observe from worker threads
/// without serializing on a mutex.
class Histogram {
 public:
  void observe(double x) noexcept;
  /// Bulk form: records `n` observations of value x in O(1) — the shape
  /// engines use to replay a per-process bucket tally (e.g. batch widths)
  /// into a run-scoped histogram without n individual observes.
  void observe_n(double x, std::uint64_t n) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  /// Bucket index for value x (shared with HistogramSnapshot::quantile).
  [[nodiscard]] static std::size_t bucket_of(double x) noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Everything a StatsRegistry held, as plain values: the form in which a
/// run's metrics are returned to callers and serialized by the benches.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Summary> summaries;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && summaries.empty() && histograms.empty();
  }
  /// Adds counters, merges summaries and histograms name-by-name.
  void merge(const MetricsSnapshot& other);

  friend std::ostream& operator<<(std::ostream& os, const MetricsSnapshot& m);
};

/// Named-metric registry a run can fill and a bench can print uniformly.
class StatsRegistry {
 public:
  void record(const std::string& name, double x);
  void count(const std::string& name, std::uint64_t n = 1);
  /// Named histogram; created on first use. The returned reference stays
  /// valid for the registry's lifetime (node-based map) and is safe to
  /// observe from multiple threads without further locking.
  Histogram& hist(const std::string& name);
  void observe_hist(const std::string& name, double x) { hist(name).observe(x); }

  [[nodiscard]] Summary summary(const std::string& name) const;
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] MetricsSnapshot snapshot() const;
  void clear();

  friend std::ostream& operator<<(std::ostream& os, const StatsRegistry& reg);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Summary> summaries_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Process-global registry for code without a run-scoped sink (thread pool,
/// allocator-ish helpers). Prefer the run-scoped StatsRegistry inside
/// obs::Telemetry where one is available.
StatsRegistry& global_stats();

}  // namespace gammaflow
