// Tiny leveled logger. Off (Warn) by default so engine hot loops stay silent;
// tests and examples can raise verbosity, and the GF_LOG_LEVEL environment
// variable ("trace".."error") sets the startup threshold. Thread-safe
// line-at-a-time output.
#pragma once

#include <chrono>
#include <iosfwd>
#include <optional>
#include <sstream>
#include <string>

namespace gammaflow {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global threshold; messages below it are discarded before formatting cost
/// where the GF_LOG macro is used. Initialized from GF_LOG_LEVEL when set.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// "trace"/"debug"/"info"/"warn"/"warning"/"error" -> level; nullopt for
/// anything else (including null).
std::optional<LogLevel> parse_log_level(const char* name) noexcept;

/// Emits one line ("<ISO-8601 UTC> t<NN> [level] message") to stderr under
/// a lock.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace gammaflow

#define GF_LOG(level)                                      \
  if (static_cast<int>(level) <                            \
      static_cast<int>(::gammaflow::log_level())) {        \
  } else                                                   \
    ::gammaflow::detail::LogStream(level)

#define GF_TRACE GF_LOG(::gammaflow::LogLevel::Trace)
#define GF_DEBUG GF_LOG(::gammaflow::LogLevel::Debug)
#define GF_INFO GF_LOG(::gammaflow::LogLevel::Info)
#define GF_WARN GF_LOG(::gammaflow::LogLevel::Warn)
#define GF_ERROR GF_LOG(::gammaflow::LogLevel::Error)
