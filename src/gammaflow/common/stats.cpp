#include "gammaflow/common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

namespace gammaflow {

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::size_t Histogram::bucket_of(double x) noexcept {
  if (!(x >= 1.0)) return 0;  // also catches NaN
  const double capped = std::min(x, 0x1p62);
  const auto n = static_cast<std::uint64_t>(capped);
  const auto b = static_cast<std::size_t>(std::bit_width(n));
  return std::min(b, HistogramSnapshot::kBuckets - 1);
}

void Histogram::observe(double x) noexcept {
  buckets_[bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (x < cur &&
         !min_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {}
  cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {}
}

void Histogram::observe_n(double x, std::uint64_t n) noexcept {
  if (n == 0) return;
  buckets_[bucket_of(x)].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(x * static_cast<double>(n), std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (x < cur &&
         !min_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {}
  cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {}
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < s.buckets.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = s.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return s;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > rank) {
      if (b == 0) return std::min(1.0, max);
      const double hi = std::ldexp(1.0, static_cast<int>(b));
      return std::min(hi, max);
    }
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, n] : other.counters) counters[name] += n;
  for (const auto& [name, s] : other.summaries) summaries[name].merge(s);
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

std::ostream& operator<<(std::ostream& os, const MetricsSnapshot& m) {
  for (const auto& [name, value] : m.counters) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, s] : m.summaries) {
    os << name << ": n=" << s.count() << " mean=" << s.mean()
       << " min=" << s.min() << " max=" << s.max() << '\n';
  }
  for (const auto& [name, h] : m.histograms) {
    os << name << ": n=" << h.count << " mean=" << h.mean()
       << " p50=" << h.quantile(0.5) << " p99=" << h.quantile(0.99)
       << " max=" << h.max << '\n';
  }
  return os;
}

void StatsRegistry::record(const std::string& name, double x) {
  std::lock_guard lock(mutex_);
  summaries_[name].observe(x);
}

void StatsRegistry::count(const std::string& name, std::uint64_t n) {
  std::lock_guard lock(mutex_);
  counters_[name] += n;
}

Histogram& StatsRegistry::hist(const std::string& name) {
  std::lock_guard lock(mutex_);
  return histograms_[name];
}

Summary StatsRegistry::summary(const std::string& name) const {
  std::lock_guard lock(mutex_);
  if (auto it = summaries_.find(name); it != summaries_.end()) return it->second;
  return {};
}

std::uint64_t StatsRegistry::counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  if (auto it = counters_.find(name); it != counters_.end()) return it->second;
  return 0;
}

MetricsSnapshot StatsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot s;
  s.counters = counters_;
  s.summaries = summaries_;
  for (const auto& [name, h] : histograms_) s.histograms[name] = h.snapshot();
  return s;
}

void StatsRegistry::clear() {
  std::lock_guard lock(mutex_);
  summaries_.clear();
  counters_.clear();
  histograms_.clear();
}

std::ostream& operator<<(std::ostream& os, const StatsRegistry& reg) {
  return os << reg.snapshot();
}

StatsRegistry& global_stats() {
  static StatsRegistry registry;
  return registry;
}

}  // namespace gammaflow
