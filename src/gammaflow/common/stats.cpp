#include "gammaflow/common/stats.hpp"

#include <algorithm>
#include <ostream>

namespace gammaflow {

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StatsRegistry::record(const std::string& name, double x) {
  std::lock_guard lock(mutex_);
  summaries_[name].observe(x);
}

void StatsRegistry::count(const std::string& name, std::uint64_t n) {
  std::lock_guard lock(mutex_);
  counters_[name] += n;
}

Summary StatsRegistry::summary(const std::string& name) const {
  std::lock_guard lock(mutex_);
  if (auto it = summaries_.find(name); it != summaries_.end()) return it->second;
  return {};
}

std::uint64_t StatsRegistry::counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  if (auto it = counters_.find(name); it != counters_.end()) return it->second;
  return 0;
}

void StatsRegistry::clear() {
  std::lock_guard lock(mutex_);
  summaries_.clear();
  counters_.clear();
}

std::ostream& operator<<(std::ostream& os, const StatsRegistry& reg) {
  std::lock_guard lock(reg.mutex_);
  for (const auto& [name, value] : reg.counters_) {
    os << name << " = " << value << '\n';
  }
  for (const auto& [name, s] : reg.summaries_) {
    os << name << ": n=" << s.count() << " mean=" << s.mean()
       << " min=" << s.min() << " max=" << s.max() << '\n';
  }
  return os;
}

}  // namespace gammaflow
