#include "gammaflow/common/value.hpp"

#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>

namespace gammaflow {
namespace {

[[noreturn]] void kind_error(const char* op, const Value& a, const Value& b) {
  throw TypeError(std::string(op) + " not defined for (" +
                  to_string(a.kind()) + ", " + to_string(b.kind()) + ")");
}

[[noreturn]] void kind_error(const char* op, const Value& a) {
  throw TypeError(std::string(op) + " not defined for " + to_string(a.kind()));
}

}  // namespace

const char* to_string(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::Nil: return "nil";
    case ValueKind::Int: return "int";
    case ValueKind::Real: return "real";
    case ValueKind::Bool: return "bool";
    case ValueKind::Str: return "str";
  }
  return "?";
}

std::int64_t Value::as_int() const {
  if (const auto* p = std::get_if<std::int64_t>(&rep_)) return *p;
  throw TypeError(std::string("expected int, got ") + gammaflow::to_string(kind()));
}

double Value::as_real() const {
  if (const auto* p = std::get_if<double>(&rep_)) return *p;
  throw TypeError(std::string("expected real, got ") + gammaflow::to_string(kind()));
}

bool Value::as_bool() const {
  if (const auto* p = std::get_if<bool>(&rep_)) return *p;
  throw TypeError(std::string("expected bool, got ") + gammaflow::to_string(kind()));
}

const std::string& Value::as_str() const {
  if (const auto* p = std::get_if<std::string>(&rep_)) return *p;
  throw TypeError(std::string("expected str, got ") + gammaflow::to_string(kind()));
}

double Value::to_real() const {
  if (const auto* p = std::get_if<std::int64_t>(&rep_)) {
    return static_cast<double>(*p);
  }
  if (const auto* p = std::get_if<double>(&rep_)) return *p;
  throw TypeError(std::string("expected numeric, got ") + gammaflow::to_string(kind()));
}

bool Value::truthy() const {
  if (const auto* p = std::get_if<bool>(&rep_)) return *p;
  if (const auto* p = std::get_if<std::int64_t>(&rep_)) return *p != 0;
  throw TypeError(std::string("no boolean interpretation for ") +
                  gammaflow::to_string(kind()));
}

std::string Value::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::size_t Value::hash() const noexcept {
  const std::size_t kind_salt = rep_.index() * 0x9e3779b97f4a7c15ULL;
  return std::visit(
      [kind_salt](const auto& v) -> std::size_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return kind_salt;
        } else {
          return kind_salt ^ std::hash<T>{}(v);
        }
      },
      rep_);
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case ValueKind::Nil: return os << "nil";
    case ValueKind::Int: return os << v.as_int();
    case ValueKind::Real: {
      // Always keep a decimal marker so Real round-trips distinctly from Int.
      std::ostringstream tmp;
      tmp << v.as_real();
      std::string s = tmp.str();
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return os << s;
    }
    case ValueKind::Bool: return os << (v.as_bool() ? "true" : "false");
    case ValueKind::Str: return os << '\'' << v.as_str() << '\'';
  }
  return os;
}

namespace {

template <typename IntOp, typename RealOp>
Value numeric_binop(const char* name, const Value& a, const Value& b,
                    IntOp int_op, RealOp real_op) {
  if (a.is_int() && b.is_int()) return int_op(a.as_int(), b.as_int());
  if (a.is_numeric() && b.is_numeric()) return real_op(a.to_real(), b.to_real());
  kind_error(name, a, b);
}

}  // namespace

Value add(const Value& a, const Value& b) {
  if (a.is_str() && b.is_str()) return Value(a.as_str() + b.as_str());
  return numeric_binop(
      "add", a, b,
      [](std::int64_t x, std::int64_t y) { return Value(x + y); },
      [](double x, double y) { return Value(x + y); });
}

Value sub(const Value& a, const Value& b) {
  return numeric_binop(
      "sub", a, b,
      [](std::int64_t x, std::int64_t y) { return Value(x - y); },
      [](double x, double y) { return Value(x - y); });
}

Value mul(const Value& a, const Value& b) {
  return numeric_binop(
      "mul", a, b,
      [](std::int64_t x, std::int64_t y) { return Value(x * y); },
      [](double x, double y) { return Value(x * y); });
}

Value div(const Value& a, const Value& b) {
  return numeric_binop(
      "div", a, b,
      [](std::int64_t x, std::int64_t y) {
        if (y == 0) throw TypeError("integer division by zero");
        return Value(x / y);
      },
      [](double x, double y) {
        if (y == 0.0) throw TypeError("real division by zero");
        return Value(x / y);
      });
}

Value mod(const Value& a, const Value& b) {
  if (a.is_int() && b.is_int()) {
    if (b.as_int() == 0) throw TypeError("mod by zero");
    return Value(a.as_int() % b.as_int());
  }
  kind_error("mod", a, b);
}

Value neg(const Value& a) {
  if (a.is_int()) return Value(-a.as_int());
  if (a.is_real()) return Value(-a.as_real());
  kind_error("neg", a);
}

namespace {

/// Shared ordering core: returns -1/0/+1, or throws on incomparable kinds.
int compare(const char* name, const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.to_real();
    const double y = b.to_real();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.is_str() && b.is_str()) {
    return a.as_str().compare(b.as_str()) < 0   ? -1
           : a.as_str().compare(b.as_str()) > 0 ? 1
                                                : 0;
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  kind_error(name, a, b);
}

}  // namespace

Value cmp_lt(const Value& a, const Value& b) { return Value(compare("lt", a, b) < 0); }
Value cmp_le(const Value& a, const Value& b) { return Value(compare("le", a, b) <= 0); }
Value cmp_gt(const Value& a, const Value& b) { return Value(compare("gt", a, b) > 0); }
Value cmp_ge(const Value& a, const Value& b) { return Value(compare("ge", a, b) >= 0); }

Value cmp_eq(const Value& a, const Value& b) {
  // Numeric cross-kind equality compares by value (1 == 1.0) so conditions in
  // converted programs behave like the paper's untyped examples; other kinds
  // use structural equality.
  if (a.is_numeric() && b.is_numeric()) return Value(a.to_real() == b.to_real());
  if (a.kind() != b.kind()) return Value(false);
  return Value(a == b);
}

Value cmp_ne(const Value& a, const Value& b) {
  return Value(!cmp_eq(a, b).as_bool());
}

Value logic_and(const Value& a, const Value& b) {
  return Value(a.truthy() && b.truthy());
}

Value logic_or(const Value& a, const Value& b) {
  return Value(a.truthy() || b.truthy());
}

Value logic_not(const Value& a) { return Value(!a.truthy()); }

}  // namespace gammaflow
