// Value: the dynamically-typed scalar carried on dataflow edges and stored in
// Gamma multiset elements. Supports the operations the paper's examples need
// (integer/real arithmetic, comparisons, boolean logic) with checked,
// promoting semantics: int op double -> double; division by zero and type
// mismatches raise TypeError.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>

#include "gammaflow/common/error.hpp"

namespace gammaflow {

enum class ValueKind : std::uint8_t { Nil, Int, Real, Bool, Str };

/// Returns a stable lowercase name ("nil", "int", ...) for diagnostics.
const char* to_string(ValueKind kind) noexcept;

class Value {
 public:
  Value() noexcept : rep_(std::monostate{}) {}
  Value(std::int64_t v) noexcept : rep_(v) {}        // NOLINT(google-explicit-constructor)
  Value(int v) noexcept : rep_(std::int64_t{v}) {}   // NOLINT(google-explicit-constructor)
  Value(double v) noexcept : rep_(v) {}              // NOLINT(google-explicit-constructor)
  Value(bool v) noexcept : rep_(v) {}                // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::move(v)) {}       // NOLINT(google-explicit-constructor)
  Value(const char* v) : rep_(std::string(v)) {}     // NOLINT(google-explicit-constructor)

  [[nodiscard]] ValueKind kind() const noexcept {
    return static_cast<ValueKind>(rep_.index());
  }
  [[nodiscard]] bool is_nil() const noexcept { return kind() == ValueKind::Nil; }
  [[nodiscard]] bool is_int() const noexcept { return kind() == ValueKind::Int; }
  [[nodiscard]] bool is_real() const noexcept { return kind() == ValueKind::Real; }
  [[nodiscard]] bool is_bool() const noexcept { return kind() == ValueKind::Bool; }
  [[nodiscard]] bool is_str() const noexcept { return kind() == ValueKind::Str; }
  [[nodiscard]] bool is_numeric() const noexcept { return is_int() || is_real(); }

  /// Non-throwing accessors: pointer to the payload, or nullptr on kind
  /// mismatch. Inline so hot loops (the bytecode Vm) can test-and-read
  /// without an out-of-line call.
  [[nodiscard]] const std::int64_t* if_int() const noexcept {
    return std::get_if<std::int64_t>(&rep_);
  }
  [[nodiscard]] const bool* if_bool() const noexcept {
    return std::get_if<bool>(&rep_);
  }

  /// Accessors throw TypeError when the stored kind differs.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_str() const;

  /// Numeric widening: Int or Real -> double. Throws on other kinds.
  [[nodiscard]] double to_real() const;

  /// "Truthiness" used by steer control inputs and Gamma conditions: Bool as
  /// itself, Int nonzero, everything else a TypeError.
  [[nodiscard]] bool truthy() const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Structural equality (kind + payload). Int 1 != Real 1.0 — important for
  /// deterministic round-trip comparisons.
  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) noexcept {
    return !(a == b);
  }
  /// Total order over (kind, payload), used to canonicalize multisets.
  friend bool operator<(const Value& a, const Value& b) noexcept {
    return a.rep_ < b.rep_;
  }

 private:
  std::variant<std::monostate, std::int64_t, double, bool, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Checked arithmetic with int->real promotion. Division: int/int is integer
/// division (C semantics, as the paper's loop example uses integers); any
/// real operand promotes. Mod requires two ints.
Value add(const Value& a, const Value& b);
Value sub(const Value& a, const Value& b);
Value mul(const Value& a, const Value& b);
Value div(const Value& a, const Value& b);
Value mod(const Value& a, const Value& b);
Value neg(const Value& a);

/// Comparisons produce Bool; numeric operands compare after promotion,
/// strings lexicographically, bools as false<true. Mixed non-numeric kinds
/// raise TypeError.
Value cmp_lt(const Value& a, const Value& b);
Value cmp_le(const Value& a, const Value& b);
Value cmp_gt(const Value& a, const Value& b);
Value cmp_ge(const Value& a, const Value& b);
Value cmp_eq(const Value& a, const Value& b);
Value cmp_ne(const Value& a, const Value& b);

/// Boolean logic; operands must satisfy truthy()'s domain.
Value logic_and(const Value& a, const Value& b);
Value logic_or(const Value& a, const Value& b);
Value logic_not(const Value& a);

}  // namespace gammaflow

template <>
struct std::hash<gammaflow::Value> {
  std::size_t operator()(const gammaflow::Value& v) const noexcept {
    return v.hash();
  }
};
