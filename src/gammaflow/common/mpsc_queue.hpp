// Unbounded multi-producer single-consumer queue used for PE token inboxes in
// the parallel dataflow engine, plus a simple bounded MPMC variant for the
// Gamma parallel engine's work distribution. Both are mutex+condvar based:
// on this workload the hot path is the matching store, not the queue, and a
// blocking queue gives us clean idle/termination semantics.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace gammaflow {

template <typename T>
class MpscQueue {
 public:
  void push(T item) {
    {
      std::lock_guard lock(mutex_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Drains everything currently queued into `out`; returns items drained.
  std::size_t drain(std::vector<T>& out) {
    std::lock_guard lock(mutex_);
    const std::size_t n = items_.size();
    out.reserve(out.size() + n);
    for (auto& item : items_) out.push_back(std::move(item));
    items_.clear();
    return n;
  }

  [[nodiscard]] bool empty() const {
    std::lock_guard lock(mutex_);
    return items_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
};

}  // namespace gammaflow
