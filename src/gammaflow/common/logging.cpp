#include "gammaflow/common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace gammaflow {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_output_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_output_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace gammaflow
