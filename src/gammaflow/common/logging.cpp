#include "gammaflow/common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>

namespace gammaflow {
namespace {

int initial_level() {
  const auto parsed = parse_log_level(std::getenv("GF_LOG_LEVEL"));
  return static_cast<int>(parsed.value_or(LogLevel::Warn));
}

std::atomic<int> g_level{initial_level()};
std::mutex g_output_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
  }
  return "?";
}

/// Small sequential thread ids ("t01") — far more readable in interleaved
/// logs than the opaque values std::thread::id prints.
unsigned this_thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1);
  return id;
}

/// "2026-08-06T12:34:56.789Z" (UTC, millisecond precision).
void format_timestamp(char (&buf)[32]) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  const std::size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03dZ", static_cast<int>(ms));
}

}  // namespace

std::optional<LogLevel> parse_log_level(const char* name) noexcept {
  if (name == nullptr) return std::nullopt;
  const std::string_view s(name);
  if (s == "trace") return LogLevel::Trace;
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn" || s == "warning") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  return std::nullopt;
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  char ts[32];
  format_timestamp(ts);
  const unsigned tid = this_thread_id();
  std::lock_guard lock(g_output_mutex);
  std::cerr << ts << " t" << (tid < 10 ? "0" : "") << tid << " ["
            << level_name(level) << "] " << message << '\n';
}

}  // namespace gammaflow
