// Minimal task-based thread pool. Both parallel engines manage their own
// worker loops for tight control over termination detection; the pool serves
// the translate/analysis layers (parallel instancing of reaction graphs,
// bulk equivalence checks) and tests that need concurrent load.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gammaflow {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("submit on stopped ThreadPool");
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace gammaflow
