// Error taxonomy for gammaflow. All library errors derive from gammaflow::Error
// so callers can catch the whole family; specific types let tests pin failure
// modes (type misuse vs malformed graphs vs parse errors vs engine limits).
#pragma once

#include <stdexcept>
#include <string>

namespace gammaflow {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Value-level misuse: wrong kind, bad promotion, division by zero.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("TypeError: " + what) {}
};

/// Structurally invalid dataflow graph (dangling edge, bad port, cycle of
/// constants, ...), detected by GraphBuilder/validate.
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error("GraphError: " + what) {}
};

/// Invalid Gamma program construction (arity mismatch, unknown variable, ...).
class ProgramError : public Error {
 public:
  explicit ProgramError(const std::string& what) : Error("ProgramError: " + what) {}
};

/// Surface-syntax errors from the Gamma DSL lexer/parser, with location.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error("ParseError at " + std::to_string(line) + ":" +
              std::to_string(column) + ": " + what),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Runtime engine failures: step-limit exhaustion, deadlocked graph (tokens
/// left but nothing fireable), termination-detection violations.
class EngineError : public Error {
 public:
  explicit EngineError(const std::string& what) : Error("EngineError: " + what) {}
};

/// Translator failures: constructs Algorithm 1/2 cannot express.
class TranslateError : public Error {
 public:
  explicit TranslateError(const std::string& what)
      : Error("TranslateError: " + what) {}
};

}  // namespace gammaflow
