#include "gammaflow/gamma/program.hpp"

#include <ostream>
#include <sstream>

#include "gammaflow/common/error.hpp"

namespace gammaflow::gamma {

Program operator|(Program a, Program b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.stage_count() != 1 || b.stage_count() != 1) {
    throw ProgramError(
        "parallel composition requires single-stage operands; "
        "compose stages with then() instead");
  }
  for (Reaction& r : b.stages_[0]) {
    a.stages_[0].push_back(std::move(r));
  }
  return a;
}

Program Program::from_stages(std::vector<std::vector<Reaction>> stages) {
  Program out;
  for (auto& stage : stages) {
    if (stage.empty()) continue;
    out.stages_.push_back(std::move(stage));
  }
  return out;
}

Program Program::then(Program next) const {
  Program out = *this;
  for (auto& stage : next.stages_) {
    out.stages_.push_back(std::move(stage));
  }
  return out;
}

std::size_t Program::reaction_count() const noexcept {
  std::size_t n = 0;
  for (const auto& stage : stages_) n += stage.size();
  return n;
}

std::vector<const Reaction*> Program::all_reactions() const {
  std::vector<const Reaction*> out;
  out.reserve(reaction_count());
  for (const auto& stage : stages_) {
    for (const Reaction& r : stage) out.push_back(&r);
  }
  return out;
}

const Reaction* Program::find(const std::string& name) const noexcept {
  for (const auto& stage : stages_) {
    for (const Reaction& r : stage) {
      if (r.name() == name) return &r;
    }
  }
  return nullptr;
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Program& p) {
  for (std::size_t s = 0; s < p.stages().size(); ++s) {
    if (s > 0) os << ";\n\n";
    const auto& stage = p.stages()[s];
    for (std::size_t i = 0; i < stage.size(); ++i) {
      if (i > 0) os << "\n\n";
      os << stage[i];
    }
  }
  return os;
}

}  // namespace gammaflow::gamma
