#include "gammaflow/gamma/reaction.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

#include "gammaflow/common/error.hpp"
#include "gammaflow/expr/eval.hpp"

namespace gammaflow::gamma {

Reaction::Reaction(std::string name, std::vector<Pattern> patterns,
                   std::vector<Branch> branches)
    : name_(std::move(name)),
      patterns_(std::move(patterns)),
      branches_(std::move(branches)) {
  validate();
}

void Reaction::validate() const {
  if (patterns_.empty()) {
    throw ProgramError("reaction '" + name_ + "' has an empty replace list");
  }
  if (branches_.empty()) {
    throw ProgramError("reaction '" + name_ + "' has no by clause");
  }
  std::set<std::string> bound;
  for (const Pattern& p : patterns_) {
    if (p.arity() == 0) {
      throw ProgramError("reaction '" + name_ + "' has an empty pattern");
    }
    for (const std::string& b : p.binders()) bound.insert(b);
  }
  for (std::size_t i = 0; i < branches_.size(); ++i) {
    const Branch& br = branches_[i];
    if (br.is_else && i + 1 != branches_.size()) {
      throw ProgramError("reaction '" + name_ + "': else branch must be last");
    }
    if (br.is_else && br.condition) {
      throw ProgramError("reaction '" + name_ +
                         "': else branch cannot carry a condition");
    }
    if (!br.is_else && !br.condition && branches_.size() > 1) {
      throw ProgramError(
          "reaction '" + name_ +
          "': an unconditional branch cannot coexist with other branches");
    }
    auto check_vars = [&](const expr::ExprPtr& e, const char* where) {
      for (const std::string& v : e->free_vars()) {
        if (!bound.contains(v)) {
          throw ProgramError("reaction '" + name_ + "': " + where +
                             " references unbound variable '" + v + "'");
        }
      }
    };
    if (br.condition) check_vars(br.condition, "condition");
    for (const auto& tuple : br.outputs) {
      if (tuple.empty()) {
        throw ProgramError("reaction '" + name_ + "' produces an empty tuple");
      }
      for (const auto& field : tuple) check_vars(field, "output");
    }
  }
}

bool Reaction::match(std::span<const Element* const> elements,
                     expr::Env& env) const {
  if (elements.size() != patterns_.size()) return false;
  env.clear();
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    if (!patterns_[i].match(*elements[i], env)) return false;
  }
  return true;
}

std::optional<std::vector<Element>> Reaction::apply(const expr::Env& env) const {
  const Branch* firing = nullptr;
  for (const Branch& br : branches_) {
    if (br.is_else || !br.condition) {
      firing = &br;
      break;
    }
    if (expr::eval(br.condition, env).truthy()) {
      firing = &br;
      break;
    }
  }
  if (!firing) return std::nullopt;

  std::vector<Element> produced;
  produced.reserve(firing->outputs.size());
  for (const auto& tuple : firing->outputs) {
    std::vector<Value> fields;
    fields.reserve(tuple.size());
    for (const auto& field : tuple) fields.push_back(expr::eval(field, env));
    produced.emplace_back(std::move(fields));
  }
  return produced;
}

std::optional<std::vector<Element>> Reaction::try_fire(
    std::span<const Element* const> elements) const {
  expr::Env env;
  if (!match(elements, env)) return std::nullopt;
  return apply(env);
}

bool Reaction::is_shrinking() const noexcept {
  return std::all_of(branches_.begin(), branches_.end(), [&](const Branch& br) {
    return br.outputs.size() < patterns_.size();
  });
}

std::string Reaction::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Reaction& r) {
  os << r.name() << " = replace ";
  for (std::size_t i = 0; i < r.patterns().size(); ++i) {
    if (i > 0) os << ", ";
    os << r.patterns()[i];
  }
  for (const Branch& br : r.branches()) {
    os << "\n  by ";
    if (br.outputs.empty()) {
      os << '0';
    } else {
      for (std::size_t i = 0; i < br.outputs.size(); ++i) {
        if (i > 0) os << ", ";
        os << '[';
        for (std::size_t j = 0; j < br.outputs[i].size(); ++j) {
          if (j > 0) os << ", ";
          os << br.outputs[i][j]->to_string();
        }
        os << ']';
      }
    }
    if (br.condition) {
      os << " if " << br.condition->to_string();
    } else if (br.is_else) {
      os << " else";
    }
  }
  return os;
}

}  // namespace gammaflow::gamma
