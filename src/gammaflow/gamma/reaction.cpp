#include "gammaflow/gamma/reaction.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <set>
#include <sstream>

#include "gammaflow/common/error.hpp"
#include "gammaflow/expr/eval.hpp"

namespace gammaflow::gamma {

CompiledReaction::CompiledReaction(const Reaction& reaction) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Pattern& p : reaction.patterns()) {
    for (const PatternField& f : p.fields()) {
      if (f.is_binder() &&
          std::find(slots_.begin(), slots_.end(), f.name()) == slots_.end()) {
        slots_.push_back(f.name());
      }
    }
  }
  const std::span<const std::string> slot_span(slots_);
  branches_.reserve(reaction.branches().size());
  for (const Branch& br : reaction.branches()) {
    BranchCode bc;
    bc.is_else = br.is_else;
    if (br.condition) bc.condition = expr::compile(br.condition, slot_span);
    bc.outputs.reserve(br.outputs.size());
    for (const auto& tuple : br.outputs) {
      std::vector<expr::Chunk> fields;
      fields.reserve(tuple.size());
      for (const auto& field : tuple) {
        fields.push_back(expr::compile(field, slot_span));
      }
      bc.outputs.push_back(std::move(fields));
    }
    branches_.push_back(std::move(bc));
  }
  build_batch_plan(reaction);
  compile_ms_ = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
}

void CompiledReaction::build_batch_plan(const Reaction& reaction) {
  const Pattern& inner = reaction.patterns().back();
  BatchPlan plan;
  plan.arity = inner.arity();
  plan.slot_is_vector.assign(slots_.size(), 0);

  const auto slot_index = [&](const std::string& name) {
    const auto it = std::find(slots_.begin(), slots_.end(), name);
    return static_cast<std::uint16_t>(it - slots_.begin());
  };

  // A binder already bound by an OUTER pattern reaches the innermost match
  // as an equality constraint (broadcast scalar); one first bound by the
  // innermost pattern itself becomes a lane column.
  std::vector<std::uint8_t> outer_bound(slots_.size(), 0);
  for (std::size_t p = 0; p + 1 < reaction.patterns().size(); ++p) {
    for (const PatternField& f : reaction.patterns()[p].fields()) {
      if (f.is_binder()) outer_bound[slot_index(f.name())] = 1;
    }
  }

  const auto key = inner.key_constraint();
  if (key) plan.key_field = static_cast<std::uint16_t>(key->first);

  std::vector<std::uint16_t> first_field(slots_.size(), BatchPlan::kNoField);
  const auto& fields = inner.fields();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const PatternField& f = fields[i];
    const auto fi = static_cast<std::uint16_t>(i);
    if (!f.is_binder()) {
      if (fi == plan.key_field) continue;  // the probed bucket guarantees it
      BatchPlan::FieldCheck c;
      c.field = fi;
      if (const std::int64_t* v = f.value().if_int()) {
        c.kind = BatchPlan::FieldCheck::Kind::LitInt;
        c.imm = *v;
      } else {
        c.kind = BatchPlan::FieldCheck::Kind::Lit;
        c.value = f.value();
      }
      plan.checks.push_back(std::move(c));
      continue;
    }
    const std::uint16_t s = slot_index(f.name());
    BatchPlan::FieldCheck c;
    c.field = fi;
    if (outer_bound[s] != 0) {
      c.kind = BatchPlan::FieldCheck::Kind::EqSlot;
      c.slot = s;
      plan.checks.push_back(std::move(c));
    } else if (first_field[s] != BatchPlan::kNoField) {
      c.kind = BatchPlan::FieldCheck::Kind::EqField;
      c.other = first_field[s];
      plan.checks.push_back(std::move(c));
    } else {
      first_field[s] = fi;
      plan.vector_slots.push_back(BatchPlan::VectorSlot{s, fi});
      plan.slot_is_vector[s] = 1;
    }
  }

  // Batch-compile every guard; any refusal disables the plan wholesale —
  // mixing lane bitmaps with scalar branch probes cannot preserve the
  // first-firing-branch order.
  plan.cond_slot_used.assign(slots_.size(), 0);
  plan.conditions.reserve(branches_.size());
  for (const BranchCode& bc : branches_) {
    if (!bc.condition) {
      plan.conditions.emplace_back(std::nullopt);
      continue;
    }
    auto batch = expr::compile_batch(*bc.condition, plan.slot_is_vector);
    if (!batch) return;  // not batchable: leave batch_ empty
    for (std::size_t s = 0; s < batch->slot_used.size(); ++s) {
      if (batch->slot_used[s] != 0) plan.cond_slot_used[s] = 1;
    }
    plan.conditions.emplace_back(std::move(*batch));
  }
  batch_ = std::move(plan);
}

std::size_t CompiledReaction::instr_count() const noexcept {
  std::size_t n = 0;
  for (const BranchCode& bc : branches_) {
    if (bc.condition) n += bc.condition->code.size();
    for (const auto& tuple : bc.outputs) {
      for (const expr::Chunk& c : tuple) n += c.code.size();
    }
  }
  return n;
}

void CompiledReaction::bind_slots(const expr::Env& env,
                                  std::vector<const Value*>& out) const {
  out.assign(slots_.size(), nullptr);
  // Fast path: Reaction::match binds the Env in exactly slot order (first
  // binder occurrence across the replace list), so the i-th entry IS slot i.
  auto it = env.begin();
  std::size_t i = 0;
  for (; i < slots_.size() && it != env.end(); ++i, ++it) {
    if (it->first != slots_[i]) break;
    out[i] = &it->second;
  }
  if (i == slots_.size() && it == env.end()) return;
  // Caller-built environment in some other shape: fall back to name lookup.
  // Names missing from env stay null — LoadSlot throws only if referenced,
  // mirroring the walker's lazy Env::lookup.
  for (std::size_t k = 0; k < slots_.size(); ++k) out[k] = env.find(slots_[k]);
}

std::optional<std::vector<Element>> CompiledReaction::apply(
    const expr::Env& env, expr::Vm& vm) const {
  thread_local std::vector<const Value*> slot_ptrs;
  bind_slots(env, slot_ptrs);
  const std::span<const Value* const> slots(slot_ptrs);

  const BranchCode* firing = nullptr;
  for (const BranchCode& bc : branches_) {
    if (bc.is_else || !bc.condition) {
      firing = &bc;
      break;
    }
    if (vm.run(*bc.condition, slots).truthy()) {
      firing = &bc;
      break;
    }
  }
  if (!firing) return std::nullopt;

  std::vector<Element> produced;
  produced.reserve(firing->outputs.size());
  for (const auto& tuple : firing->outputs) {
    std::vector<Value> fields;
    fields.reserve(tuple.size());
    for (const expr::Chunk& chunk : tuple) {
      fields.push_back(vm.run(chunk, slots));
    }
    produced.emplace_back(std::move(fields));
  }
  return produced;
}

Reaction::Reaction(std::string name, std::vector<Pattern> patterns,
                   std::vector<Branch> branches)
    : name_(std::move(name)),
      patterns_(std::move(patterns)),
      branches_(std::move(branches)) {
  validate();
  compiled_ = std::make_shared<const CompiledReaction>(*this);
}

void Reaction::validate() const {
  if (patterns_.empty()) {
    throw ProgramError("reaction '" + name_ + "' has an empty replace list");
  }
  if (branches_.empty()) {
    throw ProgramError("reaction '" + name_ + "' has no by clause");
  }
  std::set<std::string> bound;
  for (const Pattern& p : patterns_) {
    if (p.arity() == 0) {
      throw ProgramError("reaction '" + name_ + "' has an empty pattern");
    }
    for (const std::string& b : p.binders()) bound.insert(b);
  }
  for (std::size_t i = 0; i < branches_.size(); ++i) {
    const Branch& br = branches_[i];
    if (br.is_else && i + 1 != branches_.size()) {
      throw ProgramError("reaction '" + name_ + "': else branch must be last");
    }
    if (br.is_else && br.condition) {
      throw ProgramError("reaction '" + name_ +
                         "': else branch cannot carry a condition");
    }
    if (!br.is_else && !br.condition && branches_.size() > 1) {
      throw ProgramError(
          "reaction '" + name_ +
          "': an unconditional branch cannot coexist with other branches");
    }
    auto check_vars = [&](const expr::ExprPtr& e, const char* where) {
      for (const std::string& v : e->free_vars()) {
        if (!bound.contains(v)) {
          throw ProgramError("reaction '" + name_ + "': " + where +
                             " references unbound variable '" + v + "'");
        }
      }
    };
    if (br.condition) check_vars(br.condition, "condition");
    for (const auto& tuple : br.outputs) {
      if (tuple.empty()) {
        throw ProgramError("reaction '" + name_ + "' produces an empty tuple");
      }
      for (const auto& field : tuple) check_vars(field, "output");
    }
  }
}

bool Reaction::match(std::span<const Element* const> elements,
                     expr::Env& env) const {
  if (elements.size() != patterns_.size()) return false;
  env.clear();
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    if (!patterns_[i].match(*elements[i], env)) return false;
  }
  return true;
}

std::optional<std::vector<Element>> Reaction::apply(const expr::Env& env) const {
  const Branch* firing = nullptr;
  for (const Branch& br : branches_) {
    if (br.is_else || !br.condition) {
      firing = &br;
      break;
    }
    if (expr::eval(br.condition, env).truthy()) {
      firing = &br;
      break;
    }
  }
  if (!firing) return std::nullopt;

  std::vector<Element> produced;
  produced.reserve(firing->outputs.size());
  for (const auto& tuple : firing->outputs) {
    std::vector<Value> fields;
    fields.reserve(tuple.size());
    for (const auto& field : tuple) fields.push_back(expr::eval(field, env));
    produced.emplace_back(std::move(fields));
  }
  return produced;
}

std::optional<std::vector<Element>> Reaction::apply(
    const expr::Env& env, expr::EvalMode mode) const {
  if (mode == expr::EvalMode::Ast) return apply(env);
  thread_local expr::Vm vm;
  return compiled_->apply(env, vm);
}

std::optional<std::vector<Element>> Reaction::try_fire(
    std::span<const Element* const> elements) const {
  expr::Env env;
  if (!match(elements, env)) return std::nullopt;
  return apply(env);
}

std::optional<std::vector<Element>> Reaction::try_fire(
    std::span<const Element* const> elements, expr::EvalMode mode) const {
  expr::Env env;
  if (!match(elements, env)) return std::nullopt;
  return apply(env, mode);
}

bool Reaction::is_shrinking() const noexcept {
  return std::all_of(branches_.begin(), branches_.end(), [&](const Branch& br) {
    return br.outputs.size() < patterns_.size();
  });
}

std::string Reaction::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Reaction& r) {
  os << r.name() << " = replace ";
  for (std::size_t i = 0; i < r.patterns().size(); ++i) {
    if (i > 0) os << ", ";
    os << r.patterns()[i];
  }
  for (const Branch& br : r.branches()) {
    os << "\n  by ";
    if (br.outputs.empty()) {
      os << '0';
    } else {
      for (std::size_t i = 0; i < br.outputs.size(); ++i) {
        if (i > 0) os << ", ";
        os << '[';
        for (std::size_t j = 0; j < br.outputs[i].size(); ++j) {
          if (j > 0) os << ", ";
          os << br.outputs[i][j]->to_string();
        }
        os << ']';
      }
    }
    if (br.condition) {
      os << " if " << br.condition->to_string();
    } else if (br.is_else) {
      os << " else";
    }
  }
  return os;
}

}  // namespace gammaflow::gamma
