// Multiset element: an n-tuple of Values. The paper uses pairs
// [value, label] for straight-line programs (Fig. 1) and triples
// [value, label, tag] once loops/inctag enter (Fig. 2); classic Gamma
// programs (min element, primes) use bare 1-tuples. Element is a general
// small tuple with convenience accessors for the tagged-triple convention
// used by the translators (field 0 = value, 1 = label, 2 = iteration tag).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "gammaflow/common/value.hpp"

namespace gammaflow::gamma {

class Element {
 public:
  Element() = default;
  Element(std::initializer_list<Value> fields) : fields_(fields) {}
  explicit Element(std::vector<Value> fields) : fields_(std::move(fields)) {}

  /// The converter convention: [value, 'label', tag].
  static Element tagged(Value value, std::string_view label, std::int64_t tag) {
    return Element{std::move(value), Value(std::string(label)), Value(tag)};
  }
  /// Fig. 1 convention: [value, 'label'] (no iteration tags yet).
  static Element labeled(Value value, std::string_view label) {
    return Element{std::move(value), Value(std::string(label))};
  }

  [[nodiscard]] std::size_t arity() const noexcept { return fields_.size(); }
  [[nodiscard]] const Value& field(std::size_t i) const { return fields_.at(i); }
  [[nodiscard]] const std::vector<Value>& fields() const noexcept { return fields_; }

  /// Tagged-triple accessors; throw TypeError when the element does not
  /// follow the convention (wrong arity or field kinds).
  [[nodiscard]] const Value& value() const;
  [[nodiscard]] const std::string& label() const;
  [[nodiscard]] std::int64_t tag() const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t hash() const noexcept;

  friend bool operator==(const Element& a, const Element& b) noexcept {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Element& a, const Element& b) noexcept {
    return !(a == b);
  }
  /// Lexicographic over fields; canonicalizes multisets for comparison.
  friend bool operator<(const Element& a, const Element& b) noexcept {
    return a.fields_ < b.fields_;
  }

 private:
  std::vector<Value> fields_;
};

std::ostream& operator<<(std::ostream& os, const Element& e);

}  // namespace gammaflow::gamma

template <>
struct std::hash<gammaflow::gamma::Element> {
  std::size_t operator()(const gammaflow::gamma::Element& e) const noexcept {
    return e.hash();
  }
};
