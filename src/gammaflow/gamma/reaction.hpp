// Reaction = (condition, action) pair of the Γ operator, in the multi-branch
// surface form the paper uses:
//
//   name = replace <patterns>
//          by <outputs₁> if <cond₁>
//          by <outputs₂> else
//
// Applicability: the patterns match a tuple of distinct multiset elements
// AND some branch fires (its condition holds, it is the `else`, or it is
// unconditional). Firing removes the matched elements and inserts the
// branch's outputs ("by 0" inserts nothing) — i.e. one step of
// (M - {x..}) + A(x..) from Eq. (1).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gammaflow/expr/ast.hpp"
#include "gammaflow/expr/bytecode.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/gamma/element.hpp"
#include "gammaflow/gamma/pattern.hpp"

namespace gammaflow::gamma {

class Reaction;

/// Bytecode cache for one reaction: every condition and by-list field
/// expression compiled once against the reaction's binder-slot layout (first
/// occurrence across the replace list, which is exactly the order
/// Reaction::match binds an Env in — so slot pointers come straight out of
/// the match environment with no name lookups). Built eagerly by the
/// Reaction constructor and shared by copies; immutable, thread-safe to
/// read, each evaluating thread brings its own expr::Vm.
class CompiledReaction {
 public:
  explicit CompiledReaction(const Reaction& reaction);

  struct BranchCode {
    /// Missing = unconditional (or else) branch, mirroring Branch::condition.
    std::optional<expr::Chunk> condition;
    bool is_else = false;
    std::vector<std::vector<expr::Chunk>> outputs;
  };

  /// Batch-matching plan for the INNERMOST pattern (the last replace-list
  /// entry — the candidate bucket the match pipeline sweeps as one column
  /// batch under EvalMode::Batch). Built when every structural field is
  /// expressible as a lane check and every branch guard batch-compiles;
  /// otherwise batch_plan() is null and the pipeline silently keeps the
  /// scalar probe path for this reaction.
  struct BatchPlan {
    static constexpr std::uint16_t kNoField = 0xffff;

    /// Structural lane checks beyond liveness and arity. The bucket key
    /// field (the pattern's key constraint) needs no check: the probed
    /// (field,value) bucket already guarantees it.
    struct FieldCheck {
      enum class Kind : std::uint8_t {
        LitInt,   // field holds Int `imm`
        Lit,      // field equals `value` (non-Int literal; per-lane compare)
        EqField,  // field equals earlier field `other` of the same element
        EqSlot,   // field equals the outer binding of slot `slot`
      };
      Kind kind = Kind::LitInt;
      std::uint16_t field = 0;
      std::uint16_t other = 0;
      std::uint16_t slot = 0;
      std::int64_t imm = 0;
      Value value;
    };
    /// Innermost binders (first occurrence): slot -> source field. These are
    /// the lane columns the matcher gathers for condition slots.
    struct VectorSlot {
      std::uint16_t slot = 0;
      std::uint16_t field = 0;
    };

    std::size_t arity = 0;           // innermost pattern arity
    std::uint16_t key_field = kNoField;
    std::vector<FieldCheck> checks;
    std::vector<VectorSlot> vector_slots;
    std::vector<std::uint8_t> slot_is_vector;  // slots().size() entries
    /// Union of slot_used across all batch-compiled guards: which slots the
    /// matcher must gather (vector) or Int-check and broadcast (scalar).
    std::vector<std::uint8_t> cond_slot_used;
    /// 1:1 with branches(): the batch form of each guard (nullopt for an
    /// unconditional/else branch, which fires every pending lane).
    std::vector<std::optional<expr::BatchChunk>> conditions;
  };

  [[nodiscard]] const BatchPlan* batch_plan() const noexcept {
    return batch_ ? &*batch_ : nullptr;
  }

  /// Binder-slot layout: slot i holds the i-th distinct binder name.
  [[nodiscard]] const std::vector<std::string>& slots() const noexcept {
    return slots_;
  }
  [[nodiscard]] const std::vector<BranchCode>& branches() const noexcept {
    return branches_;
  }
  /// Wall time spent compiling this reaction (`expr.compile_ms` metric).
  [[nodiscard]] double compile_ms() const noexcept { return compile_ms_; }
  /// Total bytecode instructions across all chunks.
  [[nodiscard]] std::size_t instr_count() const noexcept;

  /// VM analogue of Reaction::apply: selects the firing branch under `env`
  /// and evaluates its outputs by running bytecode on `vm`. Produces the
  /// same result (or the same thrown error) as the AST walker.
  [[nodiscard]] std::optional<std::vector<Element>> apply(
      const expr::Env& env, expr::Vm& vm) const;

 private:
  void bind_slots(const expr::Env& env, std::vector<const Value*>& out) const;
  void build_batch_plan(const Reaction& reaction);

  std::vector<std::string> slots_;
  std::vector<BranchCode> branches_;
  std::optional<BatchPlan> batch_;
  double compile_ms_ = 0.0;
};

struct Branch {
  /// Guard; null means unconditional (fires whenever patterns match) unless
  /// is_else is set, in which case it fires when no earlier branch did.
  expr::ExprPtr condition;
  bool is_else = false;
  /// Each output is a tuple of field expressions over the pattern binders.
  /// Empty vector = "by 0": consume without producing.
  std::vector<std::vector<expr::ExprPtr>> outputs;

  static Branch unconditional(std::vector<std::vector<expr::ExprPtr>> outputs) {
    return Branch{nullptr, false, std::move(outputs)};
  }
  static Branch when(expr::ExprPtr condition,
                     std::vector<std::vector<expr::ExprPtr>> outputs) {
    return Branch{std::move(condition), false, std::move(outputs)};
  }
  static Branch otherwise(std::vector<std::vector<expr::ExprPtr>> outputs) {
    return Branch{nullptr, true, std::move(outputs)};
  }
};

class Reaction {
 public:
  Reaction(std::string name, std::vector<Pattern> patterns,
           std::vector<Branch> branches);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Pattern>& patterns() const noexcept {
    return patterns_;
  }
  [[nodiscard]] const std::vector<Branch>& branches() const noexcept {
    return branches_;
  }
  /// Number of elements consumed per firing.
  [[nodiscard]] std::size_t arity() const noexcept { return patterns_.size(); }

  /// Binds `elements` (one per pattern, in order) into `env`. Returns false
  /// on structural mismatch. env content is unspecified on failure.
  [[nodiscard]] bool match(std::span<const Element* const> elements,
                           expr::Env& env) const;

  /// Selects the firing branch under `env` and evaluates its outputs.
  /// nullopt = patterns matched but no branch applies (reaction not enabled
  /// on this tuple).
  [[nodiscard]] std::optional<std::vector<Element>> apply(
      const expr::Env& env) const;

  /// Same, via the requested evaluator: Ast walks the expression trees (the
  /// reference path above), Vm runs this reaction's compiled bytecode on a
  /// thread-local expr::Vm. Engines pick the mode from RunOptions::compile.
  [[nodiscard]] std::optional<std::vector<Element>> apply(
      const expr::Env& env, expr::EvalMode mode) const;

  /// match + apply in one call; elements.size() must equal arity().
  [[nodiscard]] std::optional<std::vector<Element>> try_fire(
      std::span<const Element* const> elements) const;
  [[nodiscard]] std::optional<std::vector<Element>> try_fire(
      std::span<const Element* const> elements, expr::EvalMode mode) const;

  /// The bytecode compiled once at construction (never null; copies share).
  [[nodiscard]] const CompiledReaction& compiled() const noexcept {
    return *compiled_;
  }

  /// True when every firing preserves or shrinks multiset size — a simple
  /// sufficient condition for termination of a single-reaction program.
  [[nodiscard]] bool is_shrinking() const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  void validate() const;

  std::string name_;
  std::vector<Pattern> patterns_;
  std::vector<Branch> branches_;
  std::shared_ptr<const CompiledReaction> compiled_;
};

std::ostream& operator<<(std::ostream& os, const Reaction& r);

}  // namespace gammaflow::gamma
