// Reaction = (condition, action) pair of the Γ operator, in the multi-branch
// surface form the paper uses:
//
//   name = replace <patterns>
//          by <outputs₁> if <cond₁>
//          by <outputs₂> else
//
// Applicability: the patterns match a tuple of distinct multiset elements
// AND some branch fires (its condition holds, it is the `else`, or it is
// unconditional). Firing removes the matched elements and inserts the
// branch's outputs ("by 0" inserts nothing) — i.e. one step of
// (M - {x..}) + A(x..) from Eq. (1).
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gammaflow/expr/ast.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/gamma/element.hpp"
#include "gammaflow/gamma/pattern.hpp"

namespace gammaflow::gamma {

struct Branch {
  /// Guard; null means unconditional (fires whenever patterns match) unless
  /// is_else is set, in which case it fires when no earlier branch did.
  expr::ExprPtr condition;
  bool is_else = false;
  /// Each output is a tuple of field expressions over the pattern binders.
  /// Empty vector = "by 0": consume without producing.
  std::vector<std::vector<expr::ExprPtr>> outputs;

  static Branch unconditional(std::vector<std::vector<expr::ExprPtr>> outputs) {
    return Branch{nullptr, false, std::move(outputs)};
  }
  static Branch when(expr::ExprPtr condition,
                     std::vector<std::vector<expr::ExprPtr>> outputs) {
    return Branch{std::move(condition), false, std::move(outputs)};
  }
  static Branch otherwise(std::vector<std::vector<expr::ExprPtr>> outputs) {
    return Branch{nullptr, true, std::move(outputs)};
  }
};

class Reaction {
 public:
  Reaction(std::string name, std::vector<Pattern> patterns,
           std::vector<Branch> branches);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Pattern>& patterns() const noexcept {
    return patterns_;
  }
  [[nodiscard]] const std::vector<Branch>& branches() const noexcept {
    return branches_;
  }
  /// Number of elements consumed per firing.
  [[nodiscard]] std::size_t arity() const noexcept { return patterns_.size(); }

  /// Binds `elements` (one per pattern, in order) into `env`. Returns false
  /// on structural mismatch. env content is unspecified on failure.
  [[nodiscard]] bool match(std::span<const Element* const> elements,
                           expr::Env& env) const;

  /// Selects the firing branch under `env` and evaluates its outputs.
  /// nullopt = patterns matched but no branch applies (reaction not enabled
  /// on this tuple).
  [[nodiscard]] std::optional<std::vector<Element>> apply(
      const expr::Env& env) const;

  /// match + apply in one call; elements.size() must equal arity().
  [[nodiscard]] std::optional<std::vector<Element>> try_fire(
      std::span<const Element* const> elements) const;

  /// True when every firing preserves or shrinks multiset size — a simple
  /// sufficient condition for termination of a single-reaction program.
  [[nodiscard]] bool is_shrinking() const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  void validate() const;

  std::string name_;
  std::vector<Pattern> patterns_;
  std::vector<Branch> branches_;
};

std::ostream& operator<<(std::ostream& os, const Reaction& r);

}  // namespace gammaflow::gamma
