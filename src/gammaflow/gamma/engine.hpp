// Engine interface: run a Gamma Program on an initial Multiset to the global
// termination state (no reaction condition holds on any element tuple) and
// return the final multiset plus execution statistics.
//
// Three implementations with identical observable semantics on confluent
// programs (every program Algorithm 1 emits is confluent because the source
// dataflow graph is deterministic):
//   SequentialEngine — Eq. (1) executed literally: each step picks uniformly
//     among ALL currently enabled matches. The semantic reference; O(matches)
//     per step, use on small multisets.
//   IndexedEngine    — index-guided first-match selection with randomized
//     probe order. The fast single-threaded engine.
//   ParallelEngine   — worker threads match optimistically under a shared
//     lock and commit under an exclusive lock, with version-stamped
//     quiescence detection for termination.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gammaflow/common/cancel.hpp"
#include "gammaflow/common/error.hpp"
#include "gammaflow/common/stats.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::obs {
class Telemetry;
}

namespace gammaflow::gamma {

struct RunOptions {
  /// Seed for every nondeterministic choice; same seed => same run for the
  /// deterministic engines.
  std::uint64_t seed = 1;
  /// Firing budget across all stages; exceeded => EngineError (guards
  /// non-terminating programs).
  std::uint64_t max_steps = 50'000'000;
  /// Record every firing (reaction name, consumed, produced) in the result.
  bool record_trace = false;
  /// Cap on recorded FireEvents: firings past the cap still execute but are
  /// not recorded (RunResult::trace_dropped counts them). Deliberately
  /// generous — the cap exists so a long `record_trace` run degrades to a
  /// truncated trace instead of an OOM, not to make truncation routine.
  std::uint64_t trace_limit = 1'000'000;
  /// Worker count (ParallelEngine only).
  unsigned workers = std::max(2u, std::thread::hardware_concurrency());
  /// SequentialEngine only: cap on enabled matches enumerated per step; the
  /// uniform choice is over the first `uniform_cap` found.
  std::size_t uniform_cap = 4096;
  /// Evaluate reaction conditions/outputs via compiled bytecode (default)
  /// instead of walking the expression AST. Results are state-identical
  /// either way (enforced by the differential suite); `--no-compile` in the
  /// CLI flips this off for A/B comparison and as an escape hatch.
  bool compile = true;
  /// Optional telemetry sink (spans + metrics). Null (the default) disables
  /// instrumentation entirely; every probe site is behind one pointer test.
  obs::Telemetry* telemetry = nullptr;
  /// Optional cooperative stop flag shared with the caller. When it fires
  /// the engine returns the state reached so far (outcome Cancelled) with
  /// all worker threads joined — it never throws for a cancellation.
  const CancelToken* cancel = nullptr;
  /// Wall-clock budget in seconds from run start; <= 0 disables. Exceeding
  /// it returns a valid partial result with outcome DeadlineExceeded.
  double deadline = 0.0;
  /// What exhausting max_steps does: Throw (EngineError, historical) or
  /// Partial (return the partial multiset with outcome BudgetExhausted).
  LimitPolicy limit_policy = LimitPolicy::Throw;
  /// Precomputed conflict classes (reaction name -> class id), normally
  /// InterferenceReport::engine_classes(). Reactions in different classes
  /// touch provably disjoint element populations. When every reaction of a
  /// stage is covered and the stage spans >= 2 classes:
  ///   ParallelEngine  — partitions the stage's reactions among workers by
  ///     class (one owner per class) and commits WITHOUT revalidation: no
  ///     other worker can invalidate an owned match, so commit_conflicts
  ///     drops to zero ("gamma.class_fast_commits" counts these commits).
  ///   IndexedEngine   — runs each class to its own fixpoint once instead of
  ///     re-passing over all reactions (sound because a quiescent class
  ///     cannot be re-enabled from outside: feed edges stay inside classes).
  /// Unknown or missing names simply disable the optimization for that
  /// stage; semantics never change.
  std::map<std::string, std::size_t> conflict_classes;
};

struct FireEvent {
  std::string reaction;
  std::size_t stage = 0;
  std::vector<Element> consumed;
  std::vector<Element> produced;
};

struct RunResult {
  Multiset final_multiset;
  /// Why the run returned. Anything but Completed means final_multiset is
  /// the valid PARTIAL state at the stop point, not the fixed point.
  Outcome outcome = Outcome::Completed;
  /// Total reactions fired.
  std::uint64_t steps = 0;
  std::map<std::string, std::uint64_t> fires_by_reaction;
  std::vector<FireEvent> trace;  // only when record_trace
  /// Firings not recorded because the trace hit RunOptions::trace_limit.
  std::uint64_t trace_dropped = 0;
  /// Engine-internal metrics (match attempts, conflicts, latencies, ...);
  /// empty unless RunOptions::telemetry was set.
  MetricsSnapshot metrics;
  double wall_seconds = 0.0;
};

class Engine {
 public:
  virtual ~Engine() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual RunResult run(const Program& program,
                                      const Multiset& initial,
                                      const RunOptions& options) const = 0;

  [[nodiscard]] RunResult run(const Program& program,
                              const Multiset& initial) const {
    return run(program, initial, RunOptions{});
  }
};

class SequentialEngine final : public Engine {
 public:
  using Engine::run;
  [[nodiscard]] std::string name() const override { return "sequential"; }
  [[nodiscard]] RunResult run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const override;
};

class IndexedEngine final : public Engine {
 public:
  using Engine::run;
  [[nodiscard]] std::string name() const override { return "indexed"; }
  [[nodiscard]] RunResult run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const override;
};

class ParallelEngine final : public Engine {
 public:
  using Engine::run;
  [[nodiscard]] std::string name() const override { return "parallel"; }
  [[nodiscard]] RunResult run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const override;
};

}  // namespace gammaflow::gamma
