// Engine interface: run a Gamma Program on an initial Multiset to the global
// termination state (no reaction condition holds on any element tuple) and
// return the final multiset plus execution statistics.
//
// Three implementations with identical observable semantics on confluent
// programs (every program Algorithm 1 emits is confluent because the source
// dataflow graph is deterministic):
//   SequentialEngine — Eq. (1) executed literally: each step picks uniformly
//     among ALL currently enabled matches. The semantic reference; O(matches)
//     per step, use on small multisets.
//   IndexedEngine    — index-guided first-match selection with randomized
//     probe order. The fast single-threaded engine.
//   ParallelEngine   — worker threads. With a sound shard plan (conflict
//     classes + label-literal patterns, see runtime/sharded_store.hpp) the
//     stage runs on a ShardedStore: each shard is an independent local
//     fixpoint under its own lock, no revalidation, fully deterministic.
//     Otherwise workers match optimistically under a shared lock and commit
//     under an exclusive lock, with version-stamped quiescence detection.
//
// All three are thin policies over runtime::StepLoop / MatchPipeline; the
// deadline/cancel/budget/telemetry scaffolding lives there, shared with the
// dataflow engines and the distributed cluster.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gammaflow/common/error.hpp"
#include "gammaflow/common/stats.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"
#include "gammaflow/runtime/options.hpp"

namespace gammaflow::gamma {

struct RunOptions : runtime::RunOptions {
  /// Seed for every nondeterministic choice; same seed => same run for the
  /// deterministic engines.
  std::uint64_t seed = 1;
  /// Firing budget across all stages; exceeded => EngineError (guards
  /// non-terminating programs).
  std::uint64_t max_steps = 50'000'000;
  /// SequentialEngine only: cap on enabled matches enumerated per step; the
  /// uniform choice is over the first `uniform_cap` found.
  std::size_t uniform_cap = 4096;
  /// ParallelEngine: allow the sharded-store path when `conflict_classes`
  /// yields a sound shard plan. Off (`--no-shard`) forces the optimistic
  /// single-store path — an escape hatch and the A/B baseline for
  /// bench_store. Results are state-identical either way on the confluent
  /// corpus (enforced by the cross-engine equivalence suite).
  bool shard = true;
  /// Precomputed conflict classes (reaction name -> class id), normally
  /// InterferenceReport::engine_classes(). Reactions in different classes
  /// touch provably disjoint element populations. When every reaction of a
  /// stage is covered and the stage spans >= 2 classes:
  ///   ParallelEngine  — partitions the STORE by class (runtime::ShardedStore)
  ///     when the plan is sound: each shard runs its own lock-free local
  ///     fixpoint, commits without revalidation ("gamma.class_fast_commits"
  ///     counts these), and commit_conflicts drops to zero.
  ///   IndexedEngine   — runs each class to its own fixpoint once instead of
  ///     re-passing over all reactions (sound because a quiescent class
  ///     cannot be re-enabled from outside: feed edges stay inside classes).
  /// Unknown or missing names simply disable the optimization for that
  /// stage; semantics never change.
  std::map<std::string, std::size_t> conflict_classes;
};

struct FireEvent {
  std::string reaction;
  std::size_t stage = 0;
  std::vector<Element> consumed;
  std::vector<Element> produced;
};

struct RunResult {
  Multiset final_multiset;
  /// Why the run returned. Anything but Completed means final_multiset is
  /// the valid PARTIAL state at the stop point, not the fixed point.
  Outcome outcome = Outcome::Completed;
  /// Total reactions fired.
  std::uint64_t steps = 0;
  std::map<std::string, std::uint64_t> fires_by_reaction;
  std::vector<FireEvent> trace;  // only when record_trace
  /// Firings not recorded because the trace hit RunOptions::trace_limit.
  std::uint64_t trace_dropped = 0;
  /// Engine-internal metrics (match attempts, conflicts, latencies, ...);
  /// empty unless RunOptions::telemetry was set.
  MetricsSnapshot metrics;
  double wall_seconds = 0.0;
};

class Engine {
 public:
  virtual ~Engine() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual RunResult run(const Program& program,
                                      const Multiset& initial,
                                      const RunOptions& options) const = 0;

  [[nodiscard]] RunResult run(const Program& program,
                              const Multiset& initial) const {
    return run(program, initial, RunOptions{});
  }
};

class SequentialEngine final : public Engine {
 public:
  using Engine::run;
  [[nodiscard]] std::string name() const override { return "sequential"; }
  [[nodiscard]] RunResult run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const override;
};

class IndexedEngine final : public Engine {
 public:
  using Engine::run;
  [[nodiscard]] std::string name() const override { return "indexed"; }
  [[nodiscard]] RunResult run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const override;
};

class ParallelEngine final : public Engine {
 public:
  using Engine::run;
  [[nodiscard]] std::string name() const override { return "parallel"; }
  [[nodiscard]] RunResult run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const override;
};

}  // namespace gammaflow::gamma
