#include "gammaflow/gamma/multiset.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace gammaflow::gamma {

bool Multiset::remove_one(const Element& e) {
  auto it = std::find(elements_.begin(), elements_.end(), e);
  if (it == elements_.end()) return false;
  // Order is not part of multiset identity: swap-pop for O(1) removal.
  *it = std::move(elements_.back());
  elements_.pop_back();
  return true;
}

std::size_t Multiset::count(const Element& e) const noexcept {
  return static_cast<std::size_t>(
      std::count(elements_.begin(), elements_.end(), e));
}

std::vector<Element> Multiset::canonical() const {
  std::vector<Element> sorted = elements_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::vector<Element> Multiset::with_label(std::string_view label) const {
  std::vector<Element> out;
  for (const Element& e : elements_) {
    if (e.arity() >= 2 && e.field(1).is_str() && e.field(1).as_str() == label) {
      out.push_back(e);
    }
  }
  return out;
}

bool operator==(const Multiset& a, const Multiset& b) noexcept {
  if (a.size() != b.size()) return false;
  return a.canonical() == b.canonical();
}

std::string Multiset::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Multiset& m) {
  os << '{';
  const auto sorted = m.canonical();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) os << ", ";
    os << sorted[i];
  }
  return os << '}';
}

}  // namespace gammaflow::gamma
