// Indexed element store: the engines' internal multiset representation,
// laid out as a structure-of-arrays. Elements live in per-arity COLUMN
// GROUPS: each field is a contiguous int64 column (the dominant Int case)
// with a tag byte per row and a spill sidecar holding non-Int payloads, so
// a compiled condition can sweep a whole candidate batch without touching a
// Value variant per field. A per-row liveness bitmap replaces the old
// stale-seen observation counters: dead rows are the garbage debt, counted
// exactly at remove() time instead of sampled by read-only searchers.
//
// Secondary indexes map (field, value) and arity to candidate entry lists so
// reaction matching probes a bucket instead of scanning the multiset.
// Buckets are cleaned lazily: mutating lookups prune in place, read-only
// lookups (shared-lock searchers) skip stale entries; compact() prunes every
// bucket AND rewrites column groups densely (inserts self-trigger it once
// the dead-row debt crosses the threshold, so long worklist runs stay O(live)).
//
// The matching machinery itself (backtracking candidate search, batch
// bitmap evaluation, match revalidation, commit) lives in
// runtime/match_pipeline.hpp — one implementation for every engine. The
// find_match/enumerate_matches/commit free functions declared here are thin
// delegates kept for source compatibility.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/reaction.hpp"

namespace gammaflow::gamma {

class Store {
 public:
  using Id = std::uint32_t;

  /// Bucket entry: a slot id stamped with the slot's generation at insert
  /// time. Slot ids are reused (free list), so an id alone cannot tell a
  /// live registration from a stale one left by a previous occupant —
  /// without the stamp, buckets accumulate duplicate references to reused
  /// slots and matching degrades from O(live) to O(total firings).
  struct Entry {
    Id id;
    std::uint32_t gen;
  };

  /// An index bucket: the candidate entries for one (field,value) key or
  /// one arity. May contain stale entries (dead or reused slots); callers
  /// check live().
  struct Bucket {
    std::vector<Entry> entries;
  };

  /// One field of a column group: Int payloads inline in `data`, every
  /// other kind spilled to the sidecar (`data[row]` is then the spill
  /// index; Nil carries no payload at all). `tags[row]` is the ValueKind.
  /// Read-only outside Store; the batch matcher reads `data`/`tags`
  /// directly for its dense sweeps.
  struct Column {
    std::vector<std::int64_t> data;
    std::vector<std::uint8_t> tags;
    std::vector<Value> spill;
  };

  /// Per-arity SoA block: `cols[f]` holds field f of every element of this
  /// arity ever inserted (dead rows linger until compaction — the liveness
  /// bitmap masks them out). Row order is append order; compact() preserves
  /// it while dropping dead rows.
  struct ColumnGroup {
    std::size_t arity = 0;
    std::vector<Column> cols;
    std::vector<Id> row_ids;  // row -> current slot id at insert time
    std::vector<std::uint64_t> live_bits;  // 64 rows per word
    std::size_t rows = 0;       // total rows, dead included
    std::size_t live_rows = 0;

    [[nodiscard]] bool row_live(std::size_t row) const noexcept {
      return ((live_bits[row >> 6] >> (row & 63)) & 1u) != 0;
    }
    /// Field f of `row` materialized back to a Value (any kind).
    [[nodiscard]] Value field_value(std::size_t row, std::size_t f) const;
  };

  /// Where an id's current occupant lives in the column groups.
  struct RowRef {
    const ColumnGroup* group = nullptr;
    std::uint32_t row = 0;
  };

  Store() = default;
  explicit Store(const Multiset& m) {
    for (const Element& e : m) insert(e);
  }

  Id insert(Element e);
  void remove(Id id);

  [[nodiscard]] bool alive(Id id) const noexcept {
    return id < alive_.size() && alive_[id];
  }
  /// True when `entry` references the CURRENT occupant of its slot.
  [[nodiscard]] bool live(Entry entry) const noexcept {
    return alive(entry.id) && generations_[entry.id] == entry.gen;
  }
  /// The element at `id`, materialized from its column-group row.
  /// Precondition: alive(id).
  [[nodiscard]] Element element(Id id) const;
  /// Column-group coordinates of `id`'s slot (batch gather). Valid for live
  /// ids, and for dead ones only until the next compaction moves rows —
  /// searchers check live() first and never span a mutation.
  [[nodiscard]] RowRef row(Id id) const noexcept {
    const Loc loc = locs_[id];
    return RowRef{&groups_[loc.group], loc.row};
  }
  /// Matches `p` against the element at `id` directly on the columns —
  /// the scalar probe path, with no Element materialization. Same
  /// semantics as Pattern::match(element(id), env). Precondition: alive(id).
  [[nodiscard]] bool match_pattern(const Pattern& p, Id id,
                                   expr::Env& env) const;
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  /// The bucket the pattern probes: the (field,value) bucket when the
  /// pattern carries a literal constraint, otherwise the arity bucket; null
  /// when no such bucket exists (nothing can match). May contain stale
  /// entries; callers must check live(). The mutating overload prunes the
  /// bucket in place first.
  [[nodiscard]] const Bucket* bucket(const Pattern& p);

  /// Read-only bucket lookup (no pruning) — safe under a shared lock while
  /// other threads only hold shared locks. Stale entries linger until a
  /// mutating lookup or compact() cleans them; searchers skip them via the
  /// generation stamp (the dead ROWS behind them are already counted in the
  /// store's garbage debt, so no per-skip bookkeeping is needed).
  [[nodiscard]] const Bucket* bucket(const Pattern& p) const;

  /// Entry-list views of bucket(); kept for callers that only iterate.
  [[nodiscard]] const std::vector<Entry>& candidates(const Pattern& p);
  [[nodiscard]] const std::vector<Entry>& candidates(const Pattern& p) const;

  /// Dead rows still occupying column-group storage — the garbage debt.
  /// Exact (counted at remove()), unlike the old observation-sampled
  /// stale-seen scheme.
  [[nodiscard]] std::uint64_t dead_rows() const noexcept { return dead_rows_; }

  /// True once the garbage debt crosses kGarbageCompactThreshold: the next
  /// exclusive section should call compact(). insert() also self-triggers
  /// collection past the threshold (or when dead rows dwarf live ones), so
  /// batch sweeps and memory stay O(live) even on paths that never check.
  [[nodiscard]] bool needs_compact() const noexcept {
    return dead_rows_ >= kGarbageCompactThreshold;
  }
  static constexpr std::uint64_t kGarbageCompactThreshold = 4096;

  /// Prunes stale entries from every index bucket and rewrites every column
  /// group densely (dropping dead rows, rebuilding the spill sidecars),
  /// settling the garbage debt. Engines call this from an exclusive section
  /// when needs_compact().
  void compact();

  /// Column-group compactions performed by THIS store (the
  /// `store.column_compactions` metric counts the process-wide total).
  [[nodiscard]] std::uint64_t column_compactions() const noexcept {
    return column_compactions_;
  }

  /// Snapshot back to the public value type (slot-id order, as before the
  /// columnar layout — callers canonicalize for comparisons).
  [[nodiscard]] Multiset to_multiset() const;

  /// Monotone count of successful insert/remove operations; engines use it
  /// as a cheap "has anything changed" version stamp.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  struct FieldKey {
    std::size_t field;
    Value value;
    bool operator==(const FieldKey& o) const noexcept {
      return field == o.field && value == o.value;
    }
  };
  struct FieldKeyHash {
    std::size_t operator()(const FieldKey& k) const noexcept {
      return k.value.hash() * 0x9e3779b97f4a7c15ULL + k.field;
    }
  };
  struct Loc {
    std::uint32_t group = 0;
    std::uint32_t row = 0;
  };

  void prune(Bucket& bucket);
  std::uint32_t group_for_arity(std::size_t arity);
  void compact_columns();

  std::vector<ColumnGroup> groups_;
  std::unordered_map<std::size_t, std::uint32_t> group_of_arity_;
  std::vector<Loc> locs_;
  std::vector<bool> alive_;
  std::vector<std::uint32_t> generations_;
  std::vector<Id> free_list_;
  std::size_t live_count_ = 0;
  std::uint64_t dead_rows_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t column_compactions_ = 0;
  std::unordered_map<FieldKey, Bucket, FieldKeyHash> field_index_;
  std::unordered_map<std::size_t, Bucket> arity_index_;
  static const std::vector<Entry> kEmpty;
};

/// Process-wide count of column-group compactions (all stores); engines
/// report per-run deltas as the `store.column_compactions` metric.
[[nodiscard]] std::uint64_t column_compactions_total() noexcept;

struct Match {
  const Reaction* reaction = nullptr;
  std::vector<Store::Id> ids;  // one per pattern, all distinct
  expr::Env env;               // bindings from the replace list
  std::vector<Element> produced;  // outputs of the firing branch
};

/// Finds one enabled match for `reaction` (patterns match AND a branch
/// fires). With `rng`, candidate buckets are probed starting at random
/// offsets so repeated calls are fair; without, the first match in bucket
/// order is returned (deterministic). `mode` selects how conditions and
/// outputs are evaluated once the patterns match — the AST walker (default,
/// reference semantics), the reaction's compiled bytecode, or batch bitmap
/// evaluation over the innermost candidate column batch; all produce
/// identical Matches, engines pass RunOptions::eval_mode().
/// Delegates to runtime::MatchPipeline::find (the one implementation).
[[nodiscard]] std::optional<Match> find_match(
    Store& store, const Reaction& reaction, Rng* rng = nullptr,
    expr::EvalMode mode = expr::EvalMode::Ast);

/// Read-only variant for concurrent searchers holding a shared lock; leaves
/// index garbage in place (see Store::compact).
[[nodiscard]] std::optional<Match> find_match(
    const Store& store, const Reaction& reaction, Rng* rng = nullptr,
    expr::EvalMode mode = expr::EvalMode::Ast);

/// Invokes `fn` for every enabled match (ordered tuples of distinct
/// elements), stopping early when fn returns false or `limit` matches were
/// visited. Returns the number visited. Exponential in reaction arity —
/// meant for small multisets (semantics tests) and match counting.
std::size_t enumerate_matches(Store& store, const Reaction& reaction,
                              std::size_t limit,
                              const std::function<bool(const Match&)>& fn,
                              expr::EvalMode mode = expr::EvalMode::Ast);

/// Applies a found match: removes the consumed ids, inserts the produced
/// elements. Precondition: all ids alive.
void commit(Store& store, const Match& match);

}  // namespace gammaflow::gamma
