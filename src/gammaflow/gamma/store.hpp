// Indexed element store: the engines' internal multiset representation.
// Elements live in stable slots; secondary indexes map (field, value) and
// arity to candidate slot lists so reaction matching probes a bucket instead
// of scanning the multiset. Buckets are cleaned lazily: mutating lookups
// prune in place, read-only lookups (shared-lock searchers) skip stale
// entries and count the skips so needs_compact() can tell the next
// exclusive section when the garbage is worth collecting.
//
// The matching machinery itself (backtracking candidate search, match
// revalidation, commit) lives in runtime/match_pipeline.hpp — one
// implementation for every engine. The find_match/enumerate_matches/commit
// free functions declared here are thin delegates kept for source
// compatibility.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/reaction.hpp"

namespace gammaflow::gamma {

class Store {
 public:
  using Id = std::uint32_t;

  /// Bucket entry: a slot id stamped with the slot's generation at insert
  /// time. Slots are reused (free list), so an id alone cannot tell a live
  /// registration from a stale one left by a previous occupant — without the
  /// stamp, buckets accumulate duplicate references to reused slots and
  /// matching degrades from O(live) to O(total firings).
  struct Entry {
    Id id;
    std::uint32_t gen;
  };

  /// An index bucket: the candidate entries plus a count of stale entries
  /// OBSERVED (skipped) by read-only searches since the bucket was last
  /// pruned. The count is per observation, not per distinct entry — the same
  /// dead entry re-skipped by every search keeps paying, and that recurring
  /// cost is exactly the signal needs_compact() reports. mutable + atomic so
  /// concurrent shared-lock searchers can bump it without a data race
  /// (relaxed: it is a compaction heuristic, not an invariant).
  struct Bucket {
    std::vector<Entry> entries;
    mutable std::atomic<std::uint32_t> stale_seen{0};

    Bucket() = default;
    Bucket(const Bucket& o)
        : entries(o.entries),
          stale_seen(o.stale_seen.load(std::memory_order_relaxed)) {}
    Bucket(Bucket&& o) noexcept
        : entries(std::move(o.entries)),
          stale_seen(o.stale_seen.load(std::memory_order_relaxed)) {}
    Bucket& operator=(const Bucket& o) {
      entries = o.entries;
      stale_seen.store(o.stale_seen.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      return *this;
    }
    Bucket& operator=(Bucket&& o) noexcept {
      entries = std::move(o.entries);
      stale_seen.store(o.stale_seen.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      return *this;
    }
  };

  Store() = default;
  explicit Store(const Multiset& m) {
    for (const Element& e : m) insert(e);
  }

  Id insert(Element e);
  void remove(Id id);

  [[nodiscard]] bool alive(Id id) const noexcept {
    return id < alive_.size() && alive_[id];
  }
  /// True when `entry` references the CURRENT occupant of its slot.
  [[nodiscard]] bool live(Entry entry) const noexcept {
    return alive(entry.id) && generations_[entry.id] == entry.gen;
  }
  [[nodiscard]] const Element& element(Id id) const { return slots_[id]; }
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  /// The bucket the pattern probes: the (field,value) bucket when the
  /// pattern carries a literal constraint, otherwise the arity bucket; null
  /// when no such bucket exists (nothing can match). May contain stale
  /// entries; callers must check live(). The mutating overload prunes the
  /// bucket in place first.
  [[nodiscard]] const Bucket* bucket(const Pattern& p);

  /// Read-only bucket lookup (no pruning) — safe under a shared lock while
  /// other threads only hold shared locks. Stale entries linger until a
  /// mutating lookup or compact() cleans them; searchers report each skip
  /// via note_stale() so needs_compact() can trigger collection.
  [[nodiscard]] const Bucket* bucket(const Pattern& p) const;

  /// Entry-list views of bucket(); kept for callers that only iterate.
  [[nodiscard]] const std::vector<Entry>& candidates(const Pattern& p);
  [[nodiscard]] const std::vector<Entry>& candidates(const Pattern& p) const;

  /// Records that a read-only search skipped a stale entry of `b`. Safe from
  /// concurrent shared-lock holders (atomic, relaxed).
  void note_stale(const Bucket& b) const noexcept {
    b.stale_seen.fetch_add(1, std::memory_order_relaxed);
  }

  /// Total stale-entry observations across all buckets since they were last
  /// pruned — the read-only path's accumulated garbage debt.
  [[nodiscard]] std::uint64_t garbage_seen() const noexcept;

  /// True once the garbage debt crosses kGarbageCompactThreshold: the next
  /// exclusive section should call compact(). Without this trigger, a long
  /// shared-lock phase (concurrent searchers never prune) degrades matching
  /// from O(live) toward O(total firings).
  [[nodiscard]] bool needs_compact() const noexcept {
    return garbage_seen() >= kGarbageCompactThreshold;
  }
  static constexpr std::uint64_t kGarbageCompactThreshold = 4096;

  /// Prunes stale entries from every index bucket and resets the garbage
  /// debt. Engines call this from an exclusive section when needs_compact().
  void compact();

  /// Snapshot back to the public value type.
  [[nodiscard]] Multiset to_multiset() const;

  /// Monotone count of successful insert/remove operations; engines use it
  /// as a cheap "has anything changed" version stamp.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  struct FieldKey {
    std::size_t field;
    Value value;
    bool operator==(const FieldKey& o) const noexcept {
      return field == o.field && value == o.value;
    }
  };
  struct FieldKeyHash {
    std::size_t operator()(const FieldKey& k) const noexcept {
      return k.value.hash() * 0x9e3779b97f4a7c15ULL + k.field;
    }
  };

  void prune(Bucket& bucket);

  std::vector<Element> slots_;
  std::vector<bool> alive_;
  std::vector<std::uint32_t> generations_;
  std::vector<Id> free_list_;
  std::size_t live_count_ = 0;
  std::uint64_t version_ = 0;
  std::unordered_map<FieldKey, Bucket, FieldKeyHash> field_index_;
  std::unordered_map<std::size_t, Bucket> arity_index_;
  static const std::vector<Entry> kEmpty;
};

struct Match {
  const Reaction* reaction = nullptr;
  std::vector<Store::Id> ids;  // one per pattern, all distinct
  expr::Env env;               // bindings from the replace list
  std::vector<Element> produced;  // outputs of the firing branch
};

/// Finds one enabled match for `reaction` (patterns match AND a branch
/// fires). With `rng`, candidate buckets are probed starting at random
/// offsets so repeated calls are fair; without, the first match in bucket
/// order is returned (deterministic). `mode` selects how conditions and
/// outputs are evaluated once the patterns match — the AST walker (default,
/// reference semantics) or the reaction's compiled bytecode; both produce
/// identical Matches, engines pass Vm when RunOptions::compile is on.
/// Delegates to runtime::MatchPipeline::find (the one implementation).
[[nodiscard]] std::optional<Match> find_match(
    Store& store, const Reaction& reaction, Rng* rng = nullptr,
    expr::EvalMode mode = expr::EvalMode::Ast);

/// Read-only variant for concurrent searchers holding a shared lock; leaves
/// index garbage in place (see Store::compact).
[[nodiscard]] std::optional<Match> find_match(
    const Store& store, const Reaction& reaction, Rng* rng = nullptr,
    expr::EvalMode mode = expr::EvalMode::Ast);

/// Invokes `fn` for every enabled match (ordered tuples of distinct
/// elements), stopping early when fn returns false or `limit` matches were
/// visited. Returns the number visited. Exponential in reaction arity —
/// meant for small multisets (semantics tests) and match counting.
std::size_t enumerate_matches(Store& store, const Reaction& reaction,
                              std::size_t limit,
                              const std::function<bool(const Match&)>& fn,
                              expr::EvalMode mode = expr::EvalMode::Ast);

/// Applies a found match: removes the consumed ids, inserts the produced
/// elements. Precondition: all ids alive.
void commit(Store& store, const Match& match);

}  // namespace gammaflow::gamma
