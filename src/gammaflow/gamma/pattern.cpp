#include "gammaflow/gamma/pattern.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace gammaflow::gamma {

bool PatternField::match(const Value& field, expr::Env& env) const {
  if (!is_binder_) return field == value_;
  if (const Value* bound = env.find(name_)) return field == *bound;
  env.bind(name_, field);
  return true;
}

bool Pattern::match(const Element& e, expr::Env& env) const {
  if (e.arity() != fields_.size()) return false;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (!fields_[i].match(e.field(i), env)) return false;
  }
  return true;
}

std::optional<std::pair<std::size_t, Value>> Pattern::key_constraint() const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (!fields_[i].is_binder()) return std::make_pair(i, fields_[i].value());
  }
  return std::nullopt;
}

std::vector<std::string> Pattern::binders() const {
  std::vector<std::string> names;
  for (const PatternField& f : fields_) {
    if (f.is_binder() &&
        std::find(names.begin(), names.end(), f.name()) == names.end()) {
      names.push_back(f.name());
    }
  }
  return names;
}

std::string Pattern::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Pattern& p) {
  // Bare single binder prints without brackets (classic Gamma style).
  if (p.arity() == 1 && p.fields()[0].is_binder()) {
    return os << p.fields()[0].name();
  }
  os << '[';
  for (std::size_t i = 0; i < p.arity(); ++i) {
    if (i > 0) os << ", ";
    const PatternField& f = p.fields()[i];
    if (f.is_binder()) {
      os << f.name();
    } else {
      os << f.value();
    }
  }
  return os << ']';
}

}  // namespace gammaflow::gamma
