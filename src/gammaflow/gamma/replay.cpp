#include "gammaflow/gamma/replay.hpp"

namespace gammaflow::gamma {

Multiset replay_trace(const Multiset& initial,
                      std::span<const FireEvent> trace) {
  Multiset m = initial;
  std::size_t step = 0;
  for (const FireEvent& ev : trace) {
    ++step;
    for (const Element& e : ev.consumed) {
      if (!m.remove_one(e)) {
        throw EngineError("replay step " + std::to_string(step) + " (" +
                          ev.reaction + "): consumed element " +
                          e.to_string() + " not present in the multiset");
      }
    }
    for (const Element& e : ev.produced) m.add(e);
  }
  return m;
}

bool validate_run(const Multiset& initial, const RunResult& run) {
  return replay_trace(initial, run.trace) == run.final_multiset;
}

}  // namespace gammaflow::gamma
