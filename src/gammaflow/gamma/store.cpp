#include "gammaflow/gamma/store.hpp"

#include <algorithm>

namespace gammaflow::gamma {

const std::vector<Store::Entry> Store::kEmpty;

Store::Id Store::insert(Element e) {
  Id id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    slots_[id] = std::move(e);
    alive_[id] = true;
  } else {
    id = static_cast<Id>(slots_.size());
    slots_.push_back(std::move(e));
    alive_.push_back(true);
    generations_.push_back(0);
  }
  const Element& stored = slots_[id];
  const Entry entry{id, generations_[id]};
  arity_index_[stored.arity()].entries.push_back(entry);
  for (std::size_t f = 0; f < stored.arity(); ++f) {
    field_index_[FieldKey{f, stored.field(f)}].entries.push_back(entry);
  }
  ++live_count_;
  ++version_;
  return id;
}

void Store::remove(Id id) {
  if (!alive(id)) throw EngineError("remove of dead element id");
  alive_[id] = false;
  ++generations_[id];  // invalidates every bucket entry for this occupancy
  free_list_.push_back(id);
  --live_count_;
  ++version_;
  // Index buckets are pruned lazily on traversal.
}

void Store::prune(Bucket& bucket) {
  // An entry is stale when its slot died OR was reused by a later occupant
  // (generation mismatch); either way it no longer belongs here. Pruning
  // settles the bucket's garbage debt.
  std::erase_if(bucket.entries, [this](Entry e) { return !live(e); });
  bucket.stale_seen.store(0, std::memory_order_relaxed);
}

const Store::Bucket* Store::bucket(const Pattern& p) {
  if (auto key = p.key_constraint()) {
    auto it = field_index_.find(FieldKey{key->first, key->second});
    if (it == field_index_.end()) return nullptr;
    prune(it->second);
    return &it->second;
  }
  auto it = arity_index_.find(p.arity());
  if (it == arity_index_.end()) return nullptr;
  prune(it->second);
  return &it->second;
}

const Store::Bucket* Store::bucket(const Pattern& p) const {
  if (auto key = p.key_constraint()) {
    auto it = field_index_.find(FieldKey{key->first, key->second});
    return it == field_index_.end() ? nullptr : &it->second;
  }
  auto it = arity_index_.find(p.arity());
  return it == arity_index_.end() ? nullptr : &it->second;
}

const std::vector<Store::Entry>& Store::candidates(const Pattern& p) {
  const Bucket* b = bucket(p);
  return b != nullptr ? b->entries : kEmpty;
}

const std::vector<Store::Entry>& Store::candidates(const Pattern& p) const {
  const Bucket* b = bucket(p);
  return b != nullptr ? b->entries : kEmpty;
}

std::uint64_t Store::garbage_seen() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [key, bucket] : field_index_) {
    total += bucket.stale_seen.load(std::memory_order_relaxed);
  }
  for (const auto& [arity, bucket] : arity_index_) {
    total += bucket.stale_seen.load(std::memory_order_relaxed);
  }
  return total;
}

void Store::compact() {
  for (auto& [key, bucket] : field_index_) prune(bucket);
  for (auto& [arity, bucket] : arity_index_) prune(bucket);
}

Multiset Store::to_multiset() const {
  Multiset m;
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    if (alive_[id]) m.add(slots_[id]);
  }
  return m;
}

}  // namespace gammaflow::gamma
