#include "gammaflow/gamma/store.hpp"

#include <algorithm>

namespace gammaflow::gamma {

const std::vector<Store::Entry> Store::kEmpty;

Store::Id Store::insert(Element e) {
  Id id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    slots_[id] = std::move(e);
    alive_[id] = true;
  } else {
    id = static_cast<Id>(slots_.size());
    slots_.push_back(std::move(e));
    alive_.push_back(true);
    generations_.push_back(0);
  }
  const Element& stored = slots_[id];
  const Entry entry{id, generations_[id]};
  arity_index_[stored.arity()].push_back(entry);
  for (std::size_t f = 0; f < stored.arity(); ++f) {
    field_index_[FieldKey{f, stored.field(f)}].push_back(entry);
  }
  ++live_count_;
  ++version_;
  return id;
}

void Store::remove(Id id) {
  if (!alive(id)) throw EngineError("remove of dead element id");
  alive_[id] = false;
  ++generations_[id];  // invalidates every bucket entry for this occupancy
  free_list_.push_back(id);
  --live_count_;
  ++version_;
  // Index buckets are pruned lazily on traversal.
}

void Store::prune(std::vector<Entry>& bucket) {
  // An entry is stale when its slot died OR was reused by a later occupant
  // (generation mismatch); either way it no longer belongs here.
  std::erase_if(bucket, [this](Entry e) { return !live(e); });
}

const std::vector<Store::Entry>& Store::candidates(const Pattern& p) {
  if (auto key = p.key_constraint()) {
    auto it = field_index_.find(FieldKey{key->first, key->second});
    if (it == field_index_.end()) return kEmpty;
    prune(it->second);
    return it->second;
  }
  auto it = arity_index_.find(p.arity());
  if (it == arity_index_.end()) return kEmpty;
  prune(it->second);
  return it->second;
}

const std::vector<Store::Entry>& Store::candidates(const Pattern& p) const {
  if (auto key = p.key_constraint()) {
    auto it = field_index_.find(FieldKey{key->first, key->second});
    return it == field_index_.end() ? kEmpty : it->second;
  }
  auto it = arity_index_.find(p.arity());
  return it == arity_index_.end() ? kEmpty : it->second;
}

void Store::compact() {
  for (auto& [key, bucket] : field_index_) prune(bucket);
  for (auto& [arity, bucket] : arity_index_) prune(bucket);
}

Multiset Store::to_multiset() const {
  Multiset m;
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    if (alive_[id]) m.add(slots_[id]);
  }
  return m;
}

namespace {

// Shared backtracking core. Visits enabled matches of `reaction`; for each,
// builds a Match and calls `fn`; stops when fn returns false or `limit` is
// reached. `rng` randomizes the probe order inside each candidate bucket
// (cyclic start offset — cheap fairness without shuffling).
//
// Stale bucket entries (dead or reused slots) are detected by generation
// stamp and skipped.
template <typename StoreT>  // Store (pruning) or const Store (read-only)
std::size_t search(StoreT& store, const Reaction& reaction, std::size_t limit,
                   Rng* rng, expr::EvalMode mode,
                   const std::function<bool(Match&)>& fn) {
  const auto& patterns = reaction.patterns();
  const std::size_t k = patterns.size();

  // Bucket pointers are stable across the search: candidates() never inserts
  // map entries and prune() mutates vectors in place.
  std::vector<const std::vector<Store::Entry>*> buckets(k);
  for (std::size_t i = 0; i < k; ++i) {
    buckets[i] = &store.candidates(patterns[i]);
    if (buckets[i]->empty()) return 0;
  }

  std::vector<expr::Env> envs(k + 1);
  std::vector<Store::Id> chosen(k);
  std::size_t visited = 0;
  bool stop = false;

  auto dfs = [&](auto&& self, std::size_t depth) -> void {
    if (stop) return;
    if (depth == k) {
      auto produced = reaction.apply(envs[k], mode);
      if (!produced) return;  // patterns matched but no branch fires
      Match m;
      m.reaction = &reaction;
      m.ids = chosen;
      m.env = envs[k];
      m.produced = std::move(*produced);
      ++visited;
      if (!fn(m) || visited >= limit) stop = true;
      return;
    }
    const auto& bucket = *buckets[depth];
    const std::size_t n = bucket.size();
    const std::size_t start = rng ? rng->bounded(n) : 0;
    for (std::size_t t = 0; t < n && !stop; ++t) {
      const Store::Entry entry = bucket[(start + t) % n];
      if (!store.live(entry)) continue;
      const Store::Id id = entry.id;
      bool dup = false;
      for (std::size_t d = 0; d < depth; ++d) {
        if (chosen[d] == id) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      envs[depth + 1] = envs[depth];
      if (!patterns[depth].match(store.element(id), envs[depth + 1])) continue;
      chosen[depth] = id;
      self(self, depth + 1);
    }
  };
  dfs(dfs, 0);
  return visited;
}

}  // namespace

std::optional<Match> find_match(Store& store, const Reaction& reaction,
                                Rng* rng, expr::EvalMode mode) {
  std::optional<Match> found;
  search(store, reaction, 1, rng, mode, [&](Match& m) {
    found = std::move(m);
    return false;
  });
  return found;
}

std::optional<Match> find_match(const Store& store, const Reaction& reaction,
                                Rng* rng, expr::EvalMode mode) {
  std::optional<Match> found;
  search(store, reaction, 1, rng, mode, [&](Match& m) {
    found = std::move(m);
    return false;
  });
  return found;
}

std::size_t enumerate_matches(Store& store, const Reaction& reaction,
                              std::size_t limit,
                              const std::function<bool(const Match&)>& fn,
                              expr::EvalMode mode) {
  return search(store, reaction, limit, nullptr, mode,
                [&](Match& m) { return fn(m); });
}

void commit(Store& store, const Match& match) {
  for (const Store::Id id : match.ids) store.remove(id);
  for (const Element& e : match.produced) store.insert(e);
}

}  // namespace gammaflow::gamma
