#include "gammaflow/gamma/store.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

namespace gammaflow::gamma {

namespace {
std::atomic<std::uint64_t> g_column_compactions{0};

constexpr std::uint8_t kIntTag = static_cast<std::uint8_t>(ValueKind::Int);
constexpr std::uint8_t kNilTag = static_cast<std::uint8_t>(ValueKind::Nil);
}  // namespace

const std::vector<Store::Entry> Store::kEmpty;

Value Store::ColumnGroup::field_value(std::size_t row, std::size_t f) const {
  const Column& c = cols[f];
  const std::uint8_t tag = c.tags[row];
  if (tag == kIntTag) return Value(c.data[row]);
  if (tag == kNilTag) return Value();
  return c.spill[static_cast<std::size_t>(c.data[row])];
}

std::uint32_t Store::group_for_arity(std::size_t arity) {
  const auto it = group_of_arity_.find(arity);
  if (it != group_of_arity_.end()) return it->second;
  const auto gi = static_cast<std::uint32_t>(groups_.size());
  group_of_arity_.emplace(arity, gi);
  groups_.emplace_back();
  groups_.back().arity = arity;
  groups_.back().cols.resize(arity);
  return gi;
}

Store::Id Store::insert(Element e) {
  // Self-triggered collection: without it, append-only rows would grow with
  // TOTAL firings, not live elements, and batch sweeps would scan the dead.
  // Never runs mid-search (searches don't insert), so gathered row
  // coordinates and bucket pointers stay valid within any one find().
  if (dead_rows_ >= kGarbageCompactThreshold ||
      dead_rows_ > 4 * live_count_ + 256) {
    compact();
  }

  Id id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    alive_[id] = true;
  } else {
    id = static_cast<Id>(locs_.size());
    locs_.push_back(Loc{});
    alive_.push_back(true);
    generations_.push_back(0);
  }

  const std::size_t arity = e.arity();
  const std::uint32_t gi = group_for_arity(arity);
  ColumnGroup& g = groups_[gi];
  const auto row = static_cast<std::uint32_t>(g.rows);
  for (std::size_t f = 0; f < arity; ++f) {
    Column& c = g.cols[f];
    const Value& v = e.field(f);
    if (const std::int64_t* i = v.if_int()) {
      c.data.push_back(*i);
    } else if (v.is_nil()) {
      c.data.push_back(0);
    } else {
      c.data.push_back(static_cast<std::int64_t>(c.spill.size()));
      c.spill.push_back(v);
    }
    c.tags.push_back(static_cast<std::uint8_t>(v.kind()));
  }
  g.row_ids.push_back(id);
  if ((g.rows & 63) == 0) g.live_bits.push_back(0);
  g.live_bits[g.rows >> 6] |= std::uint64_t{1} << (g.rows & 63);
  ++g.rows;
  ++g.live_rows;
  locs_[id] = Loc{gi, row};

  const Entry entry{id, generations_[id]};
  arity_index_[arity].entries.push_back(entry);
  for (std::size_t f = 0; f < arity; ++f) {
    field_index_[FieldKey{f, e.field(f)}].entries.push_back(entry);
  }
  ++live_count_;
  ++version_;
  return id;
}

void Store::remove(Id id) {
  if (!alive(id)) throw EngineError("remove of dead element id");
  alive_[id] = false;
  ++generations_[id];  // invalidates every bucket entry for this occupancy
  const Loc loc = locs_[id];
  ColumnGroup& g = groups_[loc.group];
  g.live_bits[loc.row >> 6] &= ~(std::uint64_t{1} << (loc.row & 63));
  --g.live_rows;
  ++dead_rows_;
  free_list_.push_back(id);
  --live_count_;
  ++version_;
  // Index buckets are pruned lazily on traversal; the dead row lingers
  // (masked by the liveness bitmap) until compact().
}

Element Store::element(Id id) const {
  const Loc loc = locs_[id];
  const ColumnGroup& g = groups_[loc.group];
  std::vector<Value> fields;
  fields.reserve(g.arity);
  for (std::size_t f = 0; f < g.arity; ++f) {
    fields.push_back(g.field_value(loc.row, f));
  }
  return Element(std::move(fields));
}

bool Store::match_pattern(const Pattern& p, Id id, expr::Env& env) const {
  const Loc loc = locs_[id];
  const ColumnGroup& g = groups_[loc.group];
  if (g.arity != p.arity()) return false;
  Value scratch;
  for (std::size_t f = 0; f < g.arity; ++f) {
    const Column& c = g.cols[f];
    const std::uint8_t tag = c.tags[loc.row];
    const Value* v;
    if (tag == kIntTag) {
      scratch = Value(c.data[loc.row]);
      v = &scratch;
    } else if (tag == kNilTag) {
      scratch = Value();
      v = &scratch;
    } else {
      v = &c.spill[static_cast<std::size_t>(c.data[loc.row])];
    }
    if (!p.fields()[f].match(*v, env)) return false;
  }
  return true;
}

void Store::prune(Bucket& bucket) {
  // An entry is stale when its slot died OR was reused by a later occupant
  // (generation mismatch); either way it no longer belongs here.
  std::erase_if(bucket.entries, [this](Entry e) { return !live(e); });
}

const Store::Bucket* Store::bucket(const Pattern& p) {
  if (auto key = p.key_constraint()) {
    auto it = field_index_.find(FieldKey{key->first, key->second});
    if (it == field_index_.end()) return nullptr;
    prune(it->second);
    return &it->second;
  }
  auto it = arity_index_.find(p.arity());
  if (it == arity_index_.end()) return nullptr;
  prune(it->second);
  return &it->second;
}

const Store::Bucket* Store::bucket(const Pattern& p) const {
  if (auto key = p.key_constraint()) {
    auto it = field_index_.find(FieldKey{key->first, key->second});
    return it == field_index_.end() ? nullptr : &it->second;
  }
  auto it = arity_index_.find(p.arity());
  return it == arity_index_.end() ? nullptr : &it->second;
}

const std::vector<Store::Entry>& Store::candidates(const Pattern& p) {
  const Bucket* b = bucket(p);
  return b != nullptr ? b->entries : kEmpty;
}

const std::vector<Store::Entry>& Store::candidates(const Pattern& p) const {
  const Bucket* b = bucket(p);
  return b != nullptr ? b->entries : kEmpty;
}

void Store::compact_columns() {
  for (std::uint32_t gi = 0; gi < groups_.size(); ++gi) {
    ColumnGroup& g = groups_[gi];
    if (g.live_rows == g.rows) continue;
    ColumnGroup packed;
    packed.arity = g.arity;
    packed.cols.resize(g.arity);
    packed.row_ids.reserve(g.live_rows);
    for (Column& c : packed.cols) {
      c.data.reserve(g.live_rows);
      c.tags.reserve(g.live_rows);
    }
    for (std::size_t row = 0; row < g.rows; ++row) {
      if (!g.row_live(row)) continue;
      for (std::size_t f = 0; f < g.arity; ++f) {
        Column& src = g.cols[f];
        Column& dst = packed.cols[f];
        const std::uint8_t tag = src.tags[row];
        if (tag == kIntTag || tag == kNilTag) {
          dst.data.push_back(src.data[row]);
        } else {
          dst.data.push_back(static_cast<std::int64_t>(dst.spill.size()));
          dst.spill.push_back(
              std::move(src.spill[static_cast<std::size_t>(src.data[row])]));
        }
        dst.tags.push_back(tag);
      }
      if ((packed.rows & 63) == 0) packed.live_bits.push_back(0);
      packed.live_bits[packed.rows >> 6] |= std::uint64_t{1}
                                            << (packed.rows & 63);
      const Id id = g.row_ids[row];
      locs_[id] = Loc{gi, static_cast<std::uint32_t>(packed.rows)};
      packed.row_ids.push_back(id);
      ++packed.rows;
      ++packed.live_rows;
    }
    g = std::move(packed);
    ++column_compactions_;
    g_column_compactions.fetch_add(1, std::memory_order_relaxed);
  }
  dead_rows_ = 0;
}

void Store::compact() {
  for (auto& [key, bucket] : field_index_) prune(bucket);
  for (auto& [arity, bucket] : arity_index_) prune(bucket);
  compact_columns();
}

Multiset Store::to_multiset() const {
  Multiset m;
  for (std::size_t id = 0; id < locs_.size(); ++id) {
    if (alive_[id]) m.add(element(static_cast<Id>(id)));
  }
  return m;
}

std::uint64_t column_compactions_total() noexcept {
  return g_column_compactions.load(std::memory_order_relaxed);
}

}  // namespace gammaflow::gamma
