#include "gammaflow/gamma/element.hpp"

#include <ostream>
#include <sstream>

namespace gammaflow::gamma {

const Value& Element::value() const {
  if (fields_.empty()) throw TypeError("value() on empty element");
  return fields_[0];
}

const std::string& Element::label() const {
  if (fields_.size() < 2) {
    throw TypeError("label() on element of arity " + std::to_string(arity()));
  }
  return fields_[1].as_str();
}

std::int64_t Element::tag() const {
  if (fields_.size() < 3) {
    throw TypeError("tag() on element of arity " + std::to_string(arity()));
  }
  return fields_[2].as_int();
}

std::string Element::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::size_t Element::hash() const noexcept {
  std::size_t h = 0x51ed270b76a4d1c3ULL ^ fields_.size();
  for (const Value& v : fields_) {
    h ^= v.hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Element& e) {
  os << '[';
  for (std::size_t i = 0; i < e.arity(); ++i) {
    if (i > 0) os << ", ";
    os << e.field(i);
  }
  return os << ']';
}

}  // namespace gammaflow::gamma
