// ParallelEngine: multithreaded multiset rewriting. Two store disciplines,
// chosen per stage:
//
// SHARDED (runtime::ShardedStore, when plan_shards accepts the stage's
// conflict classes and RunOptions::shard is on): the store is partitioned by
// conflict class, so each shard is a closed sub-chemistry — every match a
// shard can ever enable is local to it. Workers claim whole shards (atomic
// index + per-shard mutex) and run each to its own fixed point with no
// global lock, no revalidation ("gamma.class_fast_commits" counts every
// commit; "gamma.commit_conflicts" is zero by construction). Each shard owns
// a pre-split Rng drawn in shard order, so a completed run is deterministic
// in (seed, program, initial) regardless of worker count or claim order.
//
// OPTIMISTIC (single store, the general fallback): workers search for
// matches under a SHARED lock (read-only index probing) and commit under an
// EXCLUSIVE lock, revalidating the match first — element slots are reused,
// so between search and commit an id may have died or been recycled.
// Revalidation (runtime::MatchPipeline::validate) re-runs the pattern match
// and branch selection on the current slot contents, which makes the scheme
// linearizable: every committed firing was enabled at its commit point.
// Termination ("global termination state" in the paper) is the version-
// stamped quiescence vote (runtime::QuiescenceVote): when every worker's
// exhaustive search failed at the SAME store version, the stage is at its
// fixed point.
//
// Scaffolding — deadline/cancel governors, the firing budget, trace caps,
// and the telemetry tail — comes from runtime::StepLoop & friends; this file
// keeps the worker topology and commit strategy.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <numeric>
#include <shared_mutex>
#include <thread>

#include "gammaflow/common/logging.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"
#include "gammaflow/runtime/sharded_store.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::gamma {
namespace {

/// Per-worker/per-shard metric slots, written race-free by the owner and
/// summed into the StatsRegistry after the stage's threads joined.
struct WorkerMetrics {
  std::uint64_t match_attempts = 0;
  std::uint64_t match_failures = 0;
  std::uint64_t commit_conflicts = 0;
  std::uint64_t search_retries = 0;
  std::uint64_t quiescence_rounds = 0;
  std::uint64_t fires = 0;
  std::uint64_t class_fast_commits = 0;

  void add(const WorkerMetrics& m) {
    match_attempts += m.match_attempts;
    match_failures += m.match_failures;
    commit_conflicts += m.commit_conflicts;
    search_retries += m.search_retries;
    quiescence_rounds += m.quiescence_rounds;
    fires += m.fires;
    class_fast_commits += m.class_fast_commits;
  }
};

/// Read-only telemetry context shared by a stage's workers; null members
/// when telemetry is off.
struct StageObs {
  obs::Telemetry* tel = nullptr;
  // Indexed by reaction position in the stage ("gamma.fire_us.<name>").
  std::vector<Histogram*> fire_hist;

  StageObs(obs::Telemetry* t, const std::vector<Reaction>& stage) : tel(t) {
    if (tel == nullptr) return;
    fire_hist.reserve(stage.size());
    for (const Reaction& r : stage) {
      fire_hist.push_back(&tel->stats().hist("gamma.fire_us." + r.name()));
    }
  }
};

/// What one stage hands back to the run driver, whichever discipline ran it.
struct StageResult {
  Outcome outcome = Outcome::Completed;
  std::uint64_t steps = 0;
  std::map<std::string, std::uint64_t> fires;
  std::exception_ptr error;
};

// ---------------------------------------------------------------------------
// Sharded discipline
// ---------------------------------------------------------------------------

/// One shard's private execution state. The Rng is pre-split in shard order
/// (NOT claim order) — determinism lives here.
struct ShardTask {
  std::vector<std::size_t> reactions;  // stage positions owned by this shard
  Rng rng;
  runtime::TraceSink<FireEvent> trace;
  std::map<std::string, std::uint64_t> fires;
  WorkerMetrics wm;
  runtime::RecordCtx rctx;  // provenance coordinates (recorder null = off)

  ShardTask(Rng r, const RunOptions& options)
      : rng(std::move(r)), trace(options) {}
};

/// Runs one shard's closed sub-chemistry to its fixed point: shuffled passes
/// over the shard's reactions, firing each while it stays enabled (the
/// indexed-engine policy, applied shard-locally). Commits never revalidate —
/// the shard lock is total ownership. `fired` is the run-wide budget gate.
void run_shard(Store& store, const std::vector<Reaction>& stage,
               std::size_t stage_idx, ShardTask& task,
               const RunOptions& options, RunGovernor& governor,
               runtime::StopFlag& stop, std::atomic<std::uint64_t>& fired,
               std::mutex& error_mutex, std::exception_ptr& error,
               const StageObs& ob) {
  const expr::EvalMode mode = options.eval_mode();
  obs::Telemetry* const tel = ob.tel;
  std::vector<std::size_t> order = task.reactions;
  bool progressed = true;
  while (progressed && !stop.stopped()) {
    progressed = false;
    std::shuffle(order.begin(), order.end(), task.rng);
    for (const std::size_t idx : order) {
      if (stop.stopped()) return;
      const Reaction& r = stage[idx];
      while (true) {
        if (governor.should_stop()) {
          stop.publish(governor.outcome());
          return;
        }
        const std::uint64_t fire_start = tel ? tel->now_us() : 0;
        auto match = runtime::MatchPipeline::find(store, r, &task.rng, mode);
        ++task.wm.match_attempts;
        if (!match) {
          ++task.wm.match_failures;
          break;
        }
        // Run-wide budget gate: claim a step slot, give it back on refusal.
        const std::uint64_t n = fired.fetch_add(1, std::memory_order_relaxed);
        bool admitted = false;
        try {
          admitted = runtime::admit_step(options.limit_policy, n,
                                         options.max_steps, "parallel engine",
                                         "max_steps");
        } catch (...) {
          const std::scoped_lock lk(error_mutex);
          if (!error) error = std::current_exception();
        }
        if (!admitted) {
          fired.fetch_sub(1, std::memory_order_relaxed);
          stop.publish(Outcome::BudgetExhausted);
          return;
        }
        if (task.trace.admit()) {
          FireEvent ev;
          ev.reaction = r.name();
          ev.stage = stage_idx;
          for (const Store::Id id : match->ids) {
            ev.consumed.push_back(store.element(id));
          }
          ev.produced = match->produced;
          task.trace.push(std::move(ev));
        }
        ++task.fires[r.name()];
        ++task.wm.fires;
        ++task.wm.class_fast_commits;
        runtime::MatchPipeline::commit(
            store, *match, task.rctx.recorder != nullptr ? &task.rctx : nullptr);
        if (store.needs_compact()) store.compact();
        progressed = true;
        if (tel) {
          ob.fire_hist[idx]->observe(
              static_cast<double>(tel->now_us() - fire_start));
        }
      }
    }
  }
}

/// Stage driver for the sharded discipline. Workers claim shards by atomic
/// index and hold the shard mutex for the whole local fixpoint; per-shard
/// traces and metrics merge in shard order after join.
StageResult run_sharded_stage(const std::vector<Reaction>& stage,
                              std::size_t stage_idx,
                              const runtime::ShardPlan& plan,
                              Multiset& current, const RunOptions& options,
                              const runtime::StepLoop& loop, Rng& seed_rng,
                              unsigned workers, std::uint64_t prior_steps,
                              const StageObs& ob,
                              runtime::TraceSink<FireEvent>& trace,
                              WorkerMetrics& total,
                              const runtime::RunRecording& recording) {
  runtime::ShardedStore sharded(
      current, runtime::ShardMap(plan.label_shard, plan.shard_count));

  std::vector<ShardTask> tasks;
  tasks.reserve(plan.shard_count);
  for (std::size_t s = 0; s < plan.shard_count; ++s) {
    tasks.emplace_back(seed_rng.split(), options);
    tasks.back().rctx = recording.ctx(static_cast<std::int64_t>(stage_idx),
                                      static_cast<std::int64_t>(s));
  }
  for (std::size_t i = 0; i < stage.size(); ++i) {
    tasks[plan.reaction_shard[i]].reactions.push_back(i);
  }

  runtime::StopFlag stop;
  std::atomic<std::uint64_t> fired{prior_steps};
  std::atomic<std::size_t> next_shard{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  const unsigned nthreads = static_cast<unsigned>(
      std::min<std::size_t>(workers, plan.shard_count));
  auto worker = [&](unsigned wid) {
    obs::ThreadRecorder* const rec =
        ob.tel ? &ob.tel->register_thread("gamma-worker-" + std::to_string(wid))
               : nullptr;
    RunGovernor governor = loop.make_governor(options);
    while (!stop.stopped()) {
      const std::size_t s =
          next_shard.fetch_add(1, std::memory_order_relaxed);
      if (s >= sharded.shard_count()) return;
      runtime::ShardedStore::Shard& shard = sharded.shard(s);
      const std::scoped_lock lk(shard.mutex);
      obs::Span span(ob.tel, rec, "shard");
      run_shard(shard.store, stage, stage_idx, tasks[s], options, governor,
                stop, fired, error_mutex, error, ob);
      span.set_arg(tasks[s].wm.fires);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (unsigned w = 0; w < nthreads; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();

  StageResult out;
  out.error = error;
  out.outcome = stop.outcome();
  for (ShardTask& task : tasks) {  // shard order: deterministic merge
    out.steps += task.wm.fires;
    for (const auto& [name, n] : task.fires) out.fires[name] += n;
    trace.merge(std::move(task.trace));
    total.add(task.wm);
  }
  current = sharded.to_multiset();
  return out;
}

// ---------------------------------------------------------------------------
// Optimistic discipline
// ---------------------------------------------------------------------------

struct StageShared {
  Store store;
  std::shared_mutex mutex;
  std::condition_variable_any cv;

  // All guarded by `mutex` (exclusive side):
  runtime::QuiescenceVote vote;
  bool done = false;
  Outcome outcome = Outcome::Completed;
  std::uint64_t steps = 0;
  std::map<std::string, std::uint64_t> fires;
  runtime::TraceSink<FireEvent> trace;
  runtime::RecordCtx rctx;  // provenance coordinates (recorder null = off)
  std::exception_ptr error;

  StageShared(Store s, const RunOptions& options)
      : store(std::move(s)), trace(options) {}
};

void worker_loop(StageShared& sh, const std::vector<Reaction>& stage,
                 std::size_t stage_idx, const RunOptions& options,
                 const runtime::StepLoop& loop, Rng rng,
                 unsigned total_workers, unsigned worker_id,
                 std::uint64_t prior_steps, const StageObs& ob,
                 WorkerMetrics& wm) {
  std::vector<std::size_t> order(stage.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::uint64_t my_mark = runtime::QuiescenceVote::kNone;
  RunGovernor governor = loop.make_governor(options);
  const expr::EvalMode mode = options.eval_mode();

  obs::Telemetry* const tel = ob.tel;
  obs::ThreadRecorder* const rec =
      tel ? &tel->register_thread("gamma-worker-" + std::to_string(worker_id))
          : nullptr;

  while (true) {
    if (governor.should_stop()) {
      // Cooperative exit: first worker to notice flips `done` so waiting
      // peers wake and join; the store stays valid for the partial result.
      std::unique_lock lock(sh.mutex);
      if (!sh.done) {
        sh.done = true;
        sh.outcome = governor.outcome();
        sh.cv.notify_all();
      }
      return;
    }
    // --- search phase (shared lock) ---
    std::optional<Match> proposal;
    std::size_t proposal_idx = 0;
    std::uint64_t v_start = 0;
    const std::uint64_t search_start = tel ? tel->now_us() : 0;
    {
      obs::Span search_span(tel, rec, "search");
      std::shared_lock lock(sh.mutex);
      if (sh.done) return;
      v_start = sh.store.version();
      std::shuffle(order.begin(), order.end(), rng);
      const Store& cstore = sh.store;
      for (const std::size_t idx : order) {
        ++wm.match_attempts;
        proposal = runtime::MatchPipeline::find(cstore, stage[idx], &rng, mode);
        if (proposal) {
          proposal_idx = idx;
          break;
        }
        ++wm.match_failures;
      }
    }

    // --- commit phase (exclusive lock) ---
    obs::Span commit_span(tel, rec, proposal ? "commit" : "quiesce");
    std::unique_lock lock(sh.mutex);
    if (sh.done) return;

    if (proposal) {
      // Revalidate on current slot contents (ids may have been consumed or
      // recycled since the search).
      if (runtime::MatchPipeline::validate(sh.store, *proposal, mode)) {
        bool admitted = false;
        try {
          admitted = runtime::admit_step(
              options.limit_policy, prior_steps + sh.steps, options.max_steps,
              "parallel engine", "max_steps");
        } catch (...) {
          sh.error = std::current_exception();
        }
        if (!admitted) {
          sh.outcome = Outcome::BudgetExhausted;
          sh.done = true;
          sh.cv.notify_all();
          return;
        }
        if (sh.trace.admit()) {
          FireEvent ev;
          ev.reaction = proposal->reaction->name();
          ev.stage = stage_idx;
          for (const Store::Id id : proposal->ids) {
            ev.consumed.push_back(sh.store.element(id));
          }
          ev.produced = proposal->produced;
          sh.trace.push(std::move(ev));
        }
        ++sh.fires[proposal->reaction->name()];
        ++sh.steps;
        ++wm.fires;
        runtime::MatchPipeline::commit(
            sh.store, *proposal,
            sh.rctx.recorder != nullptr ? &sh.rctx : nullptr);
        // The read-only searches above cannot prune; they accrue garbage
        // debt on the buckets instead. Settle it here, where we hold the
        // exclusive lock anyway.
        if (sh.store.needs_compact()) sh.store.compact();
        if (tel) {
          // Search-to-commit latency: what one firing of this reaction cost
          // this worker, conflicts and lock waits included.
          ob.fire_hist[proposal_idx]->observe(
              static_cast<double>(tel->now_us() - search_start));
        }
        sh.cv.notify_all();  // wake quiescent workers: version moved
        continue;
      }
      // Invalidated proposal: fall through and re-search. This is progress
      // for someone else (another worker consumed our elements), so no
      // quiescence bookkeeping here.
      ++wm.commit_conflicts;
      if (rec) rec->instant("conflict", tel->now_us());
      continue;
    }

    // --- failed exhaustive search: quiescence protocol ---
    if (sh.store.version() != v_start) {
      // World changed while we searched: the empty search proves nothing.
      ++wm.search_retries;
      continue;
    }
    ++wm.quiescence_rounds;
    if (sh.vote.quiet(v_start, my_mark, total_workers)) {
      sh.done = true;
      sh.cv.notify_all();
      return;
    }
    sh.cv.wait(lock, [&] {
      return sh.done || sh.store.version() != v_start;
    });
    if (sh.done) return;
  }
}

StageResult run_optimistic_stage(const std::vector<Reaction>& stage,
                                 std::size_t stage_idx, Multiset& current,
                                 const RunOptions& options,
                                 const runtime::StepLoop& loop, Rng& seed_rng,
                                 unsigned workers, std::uint64_t prior_steps,
                                 const StageObs& ob,
                                 runtime::TraceSink<FireEvent>& trace,
                                 WorkerMetrics& total,
                                 const runtime::RunRecording& recording) {
  StageShared shared{Store(current), options};
  shared.rctx = recording.ctx(static_cast<std::int64_t>(stage_idx));
  std::vector<WorkerMetrics> wm(workers);

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back(worker_loop, std::ref(shared), std::cref(stage),
                         stage_idx, std::cref(options), std::cref(loop),
                         seed_rng.split(), workers, w, prior_steps,
                         std::cref(ob), std::ref(wm[w]));
  }
  for (auto& t : threads) t.join();

  StageResult out;
  out.error = shared.error;
  out.outcome = shared.outcome;
  out.steps = shared.steps;
  out.fires = std::move(shared.fires);
  trace.merge(std::move(shared.trace));
  for (const WorkerMetrics& m : wm) total.add(m);
  current = shared.store.to_multiset();
  return out;
}

}  // namespace

RunResult ParallelEngine::run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const {
  const unsigned workers = std::max(1u, options.workers);

  RunResult result;
  Multiset current = initial;
  Rng seed_rng(options.seed);
  // One StepLoop for the whole run: the absolute deadline every worker
  // governor shares, the run-wide firing budget, and the wall clock.
  runtime::StepLoop loop(options, options.max_steps, "parallel engine",
                         "max_steps");
  runtime::TraceSink<FireEvent> trace(options);
  const runtime::RunRecording recording(options, "parallel", "gamma");
  recording.begin(initial);
  const runtime::EngineTelemetry telemetry(options, "gamma");
  obs::Telemetry* const tel = telemetry.sink();
  WorkerMetrics total;
  GF_DEBUG << "gamma parallel run: " << workers << " workers, "
           << program.stages().size() << " stage(s), |M|=" << initial.size();

  for (std::size_t stage_idx = 0;
       stage_idx < program.stages().size() &&
       result.outcome == Outcome::Completed;
       ++stage_idx) {
    const auto& stage = program.stages()[stage_idx];
    const StageObs ob(tel, stage);
    const runtime::ShardPlan plan =
        runtime::plan_shards(stage, options.conflict_classes);

    StageResult sr;
    if (options.shard && plan.sharded) {
      GF_DEBUG << "stage " << stage_idx << ": sharded, " << plan.shard_count
               << " shard(s)";
      sr = run_sharded_stage(stage, stage_idx, plan, current, options, loop,
                             seed_rng, workers, result.steps, ob, trace,
                             total, recording);
    } else {
      sr = run_optimistic_stage(stage, stage_idx, current, options, loop,
                                seed_rng, workers, result.steps, ob, trace,
                                total, recording);
    }
    if (sr.error) std::rethrow_exception(sr.error);
    result.outcome = sr.outcome;
    result.steps += sr.steps;
    for (const auto& [name, n] : sr.fires) result.fires_by_reaction[name] += n;
    // One journal round per stage: workers joined, `current` is consistent.
    if (recording) recording.round(current);
  }

  if (tel) {
    auto& stats = tel->stats();
    stats.count("gamma.match_attempts", total.match_attempts);
    stats.count("gamma.match_failures", total.match_failures);
    stats.count("gamma.commit_conflicts", total.commit_conflicts);
    stats.count("gamma.search_retries", total.search_retries);
    stats.count("gamma.quiescence_rounds", total.quiescence_rounds);
    stats.count("gamma.fires", result.steps);
    stats.count("gamma.class_fast_commits", total.class_fast_commits);
    runtime::observe_reaction_compile(tel, program);
  }
  result.trace = trace.take();
  result.trace_dropped = trace.dropped();
  telemetry.finish(result.outcome, result.metrics);
  result.final_multiset = std::move(current);
  recording.finish(result.outcome, result.final_multiset);
  result.wall_seconds = loop.wall_seconds();
  GF_DEBUG << "gamma parallel run done: " << result.steps << " fires, |M|="
           << result.final_multiset.size() << ", "
           << result.wall_seconds << "s";
  return result;
}

}  // namespace gammaflow::gamma
