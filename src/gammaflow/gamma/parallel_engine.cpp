// ParallelEngine: multithreaded multiset rewriting with optimistic matching.
//
// Workers search for matches under a SHARED lock (read-only index probing)
// and commit under an EXCLUSIVE lock, revalidating the match first — element
// slots are reused, so between search and commit an id may have died or been
// recycled for a different element. Revalidation simply re-runs the pattern
// match and branch selection on the current slot contents, which makes the
// scheme linearizable: every committed firing was enabled at its commit
// point.
//
// Termination ("global termination state" in the paper): the store version
// counter increments on every mutation. A worker whose exhaustive search
// fails records the version it searched at; when all workers have failed at
// the SAME version, no reaction is enabled and the stage has reached its
// fixed point. Any commit invalidates the count because the version moves.
#include <chrono>
#include <condition_variable>
#include <exception>
#include <numeric>
#include <shared_mutex>
#include <thread>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"

namespace gammaflow::gamma {
namespace {

constexpr std::uint64_t kCompactInterval = 4096;

struct StageShared {
  Store store;
  std::shared_mutex mutex;
  std::condition_variable_any cv;

  // All guarded by `mutex` (exclusive side):
  std::uint64_t quiet_version = ~std::uint64_t{0};
  unsigned quiet_count = 0;
  bool done = false;
  std::uint64_t steps = 0;
  std::uint64_t commits_since_compact = 0;
  std::map<std::string, std::uint64_t> fires;
  std::vector<FireEvent> trace;
  std::exception_ptr error;

  explicit StageShared(Store s) : store(std::move(s)) {}
};

void worker_loop(StageShared& sh, const std::vector<Reaction>& stage,
                 std::size_t stage_idx, const RunOptions& options, Rng rng,
                 unsigned total_workers) {
  std::vector<std::size_t> order(stage.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::uint64_t my_quiet_version = ~std::uint64_t{0};

  while (true) {
    // --- search phase (shared lock) ---
    std::optional<Match> proposal;
    std::uint64_t v_start = 0;
    {
      std::shared_lock lock(sh.mutex);
      if (sh.done) return;
      v_start = sh.store.version();
      std::shuffle(order.begin(), order.end(), rng);
      const Store& cstore = sh.store;
      for (const std::size_t idx : order) {
        proposal = find_match(cstore, stage[idx], &rng);
        if (proposal) break;
      }
    }

    // --- commit phase (exclusive lock) ---
    std::unique_lock lock(sh.mutex);
    if (sh.done) return;

    if (proposal) {
      // Revalidate on current slot contents (ids may have been consumed or
      // recycled since the search).
      bool valid = true;
      std::vector<const Element*> elems;
      elems.reserve(proposal->ids.size());
      for (const Store::Id id : proposal->ids) {
        if (!sh.store.alive(id)) {
          valid = false;
          break;
        }
        elems.push_back(&sh.store.element(id));
      }
      std::optional<std::vector<Element>> produced;
      if (valid) {
        expr::Env env;
        if (proposal->reaction->match(elems, env)) {
          produced = proposal->reaction->apply(env);
        }
      }
      if (produced) {
        if (sh.steps >= options.max_steps) {
          try {
            throw EngineError("parallel engine exceeded max_steps=" +
                              std::to_string(options.max_steps));
          } catch (...) {
            sh.error = std::current_exception();
            sh.done = true;
            sh.cv.notify_all();
            return;
          }
        }
        if (options.record_trace) {
          FireEvent ev;
          ev.reaction = proposal->reaction->name();
          ev.stage = stage_idx;
          for (const Element* e : elems) ev.consumed.push_back(*e);
          ev.produced = *produced;
          sh.trace.push_back(std::move(ev));
        }
        Match fired = std::move(*proposal);
        fired.produced = std::move(*produced);
        ++sh.fires[fired.reaction->name()];
        ++sh.steps;
        commit(sh.store, fired);
        if (++sh.commits_since_compact >= kCompactInterval) {
          sh.store.compact();
          sh.commits_since_compact = 0;
        }
        sh.cv.notify_all();  // wake quiescent workers: version moved
        continue;
      }
      // Invalidated proposal: fall through and re-search. This is progress
      // for someone else (another worker consumed our elements), so no
      // quiescence bookkeeping here.
      continue;
    }

    // --- failed exhaustive search: quiescence protocol ---
    if (sh.store.version() != v_start) continue;  // world changed; retry
    if (sh.quiet_version != v_start) {
      sh.quiet_version = v_start;
      sh.quiet_count = 0;
      my_quiet_version = ~std::uint64_t{0};
    }
    if (my_quiet_version != v_start) {
      my_quiet_version = v_start;
      if (++sh.quiet_count >= total_workers) {
        sh.done = true;
        sh.cv.notify_all();
        return;
      }
    }
    sh.cv.wait(lock, [&] {
      return sh.done || sh.store.version() != v_start;
    });
    if (sh.done) return;
  }
}

}  // namespace

RunResult ParallelEngine::run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const {
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned workers = std::max(1u, options.workers);

  RunResult result;
  Multiset current = initial;
  Rng seed_rng(options.seed);

  for (std::size_t stage_idx = 0; stage_idx < program.stages().size();
       ++stage_idx) {
    const auto& stage = program.stages()[stage_idx];
    StageShared shared{Store(current)};

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads.emplace_back(worker_loop, std::ref(shared), std::cref(stage),
                           stage_idx, std::cref(options), seed_rng.split(),
                           workers);
    }
    for (auto& t : threads) t.join();

    if (shared.error) std::rethrow_exception(shared.error);
    result.steps += shared.steps;
    for (const auto& [name, n] : shared.fires) {
      result.fires_by_reaction[name] += n;
    }
    for (auto& ev : shared.trace) result.trace.push_back(std::move(ev));
    current = shared.store.to_multiset();
  }

  result.final_multiset = std::move(current);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace gammaflow::gamma
