// ParallelEngine: multithreaded multiset rewriting with optimistic matching.
//
// Workers search for matches under a SHARED lock (read-only index probing)
// and commit under an EXCLUSIVE lock, revalidating the match first — element
// slots are reused, so between search and commit an id may have died or been
// recycled for a different element. Revalidation simply re-runs the pattern
// match and branch selection on the current slot contents, which makes the
// scheme linearizable: every committed firing was enabled at its commit
// point.
//
// Termination ("global termination state" in the paper): the store version
// counter increments on every mutation. A worker whose exhaustive search
// fails records the version it searched at; when all workers have failed at
// the SAME version, no reaction is enabled and the stage has reached its
// fixed point. Any commit invalidates the count because the version moves.
//
// Telemetry (only when RunOptions::telemetry is set): each worker records
// search/commit spans into its own ring buffer, counts match attempts,
// commit conflicts (revalidation failures) and quiescence rounds into
// race-free per-worker slots that are flushed into the registry after join,
// and feeds per-reaction firing latencies into shared lock-free histograms.
#include <chrono>
#include <condition_variable>
#include <exception>
#include <numeric>
#include <shared_mutex>
#include <thread>

#include "gammaflow/common/logging.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::gamma {
namespace {

constexpr std::uint64_t kCompactInterval = 4096;

struct StageShared {
  Store store;
  std::shared_mutex mutex;
  std::condition_variable_any cv;

  // All guarded by `mutex` (exclusive side):
  std::uint64_t quiet_version = ~std::uint64_t{0};
  unsigned quiet_count = 0;
  bool done = false;
  Outcome outcome = Outcome::Completed;
  std::uint64_t steps = 0;
  std::uint64_t commits_since_compact = 0;
  std::map<std::string, std::uint64_t> fires;
  std::vector<FireEvent> trace;
  std::uint64_t trace_dropped = 0;
  std::exception_ptr error;

  explicit StageShared(Store s) : store(std::move(s)) {}
};

/// Per-worker metric slots, written race-free by the owning worker and
/// flushed into the StatsRegistry after the stage's threads joined.
struct WorkerMetrics {
  std::uint64_t match_attempts = 0;
  std::uint64_t match_failures = 0;
  std::uint64_t commit_conflicts = 0;
  std::uint64_t search_retries = 0;
  std::uint64_t quiescence_rounds = 0;
  std::uint64_t fires = 0;
  std::uint64_t class_fast_commits = 0;
};

/// Read-only telemetry context shared by a stage's workers; null members
/// when telemetry is off.
struct StageObs {
  obs::Telemetry* tel = nullptr;
  // Indexed by reaction position in the stage ("gamma.fire_us.<name>").
  std::vector<Histogram*> fire_hist;
};

/// `owned` restricts this worker to a subset of the stage's reactions (class
/// partition; null = all). `fast_commit` skips commit revalidation — sound
/// ONLY under the class partition: this worker is the sole owner of every
/// reaction that can consume its matched elements, so between its shared-lock
/// search and its exclusive-lock commit no other worker can remove them, and
/// live slots are never recycled.
void worker_loop(StageShared& sh, const std::vector<Reaction>& stage,
                 std::size_t stage_idx, const RunOptions& options,
                 std::chrono::steady_clock::time_point deadline, Rng rng,
                 unsigned total_workers, unsigned worker_id,
                 const StageObs& ob, WorkerMetrics& wm,
                 const std::vector<std::size_t>* owned, bool fast_commit) {
  std::vector<std::size_t> order;
  if (owned) {
    order = *owned;
  } else {
    order.resize(stage.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
  }
  std::uint64_t my_quiet_version = ~std::uint64_t{0};
  RunGovernor governor(options.cancel, deadline);
  const expr::EvalMode mode =
      options.compile ? expr::EvalMode::Vm : expr::EvalMode::Ast;

  obs::Telemetry* const tel = ob.tel;
  obs::ThreadRecorder* const rec =
      tel ? &tel->register_thread("gamma-worker-" + std::to_string(worker_id))
          : nullptr;

  while (true) {
    if (governor.should_stop()) {
      // Cooperative exit: first worker to notice flips `done` so waiting
      // peers wake and join; the store stays valid for the partial result.
      std::unique_lock lock(sh.mutex);
      if (!sh.done) {
        sh.done = true;
        sh.outcome = governor.outcome();
        sh.cv.notify_all();
      }
      return;
    }
    // --- search phase (shared lock) ---
    std::optional<Match> proposal;
    std::size_t proposal_idx = 0;
    std::uint64_t v_start = 0;
    const std::uint64_t search_start = tel ? tel->now_us() : 0;
    {
      obs::Span search_span(tel, rec, "search");
      std::shared_lock lock(sh.mutex);
      if (sh.done) return;
      v_start = sh.store.version();
      std::shuffle(order.begin(), order.end(), rng);
      const Store& cstore = sh.store;
      for (const std::size_t idx : order) {
        ++wm.match_attempts;
        proposal = find_match(cstore, stage[idx], &rng, mode);
        if (proposal) {
          proposal_idx = idx;
          break;
        }
        ++wm.match_failures;
      }
    }

    // --- commit phase (exclusive lock) ---
    obs::Span commit_span(tel, rec, proposal ? "commit" : "quiesce");
    std::unique_lock lock(sh.mutex);
    if (sh.done) return;

    if (proposal) {
      // Revalidate on current slot contents (ids may have been consumed or
      // recycled since the search).
      bool valid = true;
      std::vector<const Element*> elems;
      elems.reserve(proposal->ids.size());
      for (const Store::Id id : proposal->ids) {
        if (!fast_commit && !sh.store.alive(id)) {
          valid = false;
          break;
        }
        elems.push_back(&sh.store.element(id));
      }
      std::optional<std::vector<Element>> produced;
      if (fast_commit) {
        // Ownership guarantees the searched match is still enabled; reuse
        // the outputs computed during the search.
        produced = std::move(proposal->produced);
      } else if (valid) {
        expr::Env env;
        if (proposal->reaction->match(elems, env)) {
          produced = proposal->reaction->apply(env, mode);
        }
      }
      if (produced) {
        if (sh.steps >= options.max_steps) {
          if (options.limit_policy == LimitPolicy::Partial) {
            sh.outcome = Outcome::BudgetExhausted;
            sh.done = true;
            sh.cv.notify_all();
            return;
          }
          try {
            throw EngineError("parallel engine exceeded max_steps=" +
                              std::to_string(options.max_steps));
          } catch (...) {
            sh.error = std::current_exception();
            sh.done = true;
            sh.cv.notify_all();
            return;
          }
        }
        if (options.record_trace) {
          if (sh.trace.size() < options.trace_limit) {
            FireEvent ev;
            ev.reaction = proposal->reaction->name();
            ev.stage = stage_idx;
            for (const Element* e : elems) ev.consumed.push_back(*e);
            ev.produced = *produced;
            sh.trace.push_back(std::move(ev));
          } else {
            ++sh.trace_dropped;
          }
        }
        Match fired = std::move(*proposal);
        fired.produced = std::move(*produced);
        ++sh.fires[fired.reaction->name()];
        ++sh.steps;
        ++wm.fires;
        if (fast_commit) ++wm.class_fast_commits;
        commit(sh.store, fired);
        if (++sh.commits_since_compact >= kCompactInterval) {
          sh.store.compact();
          sh.commits_since_compact = 0;
        }
        if (tel) {
          // Search-to-commit latency: what one firing of this reaction cost
          // this worker, conflicts and lock waits included.
          ob.fire_hist[proposal_idx]->observe(
              static_cast<double>(tel->now_us() - search_start));
        }
        sh.cv.notify_all();  // wake quiescent workers: version moved
        continue;
      }
      // Invalidated proposal: fall through and re-search. This is progress
      // for someone else (another worker consumed our elements), so no
      // quiescence bookkeeping here.
      ++wm.commit_conflicts;
      if (rec) rec->instant("conflict", tel->now_us());
      continue;
    }

    // --- failed exhaustive search: quiescence protocol ---
    if (sh.store.version() != v_start) {
      // World changed while we searched: the empty search proves nothing.
      ++wm.search_retries;
      continue;
    }
    ++wm.quiescence_rounds;
    if (sh.quiet_version != v_start) {
      sh.quiet_version = v_start;
      sh.quiet_count = 0;
      my_quiet_version = ~std::uint64_t{0};
    }
    if (my_quiet_version != v_start) {
      my_quiet_version = v_start;
      if (++sh.quiet_count >= total_workers) {
        sh.done = true;
        sh.cv.notify_all();
        return;
      }
    }
    sh.cv.wait(lock, [&] {
      return sh.done || sh.store.version() != v_start;
    });
    if (sh.done) return;
  }
}

}  // namespace

RunResult ParallelEngine::run(const Program& program, const Multiset& initial,
                              const RunOptions& options) const {
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned workers = std::max(1u, options.workers);

  RunResult result;
  Multiset current = initial;
  Rng seed_rng(options.seed);
  // One absolute deadline for the whole run (all stages, all workers).
  const auto deadline = deadline_from_now(options.deadline);
  obs::Telemetry* const tel = options.telemetry;
  const std::uint64_t instrs0 = expr::vm_instrs_executed();
  GF_DEBUG << "gamma parallel run: " << workers << " workers, "
           << program.stages().size() << " stage(s), |M|=" << initial.size();

  for (std::size_t stage_idx = 0;
       stage_idx < program.stages().size() &&
       result.outcome == Outcome::Completed;
       ++stage_idx) {
    const auto& stage = program.stages()[stage_idx];
    StageShared shared{Store(current)};

    // Conflict-class partition: when the caller's classes cover this whole
    // stage and span >= 2 classes, give every class exactly one owning
    // worker. Owners commit without revalidation (see worker_loop) — the
    // partition is what makes that sound.
    std::vector<std::vector<std::size_t>> owned_sets;
    if (!options.conflict_classes.empty() && stage.size() >= 2) {
      std::vector<std::size_t> cls(stage.size());
      bool covered = true;
      for (std::size_t i = 0; i < stage.size() && covered; ++i) {
        const auto it = options.conflict_classes.find(stage[i].name());
        covered = it != options.conflict_classes.end();
        if (covered) cls[i] = it->second;
      }
      std::map<std::size_t, unsigned> owner;  // class id -> worker
      if (covered) {
        for (const std::size_t c : cls) {
          owner.emplace(c, static_cast<unsigned>(owner.size()) %
                               std::max(1u, workers));
        }
      }
      if (covered && owner.size() >= 2) {
        owned_sets.assign(std::min<std::size_t>(workers, owner.size()), {});
        for (std::size_t i = 0; i < stage.size(); ++i) {
          owned_sets[owner.at(cls[i])].push_back(i);
        }
      }
    }
    const bool class_mode = !owned_sets.empty();
    const unsigned stage_workers =
        class_mode ? static_cast<unsigned>(owned_sets.size()) : workers;

    StageObs ob;
    ob.tel = tel;
    if (tel) {
      ob.fire_hist.reserve(stage.size());
      for (const Reaction& r : stage) {
        ob.fire_hist.push_back(&tel->stats().hist("gamma.fire_us." + r.name()));
      }
    }
    std::vector<WorkerMetrics> wm(stage_workers);

    std::vector<std::thread> threads;
    threads.reserve(stage_workers);
    for (unsigned w = 0; w < stage_workers; ++w) {
      threads.emplace_back(worker_loop, std::ref(shared), std::cref(stage),
                           stage_idx, std::cref(options), deadline,
                           seed_rng.split(), stage_workers, w, std::cref(ob),
                           std::ref(wm[w]),
                           class_mode ? &owned_sets[w] : nullptr, class_mode);
    }
    for (auto& t : threads) t.join();

    if (shared.error) std::rethrow_exception(shared.error);
    result.outcome = shared.outcome;
    result.steps += shared.steps;
    for (const auto& [name, n] : shared.fires) {
      result.fires_by_reaction[name] += n;
    }
    for (auto& ev : shared.trace) result.trace.push_back(std::move(ev));
    result.trace_dropped += shared.trace_dropped;
    current = shared.store.to_multiset();

    if (tel) {
      WorkerMetrics total;
      for (const WorkerMetrics& m : wm) {
        total.match_attempts += m.match_attempts;
        total.match_failures += m.match_failures;
        total.commit_conflicts += m.commit_conflicts;
        total.search_retries += m.search_retries;
        total.quiescence_rounds += m.quiescence_rounds;
        total.fires += m.fires;
        total.class_fast_commits += m.class_fast_commits;
      }
      auto& stats = tel->stats();
      stats.count("gamma.match_attempts", total.match_attempts);
      stats.count("gamma.match_failures", total.match_failures);
      stats.count("gamma.commit_conflicts", total.commit_conflicts);
      stats.count("gamma.search_retries", total.search_retries);
      stats.count("gamma.quiescence_rounds", total.quiescence_rounds);
      stats.count("gamma.fires", total.fires);
      stats.count("gamma.class_fast_commits", total.class_fast_commits);
    }
  }

  if (tel) {
    auto& stats = tel->stats();
    stats.count(std::string("gamma.outcome.") + to_string(result.outcome));
    stats.count(std::string("gamma.eval_mode.") +
                expr::to_string(options.compile ? expr::EvalMode::Vm
                                                : expr::EvalMode::Ast));
    stats.count("vm.instrs_executed", expr::vm_instrs_executed() - instrs0);
    Histogram& compile_hist = stats.hist("expr.compile_ms");
    for (const auto& st : program.stages()) {
      for (const Reaction& r : st) compile_hist.observe(r.compiled().compile_ms());
    }
    result.metrics = tel->metrics();
  }
  result.final_multiset = std::move(current);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  GF_DEBUG << "gamma parallel run done: " << result.steps << " fires, |M|="
           << result.final_multiset.size() << ", "
           << result.wall_seconds << "s";
  return result;
}

}  // namespace gammaflow::gamma
