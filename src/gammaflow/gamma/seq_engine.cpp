// SequentialEngine: the Γ operator of Eq. (1) executed literally. Each step
// enumerates the enabled matches of every reaction in the current stage and
// fires ONE chosen uniformly at random — the closest executable rendering of
// "let x1..xn ∈ M, let i ∈ [1,m] such that Ri(x1..xn)" with a fair
// nondeterministic choice. Quadratic-ish per step; the semantic oracle the
// other engines are tested against. All scaffolding (deadline, cancel,
// budget, trace cap, telemetry tail) lives in runtime::StepLoop & friends —
// this file is pure match-selection policy.
#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::gamma {

RunResult SequentialEngine::run(const Program& program, const Multiset& initial,
                                const RunOptions& options) const {
  RunResult result;
  Rng rng(options.seed);
  Store store(initial);
  const expr::EvalMode mode = options.eval_mode();

  runtime::StepLoop loop(options, options.max_steps, "sequential engine",
                         "max_steps");
  runtime::TraceSink<FireEvent> trace(options);
  const runtime::RunRecording recording(options, "sequential", "gamma");
  recording.begin(initial);
  const runtime::EngineTelemetry telemetry(options, "gamma");
  obs::Telemetry* const tel = telemetry.sink();
  obs::ThreadRecorder* const rec = telemetry.recorder("gamma-sequential");
  Histogram* const enabled_hist =
      tel ? &tel->stats().hist("gamma.enabled_matches") : nullptr;
  std::uint64_t attempts = 0;

  for (std::size_t stage_idx = 0;
       stage_idx < program.stages().size() && loop.running(); ++stage_idx) {
    const auto& stage = program.stages()[stage_idx];
    while (!loop.should_stop()) {
      obs::Span step_span(tel, rec, "step");
      // Gather the enabled matches of every reaction, capped for safety on
      // large multisets. The cap is per step, re-enumerated from scratch, so
      // no stale match is ever fired.
      std::vector<Match> matches;
      for (const Reaction& r : stage) {
        ++attempts;
        runtime::MatchPipeline::enumerate(
            store, r, options.uniform_cap - matches.size(),
            [&](const Match& m) {
              matches.push_back(m);
              return matches.size() < options.uniform_cap;
            },
            mode);
        if (matches.size() >= options.uniform_cap) break;
      }
      if (tel) enabled_hist->observe(static_cast<double>(matches.size()));
      if (matches.empty()) break;  // stage fixed point
      step_span.set_arg(matches.size());

      const Match& chosen =
          matches[static_cast<std::size_t>(rng.bounded(matches.size()))];
      if (!loop.admit(result.steps)) break;
      if (trace.admit()) {
        FireEvent ev;
        ev.reaction = chosen.reaction->name();
        ev.stage = stage_idx;
        for (const Store::Id id : chosen.ids) {
          ev.consumed.push_back(store.element(id));
        }
        ev.produced = chosen.produced;
        trace.push(std::move(ev));
      }
      ++result.fires_by_reaction[chosen.reaction->name()];
      ++result.steps;
      const runtime::RecordCtx rctx =
          recording.ctx(static_cast<std::int64_t>(stage_idx));
      runtime::MatchPipeline::commit(store, chosen,
                                     recording ? &rctx : nullptr);
    }
    // One journal round per stage fixed point: the store the next stage
    // starts from.
    if (recording) recording.round(store);
  }

  if (tel) {
    auto& stats = tel->stats();
    stats.count("gamma.match_attempts", attempts);
    stats.count("gamma.fires", result.steps);
    runtime::observe_reaction_compile(tel, program);
  }
  result.outcome = loop.outcome();
  result.trace = trace.take();
  result.trace_dropped = trace.dropped();
  telemetry.finish(result.outcome, result.metrics);
  result.final_multiset = store.to_multiset();
  recording.finish(result.outcome, result.final_multiset);
  result.wall_seconds = loop.wall_seconds();
  return result;
}

}  // namespace gammaflow::gamma
