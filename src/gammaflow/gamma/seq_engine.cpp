// SequentialEngine: the Γ operator of Eq. (1) executed literally. Each step
// enumerates the enabled matches of every reaction in the current stage and
// fires ONE chosen uniformly at random — the closest executable rendering of
// "let x1..xn ∈ M, let i ∈ [1,m] such that Ri(x1..xn)" with a fair
// nondeterministic choice. Quadratic-ish per step; the semantic oracle the
// other engines are tested against.
#include <chrono>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::gamma {

RunResult SequentialEngine::run(const Program& program, const Multiset& initial,
                                const RunOptions& options) const {
  const auto t0 = std::chrono::steady_clock::now();
  RunResult result;
  Rng rng(options.seed);
  Store store(initial);
  const expr::EvalMode mode =
      options.compile ? expr::EvalMode::Vm : expr::EvalMode::Ast;

  obs::Telemetry* const tel = options.telemetry;
  obs::ThreadRecorder* const rec =
      tel ? &tel->register_thread("gamma-sequential") : nullptr;
  Histogram* const enabled_hist =
      tel ? &tel->stats().hist("gamma.enabled_matches") : nullptr;
  const std::uint64_t instrs0 = expr::vm_instrs_executed();
  std::uint64_t attempts = 0;

  RunGovernor governor(options.cancel, options.deadline);

  for (std::size_t stage_idx = 0;
       stage_idx < program.stages().size() &&
       result.outcome == Outcome::Completed;
       ++stage_idx) {
    const auto& stage = program.stages()[stage_idx];
    while (true) {
      if (governor.should_stop()) {
        result.outcome = governor.outcome();
        break;
      }
      obs::Span step_span(tel, rec, "step");
      // Gather the enabled matches of every reaction, capped for safety on
      // large multisets. The cap is per step, re-enumerated from scratch, so
      // no stale match is ever fired.
      std::vector<Match> matches;
      for (const Reaction& r : stage) {
        ++attempts;
        enumerate_matches(
            store, r, options.uniform_cap - matches.size(),
            [&](const Match& m) {
              matches.push_back(m);
              return matches.size() < options.uniform_cap;
            },
            mode);
        if (matches.size() >= options.uniform_cap) break;
      }
      if (tel) enabled_hist->observe(static_cast<double>(matches.size()));
      if (matches.empty()) break;  // stage fixed point
      step_span.set_arg(matches.size());

      const Match& chosen =
          matches[static_cast<std::size_t>(rng.bounded(matches.size()))];
      if (result.steps >= options.max_steps) {
        if (options.limit_policy == LimitPolicy::Throw) {
          throw EngineError("sequential engine exceeded max_steps=" +
                            std::to_string(options.max_steps));
        }
        result.outcome = Outcome::BudgetExhausted;
        break;
      }
      if (options.record_trace) {
        if (result.trace.size() < options.trace_limit) {
          FireEvent ev;
          ev.reaction = chosen.reaction->name();
          ev.stage = stage_idx;
          for (const Store::Id id : chosen.ids) {
            ev.consumed.push_back(store.element(id));
          }
          ev.produced = chosen.produced;
          result.trace.push_back(std::move(ev));
        } else {
          ++result.trace_dropped;
        }
      }
      ++result.fires_by_reaction[chosen.reaction->name()];
      ++result.steps;
      commit(store, chosen);
    }
  }

  if (tel) {
    auto& stats = tel->stats();
    stats.count("gamma.match_attempts", attempts);
    stats.count("gamma.fires", result.steps);
    stats.count(std::string("gamma.outcome.") + to_string(result.outcome));
    stats.count(std::string("gamma.eval_mode.") + expr::to_string(mode));
    stats.count("vm.instrs_executed", expr::vm_instrs_executed() - instrs0);
    Histogram& compile_hist = stats.hist("expr.compile_ms");
    for (const auto& stage : program.stages()) {
      for (const Reaction& r : stage) {
        compile_hist.observe(r.compiled().compile_ms());
      }
    }
    result.metrics = tel->metrics();
  }
  result.final_multiset = store.to_multiset();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace gammaflow::gamma
