// Trace replay: independently validates an engine run by re-applying its
// recorded firing sequence to the initial multiset with plain multiset
// arithmetic (no engine involved). Each step checks that the consumed
// elements were actually present — a linearizability witness for the
// parallel engine and a cheap cross-check for all of them.
#pragma once

#include <span>

#include "gammaflow/gamma/engine.hpp"

namespace gammaflow::gamma {

/// Replays `trace` over `initial`. Throws EngineError at the first event
/// whose consumed elements are not present (an invalid schedule). Returns
/// the resulting multiset — equal to the run's final_multiset for any trace
/// an engine legitimately produced.
[[nodiscard]] Multiset replay_trace(const Multiset& initial,
                                    std::span<const FireEvent> trace);

/// Convenience: replays a run's own trace and compares against its final
/// multiset. Returns true when they agree (requires record_trace).
[[nodiscard]] bool validate_run(const Multiset& initial, const RunResult& run);

}  // namespace gammaflow::gamma
