// Gamma program: reactions composed with the parallel operator `|` and the
// sequential operator `;` ([13], [15]-[17]). We normalize composition to a
// pipeline of stages: each stage is a set of reactions executed to their
// combined fixed point (all in parallel, `R1|R2|...`); `;` chains stages.
// This covers every program in the paper (which uses pure `|`) plus the
// staged programs classic Gamma examples need (e.g. sort-then-select).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "gammaflow/gamma/reaction.hpp"

namespace gammaflow::gamma {

class Program {
 public:
  Program() = default;
  /// Single-stage program from one reaction.
  explicit Program(Reaction r) : stages_{{std::move(r)}} {}
  /// Single-stage program R1 | R2 | ... | Rn.
  explicit Program(std::vector<Reaction> reactions)
      : stages_{std::move(reactions)} {
    if (stages_.back().empty()) stages_.clear();
  }

  /// Builds a program directly from a stage list, dropping empty stages
  /// (an empty stage is a no-op fixpoint). This is the shape rewrite passes
  /// produce when they edit stages in place — fuse_reactions, expand_program,
  /// and the optimizer all reassemble through here.
  [[nodiscard]] static Program from_stages(
      std::vector<std::vector<Reaction>> stages);

  /// `a | b`: merges two programs into one combined-fixpoint stage.
  /// Requires both to be single-stage (composing `;` under `|` has no
  /// agreed-upon semantics in the Gamma calculus and is rejected).
  friend Program operator|(Program a, Program b);

  /// `a ; b` — run a to fixpoint, then b.
  [[nodiscard]] Program then(Program next) const;

  [[nodiscard]] const std::vector<std::vector<Reaction>>& stages() const noexcept {
    return stages_;
  }
  [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }
  [[nodiscard]] std::size_t reaction_count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return stages_.empty(); }

  /// All reactions across stages, in order (diagnostics, conversion).
  [[nodiscard]] std::vector<const Reaction*> all_reactions() const;

  /// Finds a reaction by name anywhere in the program; nullptr if absent.
  [[nodiscard]] const Reaction* find(const std::string& name) const noexcept;

  /// DSL rendering of the whole program (stages joined by ';', reactions by
  /// blank lines) — parseable by gamma::dsl::parse_program.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<Reaction>> stages_;
};

std::ostream& operator<<(std::ostream& os, const Program& p);

}  // namespace gammaflow::gamma
