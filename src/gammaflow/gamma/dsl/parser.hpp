// Parser for the Gamma surface syntax of Fig. 3, exactly as the paper's
// listings write it (case-insensitive keywords, single-quoted labels):
//
//   program  := stmt ( ('|' | ';')? stmt )*        -- '|' joins the current
//                                                  -- stage, ';' starts a new
//                                                  -- sequential stage
//   stmt     := IDENT '=' 'replace' patterns branch+
//   patterns := pattern (',' pattern)*
//   pattern  := '[' pfield (',' pfield)* ']' | IDENT
//   pfield   := IDENT | literal                    -- IDENT binds, literal
//                                                  -- constrains
//   branch   := 'by' outputs ('if' expr | 'else' | 'where' expr)?
//   outputs  := '0' | otuple (',' otuple)*         -- 'by 0' produces nothing
//   otuple   := '[' expr (',' expr)* ']' | expr    -- bare expr = 1-tuple
//
// Reactions separated by nothing (juxtaposition) compose in parallel, same
// as '|' — matching the paper's convention R1|R2|...|Rn.
#pragma once

#include <string>
#include <string_view>

#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"
#include "gammaflow/gamma/reaction.hpp"

namespace gammaflow::gamma::dsl {

/// Parses a whole program. Throws ParseError with location on bad syntax and
/// ProgramError on semantically invalid reactions (unbound output variables,
/// misplaced else, duplicate reaction names).
[[nodiscard]] Program parse_program(std::string_view source);

/// Parses exactly one reaction definition.
[[nodiscard]] Reaction parse_reaction(std::string_view source);

/// Parses a comma-separated multiset literal — the CLI `--init` syntax and
/// the serve protocol's `elements`/`init` fields: tuples in brackets
/// ("[3,'a'], [1,'b',0]") or bare literals as 1-tuples ("7, 9"). Fields must
/// fold to literals (constant expressions allowed); throws Error otherwise.
[[nodiscard]] Multiset parse_elements(std::string_view source);

/// Renders a program in the surface syntax; parse_program(print(p)) yields a
/// structurally identical program (round-trip property, tested).
[[nodiscard]] std::string print(const Program& program);
[[nodiscard]] std::string print(const Reaction& reaction);

}  // namespace gammaflow::gamma::dsl
