#include "gammaflow/gamma/dsl/parser.hpp"

#include <set>

#include "gammaflow/common/error.hpp"
#include "gammaflow/expr/parser.hpp"
#include "gammaflow/expr/simplify.hpp"

namespace gammaflow::gamma::dsl {

using expr::Token;
using expr::TokenKind;
using expr::TokenStream;

namespace {

PatternField parse_pattern_field(TokenStream& ts) {
  const Token& t = ts.peek();
  switch (t.kind) {
    case TokenKind::Ident:
      ts.advance();
      return PatternField::bind(t.text);
    case TokenKind::IntLit:
    case TokenKind::RealLit:
    case TokenKind::StrLit:
    case TokenKind::KwTrue:
    case TokenKind::KwFalse:
      ts.advance();
      return PatternField::literal(t.value);
    case TokenKind::Minus: {
      ts.advance();
      const Token& lit = ts.peek();
      if (lit.kind == TokenKind::IntLit) {
        ts.advance();
        return PatternField::literal(Value(-lit.value.as_int()));
      }
      if (lit.kind == TokenKind::RealLit) {
        ts.advance();
        return PatternField::literal(Value(-lit.value.as_real()));
      }
      throw ParseError("expected number after '-' in pattern", lit.line,
                       lit.column);
    }
    default:
      throw ParseError(std::string("expected pattern field, found ") +
                           to_string(t.kind),
                       t.line, t.column);
  }
}

Pattern parse_pattern(TokenStream& ts) {
  if (ts.at(TokenKind::Ident)) {
    // Bare variable: classic Gamma one-field element.
    return Pattern::var(ts.advance().text);
  }
  ts.expect(TokenKind::LBracket);
  std::vector<PatternField> fields;
  fields.push_back(parse_pattern_field(ts));
  while (ts.accept(TokenKind::Comma)) fields.push_back(parse_pattern_field(ts));
  ts.expect(TokenKind::RBracket);
  return Pattern(std::move(fields));
}

std::vector<expr::ExprPtr> parse_output_tuple(TokenStream& ts) {
  if (ts.accept(TokenKind::LBracket)) {
    std::vector<expr::ExprPtr> fields;
    fields.push_back(expr::parse_expression(ts));
    while (ts.accept(TokenKind::Comma)) {
      fields.push_back(expr::parse_expression(ts));
    }
    ts.expect(TokenKind::RBracket);
    return fields;
  }
  // Bare expression: one-field output element.
  return {expr::parse_expression(ts)};
}

Branch parse_branch(TokenStream& ts) {
  ts.expect(TokenKind::KwBy);
  std::vector<std::vector<expr::ExprPtr>> outputs;
  // 'by 0' means "produce nothing" (the paper's notation for pure
  // consumption). A literal single-field [0] spells the element explicitly.
  if (ts.at(TokenKind::IntLit) && ts.peek().value.as_int() == 0 &&
      ts.peek(1).kind != TokenKind::Comma) {
    ts.advance();
  } else {
    outputs.push_back(parse_output_tuple(ts));
    while (ts.accept(TokenKind::Comma)) outputs.push_back(parse_output_tuple(ts));
  }

  if (ts.accept(TokenKind::KwIf) || ts.accept(TokenKind::KwWhere)) {
    return Branch::when(expr::parse_expression(ts), std::move(outputs));
  }
  if (ts.accept(TokenKind::KwElse)) {
    return Branch::otherwise(std::move(outputs));
  }
  return Branch::unconditional(std::move(outputs));
}

Reaction parse_reaction_body(TokenStream& ts) {
  const Token& name_tok = ts.expect(TokenKind::Ident);
  const std::string name = name_tok.text;
  ts.expect(TokenKind::Assign);
  ts.expect(TokenKind::KwReplace);

  std::vector<Pattern> patterns;
  patterns.push_back(parse_pattern(ts));
  while (ts.accept(TokenKind::Comma)) patterns.push_back(parse_pattern(ts));

  std::vector<Branch> branches;
  while (ts.at(TokenKind::KwBy)) branches.push_back(parse_branch(ts));
  if (branches.empty()) {
    const Token& t = ts.peek();
    throw ParseError("reaction '" + name + "' needs at least one 'by' clause",
                     t.line, t.column);
  }
  return Reaction(name, std::move(patterns), std::move(branches));
}

}  // namespace

Program parse_program(std::string_view source) {
  TokenStream ts(expr::tokenize(source));
  std::vector<std::vector<Reaction>> stages;
  std::vector<Reaction> current;
  std::set<std::string> names;

  while (!ts.done()) {
    Reaction r = parse_reaction_body(ts);
    if (!names.insert(r.name()).second) {
      throw ProgramError("duplicate reaction name '" + r.name() + "'");
    }
    current.push_back(std::move(r));
    if (ts.accept(TokenKind::Semicolon)) {
      stages.push_back(std::move(current));
      current.clear();
    } else {
      ts.accept(TokenKind::Pipe);  // '|' is optional between parallel reactions
    }
  }
  if (!current.empty()) stages.push_back(std::move(current));
  if (stages.empty()) throw ProgramError("empty Gamma program");

  Program program(std::move(stages.front()));
  for (std::size_t i = 1; i < stages.size(); ++i) {
    program = program.then(Program(std::move(stages[i])));
  }
  return program;
}

Reaction parse_reaction(std::string_view source) {
  TokenStream ts(expr::tokenize(source));
  Reaction r = parse_reaction_body(ts);
  if (!ts.done()) {
    const Token& t = ts.peek();
    throw ParseError("trailing input after reaction: '" + t.text + "'", t.line,
                     t.column);
  }
  return r;
}

Multiset parse_elements(std::string_view source) {
  Multiset m;
  TokenStream ts(expr::tokenize(source));
  const auto literal_field = [&]() -> Value {
    const expr::ExprPtr e = expr::parse_expression(ts);
    const expr::ExprPtr folded = expr::simplify(e);
    if (folded->kind() != expr::Expr::Kind::Literal) {
      throw Error("multiset element fields must be literals, got '" +
                  e->to_string() + "'");
    }
    return folded->literal();
  };
  while (!ts.done()) {
    ts.accept(TokenKind::Comma);
    if (ts.done()) break;
    std::vector<Value> fields;
    if (ts.accept(TokenKind::LBracket)) {
      fields.push_back(literal_field());
      while (ts.accept(TokenKind::Comma)) fields.push_back(literal_field());
      ts.expect(TokenKind::RBracket);
    } else {
      fields.push_back(literal_field());
    }
    m.add(Element(std::move(fields)));
  }
  return m;
}

std::string print(const Program& program) { return program.to_string(); }
std::string print(const Reaction& reaction) { return reaction.to_string(); }

}  // namespace gammaflow::gamma::dsl
