// Replace-list patterns. A reaction's replace list is a sequence of element
// patterns; each pattern field either BINDS a variable or CONSTRAINS the
// field to a literal. A variable repeated across fields/patterns is an
// equality constraint — this is exactly how the paper's reactions force all
// consumed operands to carry the same iteration tag `v`.
//
//   R16 = replace [id1,'B13',v], [id2,'B15',v] ...
//         ^ binds id1, constrains field1=='B13', binds v; second pattern
//           then REQUIRES its third field to equal the bound v.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gammaflow/common/value.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/gamma/element.hpp"

namespace gammaflow::gamma {

class PatternField {
 public:
  static PatternField bind(std::string name) {
    PatternField f;
    f.is_binder_ = true;
    f.name_ = std::move(name);
    return f;
  }
  static PatternField literal(Value v) {
    PatternField f;
    f.is_binder_ = false;
    f.value_ = std::move(v);
    return f;
  }

  [[nodiscard]] bool is_binder() const noexcept { return is_binder_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Value& value() const noexcept { return value_; }

  /// Matches one element field, extending `env` (binders) or checking
  /// against it (already-bound names / literals). Returns false on mismatch;
  /// may leave partial bindings in env on failure — callers restart env per
  /// candidate tuple.
  [[nodiscard]] bool match(const Value& field, expr::Env& env) const;

  friend bool operator==(const PatternField& a, const PatternField& b) noexcept {
    return a.is_binder_ == b.is_binder_ && a.name_ == b.name_ &&
           a.value_ == b.value_;
  }

 private:
  bool is_binder_ = true;
  std::string name_;
  Value value_;
};

class Pattern {
 public:
  Pattern() = default;
  explicit Pattern(std::vector<PatternField> fields)
      : fields_(std::move(fields)) {}

  /// Shorthand: a bare single-binder pattern (classic Gamma `replace x, y`).
  static Pattern var(std::string name) {
    return Pattern({PatternField::bind(std::move(name))});
  }
  /// The converter convention [valueVar, 'label', tagVar].
  static Pattern tagged(std::string value_var, std::string label,
                        std::string tag_var) {
    return Pattern({PatternField::bind(std::move(value_var)),
                    PatternField::literal(Value(std::move(label))),
                    PatternField::bind(std::move(tag_var))});
  }
  /// Fig. 1 convention [valueVar, 'label'].
  static Pattern labeled(std::string value_var, std::string label) {
    return Pattern({PatternField::bind(std::move(value_var)),
                    PatternField::literal(Value(std::move(label)))});
  }

  [[nodiscard]] std::size_t arity() const noexcept { return fields_.size(); }
  [[nodiscard]] const std::vector<PatternField>& fields() const noexcept {
    return fields_;
  }

  [[nodiscard]] bool match(const Element& e, expr::Env& env) const;

  /// The first literal-constrained field, if any: (field index, value).
  /// Engines use it to narrow candidates to an index bucket. Converter
  /// patterns always constrain field 1 (the edge label).
  [[nodiscard]] std::optional<std::pair<std::size_t, Value>> key_constraint()
      const;

  /// All binder names in field order (first occurrence only).
  [[nodiscard]] std::vector<std::string> binders() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Pattern& a, const Pattern& b) noexcept {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<PatternField> fields_;
};

std::ostream& operator<<(std::ostream& os, const Pattern& p);

}  // namespace gammaflow::gamma
