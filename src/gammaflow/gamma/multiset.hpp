// Multiset: the single shared database of a Gamma program (the "chemical
// solution"). This is the public value type: ordered storage is an
// implementation detail, equality and printing are canonical (sorted), and
// duplicates are first-class. Engines convert to/from their internal indexed
// stores at run boundaries.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "gammaflow/gamma/element.hpp"

namespace gammaflow::gamma {

class Multiset {
 public:
  Multiset() = default;
  Multiset(std::initializer_list<Element> elements) : elements_(elements) {}
  explicit Multiset(std::vector<Element> elements)
      : elements_(std::move(elements)) {}

  void add(Element e) { elements_.push_back(std::move(e)); }
  void add(const Multiset& other) {
    elements_.insert(elements_.end(), other.elements_.begin(),
                     other.elements_.end());
  }

  /// Removes one instance equal to `e`; returns false if absent.
  bool remove_one(const Element& e);

  [[nodiscard]] std::size_t size() const noexcept { return elements_.size(); }
  [[nodiscard]] bool empty() const noexcept { return elements_.empty(); }
  [[nodiscard]] std::size_t count(const Element& e) const noexcept;

  [[nodiscard]] const std::vector<Element>& elements() const noexcept {
    return elements_;
  }
  [[nodiscard]] auto begin() const noexcept { return elements_.begin(); }
  [[nodiscard]] auto end() const noexcept { return elements_.end(); }

  /// Elements sorted lexicographically — the canonical form used for
  /// equality, hashing, and printing, so two runs with different
  /// nondeterministic histories compare equal iff they computed the same
  /// multiset.
  [[nodiscard]] std::vector<Element> canonical() const;

  /// All elements whose label() (field 1) equals `label`. Convenience for
  /// inspecting converter-produced multisets ("what's on edge m?").
  [[nodiscard]] std::vector<Element> with_label(std::string_view label) const;

  /// Multiset equality: same elements with same multiplicities.
  friend bool operator==(const Multiset& a, const Multiset& b) noexcept;
  friend bool operator!=(const Multiset& a, const Multiset& b) noexcept {
    return !(a == b);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Element> elements_;
};

std::ostream& operator<<(std::ostream& os, const Multiset& m);

}  // namespace gammaflow::gamma
