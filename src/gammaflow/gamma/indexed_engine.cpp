// IndexedEngine: the fast single-threaded engine. Per step it probes
// reactions in a seeded random order and fires the first enabled match found
// through the label/arity indexes. A full pass over every reaction with no
// match is the stage fixed point (the index search is exhaustive, so "no
// match found" is a proof, not a heuristic).
#include <algorithm>
#include <chrono>
#include <numeric>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::gamma {

RunResult IndexedEngine::run(const Program& program, const Multiset& initial,
                             const RunOptions& options) const {
  const auto t0 = std::chrono::steady_clock::now();
  RunResult result;
  Rng rng(options.seed);
  Store store(initial);
  const expr::EvalMode mode =
      options.compile ? expr::EvalMode::Vm : expr::EvalMode::Ast;

  obs::Telemetry* const tel = options.telemetry;
  obs::ThreadRecorder* const rec =
      tel ? &tel->register_thread("gamma-indexed") : nullptr;
  const std::uint64_t instrs0 = expr::vm_instrs_executed();
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
  std::uint64_t passes = 0;

  RunGovernor governor(options.cancel, options.deadline);

  for (std::size_t stage_idx = 0;
       stage_idx < program.stages().size() &&
       result.outcome == Outcome::Completed;
       ++stage_idx) {
    const auto& stage = program.stages()[stage_idx];

    // Pre-resolved per-reaction latency histograms keep string building off
    // the firing path.
    std::vector<Histogram*> fire_hist;
    if (tel) {
      fire_hist.reserve(stage.size());
      for (const Reaction& r : stage) {
        fire_hist.push_back(&tel->stats().hist("gamma.fire_us." + r.name()));
      }
    }

    // Runs the reactions in `subset` to their combined fixed point (a full
    // pass over the subset with no match is the proof, as the index search
    // is exhaustive).
    const auto run_to_fixpoint = [&](std::vector<std::size_t> order) {
      bool progressed = true;
      while (progressed && result.outcome == Outcome::Completed) {
        progressed = false;
        ++passes;
        obs::Span pass_span(tel, rec, "pass");
        std::uint64_t pass_fires = 0;
        std::shuffle(order.begin(), order.end(), rng);
        for (const std::size_t idx : order) {
          if (result.outcome != Outcome::Completed) break;
          const Reaction& r = stage[idx];
          // Fire this reaction repeatedly while it stays enabled: cheaper
          // than re-shuffling after every step, and fairness across
          // reactions is restored by the shuffled outer pass.
          while (true) {
            if (governor.should_stop()) {
              result.outcome = governor.outcome();
              break;
            }
            const std::uint64_t fire_start = tel ? tel->now_us() : 0;
            auto match = find_match(store, r, &rng, mode);
            ++attempts;
            if (!match) {
              ++failures;
              break;
            }
            if (result.steps >= options.max_steps) {
              if (options.limit_policy == LimitPolicy::Throw) {
                throw EngineError("indexed engine exceeded max_steps=" +
                                  std::to_string(options.max_steps));
              }
              result.outcome = Outcome::BudgetExhausted;
              break;
            }
            if (options.record_trace) {
              if (result.trace.size() < options.trace_limit) {
                FireEvent ev;
                ev.reaction = r.name();
                ev.stage = stage_idx;
                for (const Store::Id id : match->ids) {
                  ev.consumed.push_back(store.element(id));
                }
                ev.produced = match->produced;
                result.trace.push_back(std::move(ev));
              } else {
                ++result.trace_dropped;
              }
            }
            ++result.fires_by_reaction[r.name()];
            ++result.steps;
            commit(store, *match);
            progressed = true;
            ++pass_fires;
            if (tel) {
              fire_hist[idx]->observe(
                  static_cast<double>(tel->now_us() - fire_start));
            }
          }
        }
        pass_span.set_arg(pass_fires);
      }
    };

    // Conflict-class scheduling: when the caller's classes cover the whole
    // stage with >= 2 classes, run each class to its own fixpoint once, in
    // shuffled order, with no global re-pass. Sound because interference
    // (compete AND feed edges) stays inside a class: a quiescent class can
    // never be re-enabled by another class's firings.
    std::vector<std::vector<std::size_t>> groups;
    if (!options.conflict_classes.empty() && stage.size() >= 2) {
      std::map<std::size_t, std::vector<std::size_t>> by_class;
      bool covered = true;
      for (std::size_t i = 0; i < stage.size() && covered; ++i) {
        const auto it = options.conflict_classes.find(stage[i].name());
        covered = it != options.conflict_classes.end();
        if (covered) by_class[it->second].push_back(i);
      }
      if (covered && by_class.size() >= 2) {
        for (auto& [c, idxs] : by_class) groups.push_back(std::move(idxs));
      }
    }
    if (groups.empty()) {
      std::vector<std::size_t> all(stage.size());
      std::iota(all.begin(), all.end(), std::size_t{0});
      run_to_fixpoint(std::move(all));
    } else {
      std::shuffle(groups.begin(), groups.end(), rng);
      for (auto& group : groups) {
        if (result.outcome != Outcome::Completed) break;
        run_to_fixpoint(std::move(group));
      }
    }
  }

  if (tel) {
    auto& stats = tel->stats();
    stats.count("gamma.match_attempts", attempts);
    stats.count("gamma.match_failures", failures);
    stats.count("gamma.fires", result.steps);
    stats.count("gamma.passes", passes);
    stats.count(std::string("gamma.outcome.") + to_string(result.outcome));
    stats.count(std::string("gamma.eval_mode.") + expr::to_string(mode));
    stats.count("vm.instrs_executed", expr::vm_instrs_executed() - instrs0);
    Histogram& compile_hist = stats.hist("expr.compile_ms");
    for (const auto& stage : program.stages()) {
      for (const Reaction& r : stage) {
        compile_hist.observe(r.compiled().compile_ms());
      }
    }
    result.metrics = tel->metrics();
  }
  result.final_multiset = store.to_multiset();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace gammaflow::gamma
