// IndexedEngine: the fast single-threaded engine. Per step it probes
// reactions in a seeded random order and fires the first enabled match found
// through the label/arity indexes. A full pass over every reaction with no
// match is the stage fixed point (the index search is exhaustive, so "no
// match found" is a proof, not a heuristic). Scaffolding (deadline, cancel,
// budget, trace cap, telemetry tail) comes from runtime::StepLoop & friends;
// this file keeps only the probe-order and conflict-class scheduling policy.
#include <algorithm>
#include <numeric>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::gamma {

RunResult IndexedEngine::run(const Program& program, const Multiset& initial,
                             const RunOptions& options) const {
  RunResult result;
  Rng rng(options.seed);
  Store store(initial);
  const expr::EvalMode mode = options.eval_mode();

  runtime::StepLoop loop(options, options.max_steps, "indexed engine",
                         "max_steps");
  runtime::TraceSink<FireEvent> trace(options);
  const runtime::RunRecording recording(options, "indexed", "gamma");
  recording.begin(initial);
  const runtime::EngineTelemetry telemetry(options, "gamma");
  obs::Telemetry* const tel = telemetry.sink();
  obs::ThreadRecorder* const rec = telemetry.recorder("gamma-indexed");
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
  std::uint64_t passes = 0;

  for (std::size_t stage_idx = 0;
       stage_idx < program.stages().size() && loop.running(); ++stage_idx) {
    const auto& stage = program.stages()[stage_idx];

    // Pre-resolved per-reaction latency histograms keep string building off
    // the firing path.
    std::vector<Histogram*> fire_hist;
    if (tel) {
      fire_hist.reserve(stage.size());
      for (const Reaction& r : stage) {
        fire_hist.push_back(&tel->stats().hist("gamma.fire_us." + r.name()));
      }
    }

    // Runs the reactions in `subset` to their combined fixed point (a full
    // pass over the subset with no match is the proof, as the index search
    // is exhaustive).
    const auto run_to_fixpoint = [&](std::vector<std::size_t> order) {
      bool progressed = true;
      while (progressed && loop.running()) {
        progressed = false;
        ++passes;
        obs::Span pass_span(tel, rec, "pass");
        std::uint64_t pass_fires = 0;
        std::shuffle(order.begin(), order.end(), rng);
        for (const std::size_t idx : order) {
          if (!loop.running()) break;
          const Reaction& r = stage[idx];
          // Fire this reaction repeatedly while it stays enabled: cheaper
          // than re-shuffling after every step, and fairness across
          // reactions is restored by the shuffled outer pass.
          while (!loop.should_stop()) {
            const std::uint64_t fire_start = tel ? tel->now_us() : 0;
            auto match = runtime::MatchPipeline::find(store, r, &rng, mode);
            ++attempts;
            if (!match) {
              ++failures;
              break;
            }
            if (!loop.admit(result.steps)) break;
            if (trace.admit()) {
              FireEvent ev;
              ev.reaction = r.name();
              ev.stage = stage_idx;
              for (const Store::Id id : match->ids) {
                ev.consumed.push_back(store.element(id));
              }
              ev.produced = match->produced;
              trace.push(std::move(ev));
            }
            ++result.fires_by_reaction[r.name()];
            ++result.steps;
            const runtime::RecordCtx rctx =
                recording.ctx(static_cast<std::int64_t>(stage_idx));
            runtime::MatchPipeline::commit(store, *match,
                                           recording ? &rctx : nullptr);
            progressed = true;
            ++pass_fires;
            if (tel) {
              fire_hist[idx]->observe(
                  static_cast<double>(tel->now_us() - fire_start));
            }
          }
        }
        pass_span.set_arg(pass_fires);
        // One journal round per pass: the granularity the viz scrubber
        // steps through for this engine.
        if (recording && pass_fires > 0) recording.round(store);
      }
    };

    // Conflict-class scheduling: when the caller's classes cover the whole
    // stage with >= 2 classes, run each class to its own fixpoint once, in
    // shuffled order, with no global re-pass. Sound because interference
    // (compete AND feed edges) stays inside a class: a quiescent class can
    // never be re-enabled by another class's firings.
    std::vector<std::vector<std::size_t>> groups;
    if (!options.conflict_classes.empty() && stage.size() >= 2) {
      std::map<std::size_t, std::vector<std::size_t>> by_class;
      bool covered = true;
      for (std::size_t i = 0; i < stage.size() && covered; ++i) {
        const auto it = options.conflict_classes.find(stage[i].name());
        covered = it != options.conflict_classes.end();
        if (covered) by_class[it->second].push_back(i);
      }
      if (covered && by_class.size() >= 2) {
        for (auto& [c, idxs] : by_class) groups.push_back(std::move(idxs));
      }
    }
    if (groups.empty()) {
      std::vector<std::size_t> all(stage.size());
      std::iota(all.begin(), all.end(), std::size_t{0});
      run_to_fixpoint(std::move(all));
    } else {
      std::shuffle(groups.begin(), groups.end(), rng);
      for (auto& group : groups) {
        if (!loop.running()) break;
        run_to_fixpoint(std::move(group));
      }
    }
  }

  if (tel) {
    auto& stats = tel->stats();
    stats.count("gamma.match_attempts", attempts);
    stats.count("gamma.match_failures", failures);
    stats.count("gamma.fires", result.steps);
    stats.count("gamma.passes", passes);
    runtime::observe_reaction_compile(tel, program);
  }
  result.outcome = loop.outcome();
  result.trace = trace.take();
  result.trace_dropped = trace.dropped();
  telemetry.finish(result.outcome, result.metrics);
  result.final_multiset = store.to_multiset();
  recording.finish(result.outcome, result.final_multiset);
  result.wall_seconds = loop.wall_seconds();
  return result;
}

}  // namespace gammaflow::gamma
