// IndexedEngine: the fast single-threaded engine. Per step it probes
// reactions in a seeded random order and fires the first enabled match found
// through the label/arity indexes. A full pass over every reaction with no
// match is the stage fixed point (the index search is exhaustive, so "no
// match found" is a proof, not a heuristic).
#include <algorithm>
#include <chrono>
#include <numeric>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/store.hpp"

namespace gammaflow::gamma {

RunResult IndexedEngine::run(const Program& program, const Multiset& initial,
                             const RunOptions& options) const {
  const auto t0 = std::chrono::steady_clock::now();
  RunResult result;
  Rng rng(options.seed);
  Store store(initial);

  for (std::size_t stage_idx = 0; stage_idx < program.stages().size();
       ++stage_idx) {
    const auto& stage = program.stages()[stage_idx];
    std::vector<std::size_t> order(stage.size());
    std::iota(order.begin(), order.end(), std::size_t{0});

    bool progressed = true;
    while (progressed) {
      progressed = false;
      std::shuffle(order.begin(), order.end(), rng);
      for (const std::size_t idx : order) {
        const Reaction& r = stage[idx];
        // Fire this reaction repeatedly while it stays enabled: cheaper than
        // re-shuffling after every step, and fairness across reactions is
        // restored by the shuffled outer pass.
        while (auto match = find_match(store, r, &rng)) {
          if (result.steps >= options.max_steps) {
            throw EngineError("indexed engine exceeded max_steps=" +
                              std::to_string(options.max_steps));
          }
          if (options.record_trace) {
            FireEvent ev;
            ev.reaction = r.name();
            ev.stage = stage_idx;
            for (const Store::Id id : match->ids) {
              ev.consumed.push_back(store.element(id));
            }
            ev.produced = match->produced;
            result.trace.push_back(std::move(ev));
          }
          ++result.fires_by_reaction[r.name()];
          ++result.steps;
          commit(store, *match);
          progressed = true;
        }
      }
    }
  }

  result.final_multiset = store.to_multiset();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace gammaflow::gamma
