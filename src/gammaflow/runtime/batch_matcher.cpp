#include "gammaflow/runtime/batch_matcher.hpp"

#include <algorithm>

namespace gammaflow::runtime {
namespace {

using gamma::CompiledReaction;
using gamma::Store;

constexpr std::uint8_t kIntTag = static_cast<std::uint8_t>(ValueKind::Int);
constexpr std::uint8_t kNilTag = static_cast<std::uint8_t>(ValueKind::Nil);

/// Structural equality between a column field and a Value, without
/// materializing the field (spill payloads compare by reference).
bool field_equals_value(const Store::ColumnGroup& g, std::uint32_t row,
                        std::size_t f, const Value& v) {
  const Store::Column& c = g.cols[f];
  const std::uint8_t tag = c.tags[row];
  if (const std::int64_t* vi = v.if_int()) {
    return tag == kIntTag && c.data[row] == *vi;
  }
  if (tag == kIntTag) return false;
  if (tag == kNilTag) return v.kind() == ValueKind::Nil;
  if (v.kind() == ValueKind::Nil) return false;
  return c.spill[static_cast<std::size_t>(c.data[row])] == v;
}

/// Structural equality between two fields of the same row (the repeated
/// binder constraint). Value equality is variant-structural, so differing
/// tags can never be equal.
bool fields_equal(const Store::ColumnGroup& g, std::uint32_t row,
                  std::size_t fa, std::size_t fb) {
  const Store::Column& a = g.cols[fa];
  const Store::Column& b = g.cols[fb];
  const std::uint8_t ta = a.tags[row];
  if (ta != b.tags[row]) return false;
  if (ta == kIntTag) return a.data[row] == b.data[row];
  if (ta == kNilTag) return true;
  return a.spill[static_cast<std::size_t>(a.data[row])] ==
         b.spill[static_cast<std::size_t>(b.data[row])];
}

}  // namespace

bool BatchMatcher::begin(const gamma::Store& store,
                         const gamma::Reaction& reaction,
                         const std::vector<gamma::Store::Entry>& entries,
                         const expr::Env& outer_env) {
  const CompiledReaction& compiled = reaction.compiled();
  const CompiledReaction::BatchPlan* plan = compiled.batch_plan();
  if (plan == nullptr) return false;

  store_ = &store;
  plan_ = plan;
  entries_ = &entries;
  const std::vector<std::string>& slots = compiled.slots();

  // Outer bindings: EqSlot comparands (any kind — compared per lane) and
  // guard broadcast scalars (must be Int to enter the lane model).
  eq_values_.assign(plan->checks.size(), nullptr);
  for (std::size_t i = 0; i < plan->checks.size(); ++i) {
    const auto& check = plan->checks[i];
    if (check.kind != CompiledReaction::BatchPlan::FieldCheck::Kind::EqSlot) {
      continue;
    }
    eq_values_[i] = outer_env.find(slots[check.slot]);
    if (eq_values_[i] == nullptr) return false;  // malformed outer env
  }

  any_condition_ = false;
  for (const auto& cond : plan_->conditions) {
    if (cond) any_condition_ = true;
  }

  slots_.assign(slots.size(), expr::BatchVm::SlotInput{});
  gather_.clear();
  if (any_condition_) {
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (plan->cond_slot_used[s] == 0 || plan->slot_is_vector[s] != 0) {
        continue;
      }
      const Value* v = outer_env.find(slots[s]);
      const std::int64_t* vi = v != nullptr ? v->if_int() : nullptr;
      if (vi == nullptr) return false;  // non-Int broadcast: stay scalar
      slots_[s].scalar = *vi;
    }
    for (const auto& vs : plan->vector_slots) {
      if (plan->cond_slot_used[vs.slot] != 0) gather_.push_back(vs);
    }
    if (columns_.size() < gather_.size()) columns_.resize(gather_.size());
  }
  return true;
}

bool BatchMatcher::chunk(std::size_t start, std::size_t t, std::size_t width) {
  const std::vector<Store::Entry>& entries = *entries_;
  const std::size_t n = entries.size();

  rows_.resize(width);
  alive_.assign(width, 0);

  // Pass 1 — structural mask: liveness, arity, and the plan's field checks,
  // straight off the columns. A cleared lane here is one the scalar probe
  // would reject structurally, never one it could fire on.
  for (std::size_t j = 0; j < width; ++j) {
    const Store::Entry entry = entries[(start + t + j) % n];
    if (!store_->live(entry)) continue;
    const Store::RowRef rr = store_->row(entry.id);
    rows_[j] = rr;
    const Store::ColumnGroup& g = *rr.group;
    if (g.arity != plan_->arity) continue;
    bool ok = true;
    for (std::size_t ci = 0; ci < plan_->checks.size() && ok; ++ci) {
      const auto& check = plan_->checks[ci];
      using Kind = CompiledReaction::BatchPlan::FieldCheck::Kind;
      switch (check.kind) {
        case Kind::LitInt:
          ok = g.cols[check.field].tags[rr.row] == kIntTag &&
               g.cols[check.field].data[rr.row] == check.imm;
          break;
        case Kind::Lit:
          ok = field_equals_value(g, rr.row, check.field, check.value);
          break;
        case Kind::EqField:
          ok = fields_equal(g, rr.row, check.field, check.other);
          break;
        case Kind::EqSlot:
          ok = field_equals_value(g, rr.row, check.field, *eq_values_[ci]);
          break;
      }
    }
    if (ok) alive_[j] = 1;
  }

  if (!any_condition_) {
    fire_ = alive_;
    return true;
  }

  // Pass 2 — gather guard inputs. Non-Int fields force the lane on
  // (unknown): the scalar probe re-checks it, so a wrong bitmap value there
  // could only ever be a harmless false positive — we make it exactly that.
  // Dead lanes get the same filler so a stale row can never fault a chunk.
  unknown_.assign(width, 0);
  for (std::size_t gi = 0; gi < gather_.size(); ++gi) {
    const auto vs = gather_[gi];
    std::vector<std::int64_t>& col = columns_[gi];
    col.resize(width);
    for (std::size_t j = 0; j < width; ++j) {
      if (alive_[j] == 0) {
        col[j] = 1;
        continue;
      }
      const Store::RowRef rr = rows_[j];
      const Store::Column& c = rr.group->cols[vs.field];
      if (c.tags[rr.row] == kIntTag) {
        col[j] = c.data[rr.row];
      } else {
        col[j] = 1;
        unknown_[j] = 1;
      }
    }
    slots_[vs.slot].column = col.data();
  }

  // Pass 3 — branch bitmaps, preserving first-firing-branch order: a lane
  // fires iff some branch's guard is its first truthy one (or an
  // unconditional/else branch catches it while still pending).
  fire_.assign(width, 0);
  pending_ = alive_;
  for (std::size_t b = 0; b < plan_->conditions.size(); ++b) {
    const auto& cond = plan_->conditions[b];
    if (!cond) {
      for (std::size_t j = 0; j < width; ++j) {
        fire_[j] = static_cast<std::uint8_t>(fire_[j] | pending_[j]);
      }
      break;
    }
    if (!vm_.run(*cond, slots_, width, cond_)) return false;  // fault
    for (std::size_t j = 0; j < width; ++j) {
      fire_[j] = static_cast<std::uint8_t>(fire_[j] |
                                           (pending_[j] & cond_[j]));
      pending_[j] = static_cast<std::uint8_t>(pending_[j] & (cond_[j] ^ 1u));
    }
  }
  for (std::size_t j = 0; j < width; ++j) {
    fire_[j] = static_cast<std::uint8_t>(fire_[j] | unknown_[j]);
  }
  return true;
}

}  // namespace gammaflow::runtime
