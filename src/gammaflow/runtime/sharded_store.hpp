// Conflict-class sharding of the multiset. PR 3's interference analysis
// proves that reactions in different conflict classes touch disjoint element
// populations (compete AND feed edges stay inside a class); this module
// turns that proof into a partition of the store itself:
//
//   plan_shards  — decides whether a stage may run sharded, and assigns
//                  every reaction and every label to a shard. The plan is
//                  accepted only when it is STATICALLY sound (see below);
//                  anything else falls back to the single-store engine path,
//                  so semantics never depend on the plan.
//   ShardMap     — label -> shard routing with an element-hash fallback,
//                  shared by the ParallelEngine's ShardedStore and the
//                  distributed cluster's placement/stirring (a cluster node
//                  IS a shard with a network between it and its peers).
//   ShardedStore — one gamma::Store (+ lock) per shard. A worker that holds
//                  a shard's lock owns a complete, closed sub-chemistry:
//                  every match it can ever make is local, so it matches and
//                  commits with no global coordination and no revalidation.
//
// Soundness rules enforced by plan_shards (any failure => not sharded):
//   1. every reaction of the stage has a conflict class;
//   2. every pattern has >= 2 fields with a literal STRING label at field 1
//      (the repo-wide [value, 'label', ...] convention) — so element routing
//      by label is total over matchable elements;
//   3. a label consumed by reactions of two different classes is a
//      contradiction of rule-disjointness — refuse (defense against
//      hand-written class maps; analysis-produced maps cannot do this);
//   4. every output tuple's field-1 expression is a string literal, and a
//      produced label that some reaction consumes must map to the producing
//      reaction's own shard (feed edges stay in-class — analysis guarantees
//      it, the planner re-checks it).
// Under these rules an element either carries a mapped label (all reactions
// that can consume it live on its one shard) or can never match any pattern
// at all (inert: it parks on its hash shard and survives to the result).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/reaction.hpp"
#include "gammaflow/gamma/store.hpp"

namespace gammaflow::runtime {

struct ShardPlan {
  /// False => run the stage on the classic single-store path.
  bool sharded = false;
  std::size_t shard_count = 1;
  /// Shard of each reaction, indexed by stage position.
  std::vector<std::size_t> reaction_shard;
  /// Shard of each consumed/produced label.
  std::unordered_map<std::string, std::size_t> label_shard;
};

/// Plans sharding for one stage from conflict classes (reaction name ->
/// class id, normally InterferenceReport::engine_classes()). Returns an
/// unsharded plan unless every soundness rule above holds and at least two
/// shards result. Class ids are renumbered densely into shard ids.
[[nodiscard]] ShardPlan plan_shards(
    const std::vector<gamma::Reaction>& stage,
    const std::map<std::string, std::size_t>& conflict_classes);

/// Label -> shard routing with an element-hash fallback. `home()` is the
/// hint (nullopt when the element carries no mapped label); `route()` is
/// total. The cluster builds one from label_affinity with shards = nodes;
/// the ParallelEngine builds one from a ShardPlan.
class ShardMap {
 public:
  ShardMap(std::unordered_map<std::string, std::size_t> label_shard,
           std::size_t shards) noexcept
      : label_shard_(std::move(label_shard)), shards_(shards ? shards : 1) {}

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// The shard of the element's label: nullopt when there is no map, the
  /// element has no string label at field 1, or the label is unmapped.
  [[nodiscard]] std::optional<std::size_t> home(
      const gamma::Element& e) const {
    if (label_shard_.empty()) return std::nullopt;
    if (e.arity() < 2 || !e.field(1).is_str()) return std::nullopt;
    const auto it = label_shard_.find(e.field(1).as_str());
    if (it == label_shard_.end()) return std::nullopt;
    return it->second % shards_;
  }

  /// home() with an element-hash fallback — total routing.
  [[nodiscard]] std::size_t route(const gamma::Element& e) const {
    if (const auto h = home(e)) return *h;
    return e.hash() % shards_;
  }

 private:
  std::unordered_map<std::string, std::size_t> label_shard_;
  std::size_t shards_;
};

/// Epoch-stamped label -> node routing over an EXPLICIT member set, the
/// consistent-hash extension of ShardMap the elastic cluster rebalances
/// with. ShardMap routes `key % shards`, so adding a shard reshuffles almost
/// every label; EpochShardMap uses rendezvous (highest-random-weight)
/// hashing instead: each (key, member) pair gets a deterministic weight and
/// the key lives on the member with the highest weight. Membership changes
/// therefore move exactly the keys the new member wins (join) or the leaver
/// owned (leave) — everything else keeps its owner, which is what makes the
/// cluster's rebalance incremental. Each map carries the membership epoch
/// that produced it; `moved()` is the delta predicate the rebalance (and the
/// epoch-delta tests) are built on.
class EpochShardMap {
 public:
  EpochShardMap() = default;
  EpochShardMap(std::vector<std::size_t> members, std::uint64_t epoch)
      : members_(std::move(members)), epoch_(epoch) {}

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const std::vector<std::size_t>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] bool contains(std::size_t node) const noexcept {
    for (const std::size_t m : members_) {
      if (m == node) return true;
    }
    return false;
  }

  /// The stable routing key of an element: FNV-1a of the field-1 string
  /// label when present (all elements of one label co-route, the repo-wide
  /// [value, 'label', ...] convention), else the element's tuple hash.
  /// FNV-1a is spelled out here so the key — and therefore which labels a
  /// rebalance moves — is identical on every platform and every run.
  [[nodiscard]] static std::uint64_t key_of(const gamma::Element& e) {
    if (e.arity() >= 2 && e.field(1).is_str()) {
      const std::string& label = e.field(1).as_str();
      std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit
      for (const char c : label) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
      }
      return h;
    }
    return e.hash();
  }

  /// Rendezvous weight of placing `key` on `member` (pure mixing, no state:
  /// splitmix64 advances a stream, so the member id and the combined value
  /// each get a throwaway one-step stream of their own).
  [[nodiscard]] static std::uint64_t weight(std::uint64_t key,
                                            std::size_t member) noexcept {
    std::uint64_t m = static_cast<std::uint64_t>(member);
    std::uint64_t x = key ^ (0x9e3779b97f4a7c15ULL + splitmix64(m));
    return splitmix64(x);
  }

  /// HRW argmax over the members. Requires a non-empty member set.
  [[nodiscard]] std::size_t owner_of(std::uint64_t key) const {
    std::size_t best = members_.front();
    std::uint64_t best_w = weight(key, best);
    for (std::size_t i = 1; i < members_.size(); ++i) {
      const std::uint64_t w = weight(key, members_[i]);
      if (w > best_w || (w == best_w && members_[i] < best)) {
        best = members_[i];
        best_w = w;
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t owner(const gamma::Element& e) const {
    return owner_of(key_of(e));
  }

  /// Did `key` change owner between two maps? The incremental-rebalance
  /// contract: under HRW this is true exactly for keys won by a joiner or
  /// orphaned by a leaver.
  [[nodiscard]] static bool moved(std::uint64_t key, const EpochShardMap& a,
                                  const EpochShardMap& b) {
    return a.owner_of(key) != b.owner_of(key);
  }

 private:
  std::vector<std::size_t> members_;
  std::uint64_t epoch_ = 0;
};

/// The partitioned store: shards()[s] holds the elements routed to shard s.
/// Each shard carries its own mutex; the sharded ParallelEngine path claims
/// a shard by locking it for the whole local fixpoint (the lock IS the
/// ownership — one owner per shard instead of one global lock over all
/// workers), and aggregate reads (size/version/to_multiset) are only called
/// after the owners released.
class ShardedStore {
 public:
  struct Shard {
    gamma::Store store;
    std::mutex mutex;
  };

  ShardedStore(const gamma::Multiset& initial, ShardMap map);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] Shard& shard(std::size_t s) noexcept { return *shards_[s]; }
  [[nodiscard]] const ShardMap& map() const noexcept { return map_; }

  /// Live elements across all shards. Not synchronized with live owners.
  [[nodiscard]] std::size_t size() const noexcept;
  /// Sum of shard version stamps (monotone across commits anywhere).
  [[nodiscard]] std::uint64_t version() const noexcept;
  [[nodiscard]] gamma::Multiset to_multiset() const;

 private:
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gammaflow::runtime
