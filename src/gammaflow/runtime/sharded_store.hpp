// Conflict-class sharding of the multiset. PR 3's interference analysis
// proves that reactions in different conflict classes touch disjoint element
// populations (compete AND feed edges stay inside a class); this module
// turns that proof into a partition of the store itself:
//
//   plan_shards  — decides whether a stage may run sharded, and assigns
//                  every reaction and every label to a shard. The plan is
//                  accepted only when it is STATICALLY sound (see below);
//                  anything else falls back to the single-store engine path,
//                  so semantics never depend on the plan.
//   ShardMap     — label -> shard routing with an element-hash fallback,
//                  shared by the ParallelEngine's ShardedStore and the
//                  distributed cluster's placement/stirring (a cluster node
//                  IS a shard with a network between it and its peers).
//   ShardedStore — one gamma::Store (+ lock) per shard. A worker that holds
//                  a shard's lock owns a complete, closed sub-chemistry:
//                  every match it can ever make is local, so it matches and
//                  commits with no global coordination and no revalidation.
//
// Soundness rules enforced by plan_shards (any failure => not sharded):
//   1. every reaction of the stage has a conflict class;
//   2. every pattern has >= 2 fields with a literal STRING label at field 1
//      (the repo-wide [value, 'label', ...] convention) — so element routing
//      by label is total over matchable elements;
//   3. a label consumed by reactions of two different classes is a
//      contradiction of rule-disjointness — refuse (defense against
//      hand-written class maps; analysis-produced maps cannot do this);
//   4. every output tuple's field-1 expression is a string literal, and a
//      produced label that some reaction consumes must map to the producing
//      reaction's own shard (feed edges stay in-class — analysis guarantees
//      it, the planner re-checks it).
// Under these rules an element either carries a mapped label (all reactions
// that can consume it live on its one shard) or can never match any pattern
// at all (inert: it parks on its hash shard and survives to the result).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/reaction.hpp"
#include "gammaflow/gamma/store.hpp"

namespace gammaflow::runtime {

struct ShardPlan {
  /// False => run the stage on the classic single-store path.
  bool sharded = false;
  std::size_t shard_count = 1;
  /// Shard of each reaction, indexed by stage position.
  std::vector<std::size_t> reaction_shard;
  /// Shard of each consumed/produced label.
  std::unordered_map<std::string, std::size_t> label_shard;
};

/// Plans sharding for one stage from conflict classes (reaction name ->
/// class id, normally InterferenceReport::engine_classes()). Returns an
/// unsharded plan unless every soundness rule above holds and at least two
/// shards result. Class ids are renumbered densely into shard ids.
[[nodiscard]] ShardPlan plan_shards(
    const std::vector<gamma::Reaction>& stage,
    const std::map<std::string, std::size_t>& conflict_classes);

/// Label -> shard routing with an element-hash fallback. `home()` is the
/// hint (nullopt when the element carries no mapped label); `route()` is
/// total. The cluster builds one from label_affinity with shards = nodes;
/// the ParallelEngine builds one from a ShardPlan.
class ShardMap {
 public:
  ShardMap(std::unordered_map<std::string, std::size_t> label_shard,
           std::size_t shards) noexcept
      : label_shard_(std::move(label_shard)), shards_(shards ? shards : 1) {}

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// The shard of the element's label: nullopt when there is no map, the
  /// element has no string label at field 1, or the label is unmapped.
  [[nodiscard]] std::optional<std::size_t> home(
      const gamma::Element& e) const {
    if (label_shard_.empty()) return std::nullopt;
    if (e.arity() < 2 || !e.field(1).is_str()) return std::nullopt;
    const auto it = label_shard_.find(e.field(1).as_str());
    if (it == label_shard_.end()) return std::nullopt;
    return it->second % shards_;
  }

  /// home() with an element-hash fallback — total routing.
  [[nodiscard]] std::size_t route(const gamma::Element& e) const {
    if (const auto h = home(e)) return *h;
    return e.hash() % shards_;
  }

 private:
  std::unordered_map<std::string, std::size_t> label_shard_;
  std::size_t shards_;
};

/// The partitioned store: shards()[s] holds the elements routed to shard s.
/// Each shard carries its own mutex; the sharded ParallelEngine path claims
/// a shard by locking it for the whole local fixpoint (the lock IS the
/// ownership — one owner per shard instead of one global lock over all
/// workers), and aggregate reads (size/version/to_multiset) are only called
/// after the owners released.
class ShardedStore {
 public:
  struct Shard {
    gamma::Store store;
    std::mutex mutex;
  };

  ShardedStore(const gamma::Multiset& initial, ShardMap map);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] Shard& shard(std::size_t s) noexcept { return *shards_[s]; }
  [[nodiscard]] const ShardMap& map() const noexcept { return map_; }

  /// Live elements across all shards. Not synchronized with live owners.
  [[nodiscard]] std::size_t size() const noexcept;
  /// Sum of shard version stamps (monotone across commits anywhere).
  [[nodiscard]] std::uint64_t version() const noexcept;
  [[nodiscard]] gamma::Multiset to_multiset() const;

 private:
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gammaflow::runtime
