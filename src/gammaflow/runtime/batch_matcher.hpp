// Batch innermost-bucket sweeper: the EvalMode::Batch half of the match
// pipeline. For the innermost replace-list pattern the candidate bucket is
// evaluated as COLUMN BATCHES instead of per-element probes: a structural
// lane mask (liveness ∧ arity ∧ literal/equality field checks straight off
// the store's columns), a gather of the condition's binder fields into dense
// int64 lanes, and one BatchVm run per branch guard producing a fire bitmap.
//
// The bitmap is a FILTER, not a verdict: every set lane still goes through
// the ordinary scalar probe (pattern match, duplicate check, branch
// apply), which is the final authority. Correctness therefore only needs
// the bitmap to be a SUPERSET of the lanes the scalar scan would fire on —
// lanes whose condition inputs are not Int are conservatively forced on,
// and a faulting lane (division by zero anywhere in a chunk) aborts the
// chunk so the caller resumes plain scalar probing at the same scan
// position, reproducing the walker's exact match-or-throw order. Cleared
// lanes are exactly lanes the scalar scan would reject without an error,
// so skipping them is invisible — that skip is the whole speedup.
//
// Sweeps are CHUNKED along the scan order (small chunks first, doubling up
// to kMaxChunk): a dense bucket whose first probe fires pays one small
// batch, while a sparse bucket amortizes the per-chunk setup over ever
// wider vectorized sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "gammaflow/expr/bytecode.hpp"
#include "gammaflow/expr/env.hpp"
#include "gammaflow/gamma/reaction.hpp"
#include "gammaflow/gamma/store.hpp"

namespace gammaflow::runtime {

/// Per-thread scratch for batch sweeps; the match pipeline keeps one per
/// thread and re-begins it for every innermost bucket visit.
class BatchMatcher {
 public:
  static constexpr std::size_t kMinChunk = 64;
  static constexpr std::size_t kMaxChunk = 1024;

  /// Prepares a sweep of `entries` (the innermost candidate bucket) for
  /// `reaction` under the outer bindings `outer_env`. False when this visit
  /// cannot be batch-evaluated — no plan (unbatchable reaction), or an
  /// outer binding feeding a guard is not Int — and the caller keeps the
  /// plain scalar probe loop. `entries` and `outer_env` must outlive the
  /// chunk() calls of this sweep.
  [[nodiscard]] bool begin(const gamma::Store& store,
                           const gamma::Reaction& reaction,
                           const std::vector<gamma::Store::Entry>& entries,
                           const expr::Env& outer_env);

  /// Computes fire bits for scan positions [t, t+width) of the cyclic scan
  /// that starts at `start`: fire()[j] covers entries[(start+t+j) % n].
  /// False when a lane faulted — the caller resumes scalar probing at scan
  /// position t (earlier chunks were already exact).
  [[nodiscard]] bool chunk(std::size_t start, std::size_t t,
                           std::size_t width);

  [[nodiscard]] const std::uint8_t* fire() const noexcept {
    return fire_.data();
  }

 private:
  const gamma::Store* store_ = nullptr;
  const gamma::CompiledReaction::BatchPlan* plan_ = nullptr;
  const std::vector<gamma::Store::Entry>* entries_ = nullptr;
  bool any_condition_ = false;

  expr::BatchVm vm_;
  /// Outer bindings for EqSlot checks, 1:1 with plan_->checks (null for
  /// non-EqSlot kinds). Point into the caller's outer_env.
  std::vector<const Value*> eq_values_;
  /// Vector slots the guards actually read: index into columns_ per slot.
  std::vector<gamma::CompiledReaction::BatchPlan::VectorSlot> gather_;
  std::vector<std::vector<std::int64_t>> columns_;
  std::vector<expr::BatchVm::SlotInput> slots_;

  std::vector<gamma::Store::RowRef> rows_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> unknown_;
  std::vector<std::uint8_t> cond_;
  std::vector<std::uint8_t> pending_;
  std::vector<std::uint8_t> fire_;
};

}  // namespace gammaflow::runtime
