// The one match→validate→commit pipeline every Gamma runtime calls — the
// executable core of Eq. (1)'s "let x1..xn ∈ M such that Ri(x1..xn)". The
// backtracking candidate search used to live in gamma/store.cpp with each
// engine re-wrapping it; now the sequential/indexed/parallel engines, the
// distributed cluster, and the static-analysis passes all drive this type
// (the legacy gamma::find_match/enumerate_matches/commit free functions are
// thin delegates, kept for source compatibility).
//
//   find      — one enabled match (first in bucket order, or randomized via
//               a cyclic start offset when given an Rng). The mutating
//               overload prunes stale index entries in place; the const
//               overload (concurrent searchers under a shared lock) leaves
//               them — the dead rows behind them are already counted in
//               Store::dead_rows(), the compaction trigger. Under
//               EvalMode::Batch the innermost candidate bucket is evaluated
//               as one column batch (a match bitmap from the compiled
//               condition) instead of per-element probes, falling back to
//               the scalar path whenever the reaction is not batchable.
//   enumerate — every enabled match up to a limit (the SequentialEngine's
//               Eq. (1)-literal uniform choice, and match counting).
//   validate  — re-check a proposal against CURRENT slot contents; the
//               optimistic commit path's guard (ids may have died or been
//               recycled between a shared-lock search and the commit).
//   commit    — apply a match: remove consumed ids, insert produced
//               elements. One step of (M - {x..}) + A(x..).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/expr/bytecode.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/runtime/options.hpp"

namespace gammaflow::obs {
class Telemetry;
}
namespace gammaflow::gamma {
class Program;
}

namespace gammaflow::runtime {

struct MatchPipeline {
  /// One enabled match of `reaction` (patterns match AND a branch fires),
  /// or nullopt after an EXHAUSTIVE failed search (the fixed-point proof the
  /// engines' termination detection rests on). `mode` selects the evaluator
  /// for conditions/outputs (RunOptions::eval_mode()).
  [[nodiscard]] static std::optional<gamma::Match> find(
      gamma::Store& store, const gamma::Reaction& reaction, Rng* rng = nullptr,
      expr::EvalMode mode = expr::EvalMode::Ast);
  /// Read-only variant for searchers under a shared lock; see header note.
  [[nodiscard]] static std::optional<gamma::Match> find(
      const gamma::Store& store, const gamma::Reaction& reaction,
      Rng* rng = nullptr, expr::EvalMode mode = expr::EvalMode::Ast);

  /// Invokes `fn` for every enabled match (ordered tuples of distinct
  /// elements), stopping early when fn returns false or `limit` matches were
  /// visited. Returns the number visited. Exponential in reaction arity —
  /// meant for small multisets (semantics tests) and match counting.
  static std::size_t enumerate(gamma::Store& store,
                               const gamma::Reaction& reaction,
                               std::size_t limit,
                               const std::function<bool(const gamma::Match&)>& fn,
                               expr::EvalMode mode = expr::EvalMode::Ast);

  /// Revalidates `match` against the store's CURRENT slot contents: all ids
  /// alive, patterns still match, a branch still fires. On success the
  /// match's env/produced are recomputed from the current occupants and the
  /// commit may proceed; false means another thread invalidated the proposal
  /// (the optimistic engines re-search — progress happened elsewhere).
  [[nodiscard]] static bool validate(const gamma::Store& store,
                                     gamma::Match& match, expr::EvalMode mode);

  /// Applies a match: removes the consumed ids, inserts the produced
  /// elements. Precondition: all ids alive (fresh find, or validate passed,
  /// or the caller owns every reaction that could consume them).
  ///
  /// With a RecordCtx whose recorder is set, emits the firing's provenance
  /// (reaction, consumed elements rendered BEFORE removal, produced) to the
  /// run journal — this being the one commit point is what makes every
  /// Gamma path (sequential / indexed / parallel / cluster) recordable.
  static void commit(gamma::Store& store, const gamma::Match& match,
                     const RecordCtx* rec = nullptr);
};

/// Feeds every reaction's one-time bytecode compile cost into the
/// "expr.compile_ms" histogram — the shared tail of every Gamma engine's
/// telemetry block. Null-safe.
void observe_reaction_compile(obs::Telemetry* tel,
                              const gamma::Program& program);

}  // namespace gammaflow::runtime
