// The run knobs every engine honors identically. Six runtimes execute the
// paper's one semantics (the Γ fixed point of Eq. (1) / the tagged-token
// firing rule); what used to be six hand-copied option structs drifting
// apart is now one base the per-model option types extend:
//
//   gamma::RunOptions      : runtime::RunOptions  (+ seed, max_steps, ...)
//   dataflow::DfRunOptions : runtime::RunOptions  (+ max_fires, memoize)
//   distrib::ClusterOptions: runtime::RunOptions  (+ nodes, faults, ...)
//
// Inheritance rather than composition keeps every existing call site
// (`opts.deadline = ...`, `opts.telemetry = &tel`) source-compatible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <thread>

#include "gammaflow/common/cancel.hpp"
#include "gammaflow/expr/bytecode.hpp"

namespace gammaflow::obs {
class Telemetry;
class RunRecorder;
}  // namespace gammaflow::obs

namespace gammaflow::runtime {

struct RunOptions {
  /// Record every firing in the result (FireEvents for Gamma, node ids for
  /// dataflow). Ignored by the cluster (its trace is the metric set).
  bool record_trace = false;
  /// Cap on recorded trace entries: firings past the cap still execute but
  /// are not recorded (`trace_dropped` counts them). Deliberately generous —
  /// the cap turns a long `record_trace` run into a truncated trace instead
  /// of an OOM, it does not make truncation routine.
  std::uint64_t trace_limit = 1'000'000;
  /// Worker count (the parallel engines; ignored by single-threaded ones
  /// and by the cluster, whose concurrency is `nodes`).
  unsigned workers = std::max(2u, std::thread::hardware_concurrency());
  /// Evaluate conditions/actions/node operations via compiled bytecode
  /// (default) instead of walking the expression AST. Results are identical
  /// either way (enforced by the differential suites); `--no-compile` flips
  /// this off for A/B comparison and as an escape hatch.
  bool compile = true;
  /// Batch bitmap matching (default): compiled conditions sweep whole
  /// candidate column batches in the innermost match loop; reactions (or
  /// visits) the batch model cannot express fall back to per-element probes
  /// automatically. `--no-batch` flips this off for A/B comparison, leaving
  /// plain per-element bytecode; ignored when `compile` is off. State
  /// evolution is identical either way (the differential suites pin
  /// batch ≡ scalar ≡ AST byte-for-byte).
  bool batch = true;
  /// Optional telemetry sink (spans + metrics). Null (the default) disables
  /// instrumentation entirely; every probe site is behind one pointer test.
  obs::Telemetry* telemetry = nullptr;
  /// Optional run recorder (per-fire provenance + per-round store deltas
  /// for `--record-out` / `gammaflow viz`). Null (the default) disables
  /// recording entirely; like telemetry, every probe is one pointer test.
  obs::RunRecorder* record = nullptr;
  /// Optional cooperative stop flag shared with the caller. When it fires
  /// the engine returns the state reached so far (outcome Cancelled) with
  /// all worker threads joined — it never throws for a cancellation.
  const CancelToken* cancel = nullptr;
  /// Wall-clock budget in seconds from run start; <= 0 disables. Exceeding
  /// it returns a valid partial result with outcome DeadlineExceeded.
  double deadline = 0.0;
  /// What exhausting the firing budget (max_steps / max_fires / max_rounds)
  /// does: Throw (EngineError, historical) or Partial (return the partial
  /// state with outcome BudgetExhausted).
  LimitPolicy limit_policy = LimitPolicy::Throw;

  /// The evaluator `compile`/`batch` select; engines thread this one value
  /// instead of re-deriving the ternary at every site.
  [[nodiscard]] expr::EvalMode eval_mode() const noexcept {
    if (!compile) return expr::EvalMode::Ast;
    return batch ? expr::EvalMode::Batch : expr::EvalMode::Vm;
  }
};

/// Recording context a Gamma commit site threads into
/// MatchPipeline::commit: which recorder (null = off) plus the coordinates
/// the engine knows and the pipeline does not. One struct instead of three
/// loose ints so adding a coordinate never touches every engine again.
struct RecordCtx {
  obs::RunRecorder* recorder = nullptr;
  std::int64_t stage = -1;  // gamma stage index
  std::int64_t shard = -1;  // ShardedStore shard id
  std::int64_t node = -1;   // distrib cluster node index
};

}  // namespace gammaflow::runtime
