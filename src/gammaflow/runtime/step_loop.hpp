// The run-loop scaffolding every engine used to copy-paste, extracted once:
//
//   StepLoop        — single-threaded driver state: one governor (cancel +
//                     deadline), the firing budget with its LimitPolicy, the
//                     sticky Outcome, and the wall clock. The sequential and
//                     indexed Gamma engines, the dataflow interpreter, and
//                     the cluster's round loop are thin policies over it.
//   StopFlag        — the multithreaded analogue of StepLoop's sticky
//                     outcome: first publisher wins, workers poll one atomic.
//   QuiescenceVote  — version-stamped termination detection for the Gamma
//                     ParallelEngine (all workers exhaustively failed at the
//                     same store version => stage fixed point).
//   InFlight        — token/message in-flight counting (the dataflow
//                     ParallelEngine's quiescence condition; the distributed
//                     cluster's Safra counters are the per-node refinement).
//   TraceSink       — the record_trace / trace_limit / trace_dropped triple.
//   EngineTelemetry — the end-of-run metric tail every engine emits the same
//                     way: "<domain>.outcome.*", "<domain>.eval_mode.*", the
//                     "vm.instrs_executed" delta, and the registry snapshot.
//
// The engines keep only what genuinely differs between them: match-selection
// order, commit strategy, and worker topology.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gammaflow/common/cancel.hpp"
#include "gammaflow/common/error.hpp"
#include "gammaflow/common/stats.hpp"
#include "gammaflow/runtime/options.hpp"

namespace gammaflow::obs {
class Telemetry;
class ThreadRecorder;
class RunRecorder;
}  // namespace gammaflow::obs

namespace gammaflow::gamma {
class Multiset;
class Store;
}  // namespace gammaflow::gamma

namespace gammaflow::runtime {

/// Shared budget gate. True to proceed with the (fired+1)-th firing; at the
/// budget, throws EngineError("<engine> exceeded <knob>=<budget>") under
/// LimitPolicy::Throw and returns false under Partial (the caller records
/// Outcome::BudgetExhausted and winds down with valid partial state).
[[nodiscard]] bool admit_step(LimitPolicy policy, std::uint64_t fired,
                              std::uint64_t budget, const char* engine,
                              const char* knob);

/// Single-threaded engine driver. Not thread-safe: parallel engines hold one
/// on the coordinating thread and hand workers make_governor() + a StopFlag.
class StepLoop {
 public:
  StepLoop(const RunOptions& options, std::uint64_t budget,
           const char* engine_name, const char* budget_knob) noexcept
      : t0_(std::chrono::steady_clock::now()),
        deadline_(deadline_from_now(options.deadline)),
        governor_(options.cancel, deadline_),
        engine_(engine_name),
        knob_(budget_knob),
        budget_(budget),
        policy_(options.limit_policy) {}

  /// Cooperative stop probe (cancel, then deadline); sticky via stop().
  [[nodiscard]] bool should_stop() {
    if (outcome_ != Outcome::Completed) return true;
    if (governor_.should_stop()) {
      outcome_ = governor_.outcome();
      return true;
    }
    return false;
  }

  /// Budget gate for the (fired+1)-th firing; see admit_step.
  [[nodiscard]] bool admit(std::uint64_t fired) {
    if (admit_step(policy_, fired, budget_, engine_, knob_)) return true;
    stop(Outcome::BudgetExhausted);
    return false;
  }

  /// Records an early-stop reason; first writer wins, Completed is a no-op.
  void stop(Outcome outcome) noexcept {
    if (outcome_ == Outcome::Completed) outcome_ = outcome;
  }

  [[nodiscard]] bool running() const noexcept {
    return outcome_ == Outcome::Completed;
  }
  [[nodiscard]] Outcome outcome() const noexcept { return outcome_; }

  /// The absolute deadline all of this run's governors share.
  [[nodiscard]] std::chrono::steady_clock::time_point deadline()
      const noexcept {
    return deadline_;
  }
  /// A fresh per-worker-thread governor sharing this run's token + deadline.
  [[nodiscard]] RunGovernor make_governor(
      const RunOptions& options) const noexcept {
    return RunGovernor(options.cancel, deadline_);
  }

  /// Elapsed wall clock since construction (RunResult::wall_seconds).
  [[nodiscard]] double wall_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
  std::chrono::steady_clock::time_point deadline_;
  RunGovernor governor_;
  const char* engine_;
  const char* knob_;
  std::uint64_t budget_;
  LimitPolicy policy_;
  Outcome outcome_ = Outcome::Completed;
};

/// One-shot outcome publication across a run's worker threads. Workers poll
/// stopped() in their loops; the first to observe a stop condition publishes
/// it and everyone (including the join side) reads one agreed Outcome.
class StopFlag {
 public:
  [[nodiscard]] bool stopped() const noexcept {
    return state_.load(std::memory_order_acquire) != 0;
  }
  [[nodiscard]] Outcome outcome() const noexcept {
    return static_cast<Outcome>(state_.load(std::memory_order_acquire));
  }
  /// First publisher wins; publishing Completed is a no-op (Completed is the
  /// default, not a stop reason).
  void publish(Outcome outcome) noexcept {
    std::uint8_t expected = 0;
    state_.compare_exchange_strong(expected,
                                   static_cast<std::uint8_t>(outcome),
                                   std::memory_order_acq_rel);
  }

 private:
  static_assert(static_cast<std::uint8_t>(Outcome::Completed) == 0,
                "StopFlag encodes 'no stop' as Outcome::Completed");
  std::atomic<std::uint8_t> state_{0};
};

/// Version-stamped quiescence vote: the Gamma ParallelEngine's termination
/// detection ("global termination state" in the paper). A worker whose
/// EXHAUSTIVE search failed reports the store version it searched at; when
/// all `voters` have reported at the same version, no reaction is enabled
/// anywhere and the stage has reached its fixed point. Any commit moves the
/// version and implicitly restarts the vote.
///
/// Externally synchronized: call under the store's exclusive lock. `my_mark`
/// is the caller's per-worker slot (initialize to kNone), which keeps one
/// worker from voting twice at the same version.
class QuiescenceVote {
 public:
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  [[nodiscard]] bool quiet(std::uint64_t version, std::uint64_t& my_mark,
                           unsigned voters) noexcept {
    if (version_ != version) {
      version_ = version;
      count_ = 0;
      // A mark from a previous vote is stale; the caller's slot resets too.
      my_mark = kNone;
    }
    if (my_mark == version) return false;  // already voted at this version
    my_mark = version;
    return ++count_ >= voters;
  }

 private:
  std::uint64_t version_ = kNone;
  unsigned count_ = 0;
};

/// Atomic in-flight counter: covers every token/message that is queued or
/// being absorbed. Zero means no work exists and none can be created — the
/// dataflow quiescence condition.
class InFlight {
 public:
  void add(std::int64_t n = 1) noexcept {
    count_.fetch_add(n, std::memory_order_acq_rel);
  }
  void sub(std::int64_t n = 1) noexcept {
    count_.fetch_sub(n, std::memory_order_acq_rel);
  }
  [[nodiscard]] bool idle() const noexcept {
    return count_.load(std::memory_order_acquire) == 0;
  }

 private:
  std::atomic<std::int64_t> count_{0};
};

/// The record_trace / trace_limit / trace_dropped triple. Usage:
///   if (sink.admit()) sink.push(Event{...});
/// admit() is false when tracing is off (free) or the cap is hit (counts the
/// drop), so callers never construct an event that will not be kept.
template <typename Event>
class TraceSink {
 public:
  TraceSink(bool enabled, std::uint64_t limit) noexcept
      : enabled_(enabled), limit_(limit) {}
  explicit TraceSink(const RunOptions& options) noexcept
      : TraceSink(options.record_trace, options.trace_limit) {}

  [[nodiscard]] bool admit() noexcept {
    if (!enabled_) return false;
    if (events_.size() < limit_) return true;
    ++dropped_;
    return false;
  }
  void push(Event event) { events_.push_back(std::move(event)); }

  [[nodiscard]] std::vector<Event> take() noexcept { return std::move(events_); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Merge a worker-local sink into this one (drops included), preserving
  /// the cap. Call after join, in a deterministic worker order.
  void merge(TraceSink&& other) {
    for (Event& ev : other.events_) {
      if (admit()) push(std::move(ev));
    }
    dropped_ += other.dropped_;
    other.events_.clear();
  }

 private:
  bool enabled_;
  std::uint64_t limit_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

/// The end-of-run telemetry tail every engine emits identically, null-safe
/// throughout (a disabled sink costs one pointer test per call):
///   "<domain>.outcome.<why>"     — one count per run
///   "<domain>.eval_mode.<batch|vm|ast>"
///   "vm.instrs_executed"         — delta since construction
///   "vm.batch_evals"             — BatchVm chunk evaluations (delta)
///   "vm.batch_width"             — histogram of batch chunk widths (delta)
///   "store.column_compactions"   — column-group compaction passes (delta)
/// finish() snapshots the registry into the result's MetricsSnapshot.
class EngineTelemetry {
 public:
  /// `domain` is the metric prefix: "gamma", "df", or "distrib".
  EngineTelemetry(const RunOptions& options, const char* domain);

  [[nodiscard]] explicit operator bool() const noexcept {
    return tel_ != nullptr;
  }
  /// The raw sink (null when telemetry is off) for engine-specific metrics —
  /// those are policy, not scaffolding, and stay in the engines.
  [[nodiscard]] obs::Telemetry* sink() const noexcept { return tel_; }
  /// Registers/returns the per-thread span recorder; null when disabled.
  [[nodiscard]] obs::ThreadRecorder* recorder(const std::string& name) const;

  void finish(Outcome outcome, MetricsSnapshot& out) const;

 private:
  obs::Telemetry* tel_;
  const char* domain_;
  expr::EvalMode mode_;
  std::uint64_t instrs0_ = 0;
  std::uint64_t batch_evals0_ = 0;
  std::array<std::uint64_t, expr::kBatchWidthBuckets> batch_width0_{};
  std::uint64_t compactions0_ = 0;
};

/// The RunOptions::record scaffolding every Gamma-family engine shares, the
/// recorder analogue of EngineTelemetry: null-safe begin / round / finish
/// over gamma multisets (the recorder itself speaks strings; the conversion
/// lives here because gf_obs must not depend on gf_gamma). ctx() builds the
/// RecordCtx a commit site hands MatchPipeline::commit.
class RunRecording {
 public:
  /// `engine` is the engine name ("sequential", "cluster", ...); `kind` the
  /// model family the viz renderer switches on ("gamma" | "distrib").
  RunRecording(const RunOptions& options, const char* engine,
               const char* kind) noexcept
      : rec_(options.record), engine_(engine), kind_(kind) {}

  [[nodiscard]] explicit operator bool() const noexcept {
    return rec_ != nullptr;
  }
  [[nodiscard]] obs::RunRecorder* sink() const noexcept { return rec_; }
  [[nodiscard]] RecordCtx ctx(std::int64_t stage = -1,
                              std::int64_t shard = -1,
                              std::int64_t node = -1) const noexcept {
    return RecordCtx{rec_, stage, shard, node};
  }

  void begin(const gamma::Multiset& initial) const;
  void round(const gamma::Multiset& store) const;
  void round(const gamma::Store& store) const;
  void finish(Outcome outcome, const gamma::Multiset& final_store) const;

 private:
  obs::RunRecorder* rec_;
  const char* engine_;
  const char* kind_;
};

/// Canonical string->count rendering of a multiset (journal snapshots).
[[nodiscard]] std::map<std::string, std::int64_t> store_counts(
    const gamma::Multiset& ms);

}  // namespace gammaflow::runtime
