#include "gammaflow/runtime/step_loop.hpp"

#include <cmath>

#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::runtime {

bool admit_step(LimitPolicy policy, std::uint64_t fired, std::uint64_t budget,
                const char* engine, const char* knob) {
  if (fired < budget) return true;
  if (policy == LimitPolicy::Throw) {
    throw EngineError(std::string(engine) + " exceeded " + knob + "=" +
                      std::to_string(budget));
  }
  return false;
}

EngineTelemetry::EngineTelemetry(const RunOptions& options, const char* domain)
    : tel_(options.telemetry), domain_(domain), mode_(options.eval_mode()) {
  if (tel_ != nullptr) {
    instrs0_ = expr::vm_instrs_executed();
    batch_evals0_ = expr::batch_evals();
    batch_width0_ = expr::batch_width_counts();
    compactions0_ = gamma::column_compactions_total();
  }
}

obs::ThreadRecorder* EngineTelemetry::recorder(const std::string& name) const {
  return tel_ != nullptr ? &tel_->register_thread(name) : nullptr;
}

void EngineTelemetry::finish(Outcome outcome, MetricsSnapshot& out) const {
  if (tel_ == nullptr) return;
  auto& stats = tel_->stats();
  stats.count(std::string(domain_) + ".outcome." + to_string(outcome));
  stats.count(std::string(domain_) + ".eval_mode." + expr::to_string(mode_));
  stats.count("vm.instrs_executed", expr::vm_instrs_executed() - instrs0_);
  stats.count("vm.batch_evals", expr::batch_evals() - batch_evals0_);
  // Replay the process-global width tally as per-run histogram deltas. The
  // global array buckets widths by bit_width — the same indexing the
  // Histogram uses — so 2^(b-1) is an exact representative for bucket b.
  const auto widths = expr::batch_width_counts();
  for (std::size_t b = 1; b < widths.size(); ++b) {
    const std::uint64_t delta = widths[b] - batch_width0_[b];
    if (delta != 0) {
      stats.hist("vm.batch_width")
          .observe_n(std::ldexp(1.0, static_cast<int>(b) - 1), delta);
    }
  }
  stats.count("store.column_compactions",
              gamma::column_compactions_total() - compactions0_);
  out = tel_->metrics();
}

std::map<std::string, std::int64_t> store_counts(const gamma::Multiset& ms) {
  std::map<std::string, std::int64_t> counts;
  for (const gamma::Element& e : ms) ++counts[e.to_string()];
  return counts;
}

void RunRecording::begin(const gamma::Multiset& initial) const {
  if (rec_ != nullptr) rec_->begin(engine_, kind_, store_counts(initial));
}

void RunRecording::round(const gamma::Multiset& store) const {
  if (rec_ != nullptr) rec_->round(store_counts(store));
}

void RunRecording::round(const gamma::Store& store) const {
  if (rec_ != nullptr) rec_->round(store_counts(store.to_multiset()));
}

void RunRecording::finish(Outcome outcome,
                          const gamma::Multiset& final_store) const {
  if (rec_ != nullptr) {
    rec_->finish(to_string(outcome), store_counts(final_store));
  }
}

}  // namespace gammaflow::runtime
