// Worklist-driven incremental fixpoint — the serving-side refinement of the
// engines' scan-to-quiescence loop. A batch engine proves the fixed point by
// an exhaustive pass over every reaction; a long-lived store cannot afford
// that after every injected element. This module keeps the store AT fixpoint
// and, when elements arrive, re-matches only the reactions whose PR 3
// interference footprint (analysis/interference.hpp) can consume one of the
// new elements:
//
//   WakeKeys      — one reaction's consume-side footprint keys (labels,
//                   arities, or the any-wildcard), the analysis result in
//                   runtime-consumable form (analysis::wakeup_keys builds
//                   them so the admitted-labels logic stays in gf_analysis).
//   WakeupIndex   — label→reactions and arity→reactions maps inverted from
//                   the WakeKeys; wake(e) returns exactly the reactions whose
//                   footprint admits element e.
//   IncrementalFixpoint — the driver: inject() inserts elements, wakes their
//                   footprint-matching reactions onto a dirty queue, and
//                   drains the queue to quiescence (each drained reaction is
//                   fired while enabled; its productions wake downstream
//                   consumers). An empty queue is a fixpoint PROOF, not a
//                   heuristic — see the invariant below.
//
// Equivalence obligation (DESIGN §14): the drain maintains the invariant
// "every reaction with an enabled match is dirty". Insertions wake every
// reaction whose footprint admits the element (the footprint is an
// over-approximation, so no enabling insert is missed); removals of consumed
// elements can only DISABLE matches (patterns are positive, conditions see
// only bound fields). Hence queue empty ⟹ no reaction has an enabled match
// ⟹ global fixpoint, and for confluent programs that fixpoint is the one
// the batch engines reach from the union of all injections — byte-identical,
// which test_serve checks on a randomized injection corpus.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "gammaflow/common/cancel.hpp"
#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/program.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/runtime/options.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::runtime {

/// One reaction's consume-side wakeup keys: an inserted element can enable
/// the reaction only if `any`, or its label (string field 1) is in `labels`,
/// or its arity is in `arities`. Mirrors analysis::Footprint's consume side;
/// over-approximate by construction (a key the analysis cannot bound becomes
/// `any`, never a missed wake).
struct WakeKeys {
  std::set<std::string> labels;
  std::set<std::size_t> arities;
  bool any = false;
};

/// Inverted index from element keys to the reactions they can wake. Built
/// once per program; wake() is O(woken reactions), not O(all reactions).
class WakeupIndex {
 public:
  explicit WakeupIndex(std::vector<WakeKeys> keys);

  [[nodiscard]] std::size_t reaction_count() const noexcept {
    return keys_.size();
  }
  [[nodiscard]] const WakeKeys& keys(std::size_t reaction) const {
    return keys_.at(reaction);
  }

  /// Appends every reaction index whose keys admit `e`: the always-wake
  /// list, the label bucket for e's string field 1 (when present), and the
  /// arity bucket for e's arity. A reaction keyed on both the label and the
  /// arity appears twice; callers dedup via their dirty flags.
  void wake(const gamma::Element& e, std::vector<std::size_t>& out) const;

 private:
  std::vector<WakeKeys> keys_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_label_;
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_arity_;
  std::vector<std::size_t> always_;
};

/// Knobs for the incremental driver, extending the shared runtime base the
/// same way gamma::RunOptions does. `deadline` (inherited) bounds each
/// inject() call; `max_steps` is a LIFETIME firing budget across all
/// injections (the serve daemon's per-session budget).
struct WorklistOptions : RunOptions {
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 50'000'000;
  /// A/B baseline: ignore footprints and mark EVERY reaction dirty on every
  /// insert — the "full rescan" strawman bench_serve compares against. The
  /// fixpoints are identical either way; only the re-match work differs.
  bool rescan = false;
};

/// Counters the daemon's stats verb and bench_serve report. `rematches` is
/// the number of MatchPipeline::find probes — the work the wakeup index
/// saves versus rescan mode.
struct WorklistStats {
  std::uint64_t injected = 0;   // elements inserted via inject()
  std::uint64_t fires = 0;      // lifetime firings (vs. max_steps budget)
  std::uint64_t wakeups = 0;    // reactions enqueued onto the dirty queue
  std::uint64_t rematches = 0;  // MatchPipeline::find probes
  std::uint64_t injects = 0;    // inject() calls
  /// FIFO batches popped off the dirty queue by the drain (each covers up
  /// to kDrainBatch reactions); wakeups/drain_batches is the drain width.
  std::uint64_t drain_batches = 0;
};

/// Long-lived single-stage fixpoint driver over one Store. Construction
/// leaves the store empty and at (trivial) fixpoint; each inject() restores
/// the fixpoint incrementally and returns the outcome (Completed, or the
/// deadline/budget/cancel outcome under LimitPolicy::Partial — the store is
/// then a valid intermediate state and the next inject() resumes the drain).
///
/// Multi-stage programs are rejected (EngineError): `;` sequencing means
/// "run stage k to fixpoint, THEN stage k+1" — under streaming injection
/// stage k never finally quiesces, so the composition has no incremental
/// meaning. Serve sessions therefore host single-stage programs only.
class IncrementalFixpoint {
 public:
  /// Dirty-queue entries drained per deque round-trip. Processing order
  /// inside a batch is exactly pop order, so firing schedules (and the
  /// byte-identical-fixpoint guarantee) are unchanged versus one-at-a-time
  /// draining — the batch only amortizes queue traffic.
  static constexpr std::size_t kDrainBatch = 8;

  IncrementalFixpoint(gamma::Program program, std::vector<WakeKeys> keys,
                      const WorklistOptions& options);

  /// Inserts the elements, wakes their footprint consumers, drains to
  /// quiescence. Deterministic for a given (program, seed, schedule).
  Outcome inject(const std::vector<gamma::Element>& elements);
  Outcome inject(const gamma::Multiset& elements);

  [[nodiscard]] const gamma::Store& store() const noexcept { return store_; }
  [[nodiscard]] gamma::Multiset snapshot() const { return store_.to_multiset(); }
  [[nodiscard]] const WorklistStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Outcome last_outcome() const noexcept { return last_outcome_; }
  /// Firings performed by the most recent inject() call.
  [[nodiscard]] std::uint64_t last_fires() const noexcept { return last_fires_; }
  [[nodiscard]] const gamma::Program& program() const noexcept {
    return program_;
  }

  /// Closes the run journal (no-op without RunOptions::record): outcome of
  /// the last inject, final store snapshot. The serve session calls this on
  /// close; idempotence is the caller's concern (close is called once).
  void finish_recording();

 private:
  void wake_element(const gamma::Element& e);
  Outcome saturate(StepLoop& loop);

  gamma::Program program_;
  const std::vector<gamma::Reaction>* reactions_;  // into program_ stage 0
  WakeupIndex index_;
  WorklistOptions options_;
  expr::EvalMode mode_;
  gamma::Store store_;
  Rng rng_;
  std::deque<std::size_t> queue_;
  std::vector<char> dirty_;  // reaction index -> currently queued
  std::vector<std::size_t> wake_scratch_;
  WorklistStats stats_;
  Outcome last_outcome_ = Outcome::Completed;
  std::uint64_t last_fires_ = 0;
  RunRecording recording_;
};

}  // namespace gammaflow::runtime
