#include "gammaflow/runtime/match_pipeline.hpp"

#include <algorithm>

#include "gammaflow/gamma/program.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/batch_matcher.hpp"

namespace gammaflow::runtime {
namespace {

using gamma::Element;
using gamma::Match;
using gamma::Reaction;
using gamma::Store;

// The shared backtracking core. Visits enabled matches of `reaction`; for
// each, builds a Match and calls `fn`; stops when fn returns false or
// `limit` is reached. `rng` randomizes the probe order inside each candidate
// bucket (cyclic start offset — cheap fairness without shuffling).
//
// Stale bucket entries (dead or reused slots) are detected by generation
// stamp and skipped; the dead rows behind them are already counted in the
// store's garbage debt (Store::dead_rows), so the next exclusive section
// knows when to compact without per-skip bookkeeping here.
template <typename StoreT>  // Store (pruning) or const Store (read-only)
std::size_t search(StoreT& store, const Reaction& reaction, std::size_t limit,
                   Rng* rng, expr::EvalMode mode,
                   const std::function<bool(Match&)>& fn) {
  const auto& patterns = reaction.patterns();
  const std::size_t k = patterns.size();

  // Bucket pointers are stable across the search: bucket() never inserts
  // map entries and prune() mutates entry vectors in place.
  std::vector<const Store::Bucket*> buckets(k);
  for (std::size_t i = 0; i < k; ++i) {
    buckets[i] = store.bucket(patterns[i]);
    if (buckets[i] == nullptr || buckets[i]->entries.empty()) return 0;
  }

  std::vector<expr::Env> envs(k + 1);
  std::vector<Store::Id> chosen(k);
  std::size_t visited = 0;
  bool stop = false;

  auto dfs = [&](auto&& self, std::size_t depth) -> void {
    if (stop) return;
    if (depth == k) {
      auto produced = reaction.apply(envs[k], mode);
      if (!produced) return;  // patterns matched but no branch fires
      Match m;
      m.reaction = &reaction;
      m.ids = chosen;
      m.env = envs[k];
      m.produced = std::move(*produced);
      ++visited;
      if (!fn(m) || visited >= limit) stop = true;
      return;
    }
    const auto& bucket = buckets[depth]->entries;
    const std::size_t n = bucket.size();
    const std::size_t start = rng ? rng->bounded(n) : 0;
    auto probe = [&](const Store::Entry entry) {
      if (!store.live(entry)) return;
      const Store::Id id = entry.id;
      bool dup = false;
      for (std::size_t d = 0; d < depth; ++d) {
        if (chosen[d] == id) {
          dup = true;
          break;
        }
      }
      if (dup) return;
      envs[depth + 1] = envs[depth];
      if (!store.match_pattern(patterns[depth], id, envs[depth + 1])) return;
      chosen[depth] = id;
      self(self, depth + 1);
    };
    std::size_t t = 0;
    if (mode == expr::EvalMode::Batch && depth + 1 == k) {
      // Innermost bucket: sweep chunks of the scan as column batches and
      // probe only the lanes the fire bitmap keeps. The start offset draw
      // above is the SAME single rng->bounded(n) the scalar scan consumes,
      // and cleared lanes are exactly scalar rejections, so the rng stream
      // and the chosen match are identical to the scalar path.
      thread_local BatchMatcher matcher;
      if (matcher.begin(store, reaction, bucket, envs[depth])) {
        std::size_t width = BatchMatcher::kMinChunk;
        while (t < n && !stop) {
          const std::size_t w = std::min(width, n - t);
          if (!matcher.chunk(start, t, w)) break;  // fault: resume scalar
          const std::uint8_t* fire = matcher.fire();
          for (std::size_t j = 0; j < w && !stop; ++j) {
            if (fire[j] != 0) probe(bucket[(start + t + j) % n]);
          }
          t += w;
          width = std::min(width * 2, BatchMatcher::kMaxChunk);
        }
      }
    }
    for (; t < n && !stop; ++t) probe(bucket[(start + t) % n]);
  };
  dfs(dfs, 0);
  return visited;
}

template <typename StoreT>
std::optional<Match> find_one(StoreT& store, const Reaction& reaction,
                              Rng* rng, expr::EvalMode mode) {
  std::optional<Match> found;
  search(store, reaction, 1, rng, mode, [&](Match& m) {
    found = std::move(m);
    return false;
  });
  return found;
}

}  // namespace

std::optional<Match> MatchPipeline::find(Store& store, const Reaction& reaction,
                                         Rng* rng, expr::EvalMode mode) {
  return find_one(store, reaction, rng, mode);
}

std::optional<Match> MatchPipeline::find(const Store& store,
                                         const Reaction& reaction, Rng* rng,
                                         expr::EvalMode mode) {
  return find_one(store, reaction, rng, mode);
}

std::size_t MatchPipeline::enumerate(Store& store, const Reaction& reaction,
                                     std::size_t limit,
                                     const std::function<bool(const Match&)>& fn,
                                     expr::EvalMode mode) {
  return search(store, reaction, limit, nullptr, mode,
                [&](Match& m) { return fn(m); });
}

bool MatchPipeline::validate(const Store& store, Match& match,
                             expr::EvalMode mode) {
  const auto& patterns = match.reaction->patterns();
  if (match.ids.size() != patterns.size()) return false;
  expr::Env env;
  for (std::size_t i = 0; i < match.ids.size(); ++i) {
    // alive() alone is not enough — a recycled slot is alive with different
    // content — but re-running the pattern match on the current occupants
    // catches that too, so the pair of checks is exact.
    if (!store.alive(match.ids[i])) return false;
    if (!store.match_pattern(patterns[i], match.ids[i], env)) return false;
  }
  auto produced = match.reaction->apply(env, mode);
  if (!produced) return false;
  match.env = std::move(env);
  match.produced = std::move(*produced);
  return true;
}

void MatchPipeline::commit(Store& store, const Match& match,
                           const RecordCtx* rec) {
  if (rec != nullptr && rec->recorder != nullptr) {
    // Render consumed occupants while their ids are still alive.
    obs::FireRecord fire;
    fire.reaction = match.reaction->name();
    fire.stage = rec->stage;
    fire.shard = rec->shard;
    fire.node = rec->node;
    fire.consumed.reserve(match.ids.size());
    for (const Store::Id id : match.ids) {
      fire.consumed.push_back(store.element(id).to_string());
    }
    fire.produced.reserve(match.produced.size());
    for (const Element& e : match.produced) {
      fire.produced.push_back(e.to_string());
    }
    rec->recorder->fire(std::move(fire));
  }
  for (const Store::Id id : match.ids) store.remove(id);
  for (const Element& e : match.produced) store.insert(e);
}

void observe_reaction_compile(obs::Telemetry* tel,
                              const gamma::Program& program) {
  if (tel == nullptr) return;
  Histogram& compile_hist = tel->stats().hist("expr.compile_ms");
  for (const auto& stage : program.stages()) {
    for (const Reaction& r : stage) {
      compile_hist.observe(r.compiled().compile_ms());
    }
  }
}

}  // namespace gammaflow::runtime

namespace gammaflow::gamma {

// Legacy entry points (declared in gamma/store.hpp), kept as thin delegates
// so existing callers and tests stay source-compatible. New code calls
// runtime::MatchPipeline directly.

std::optional<Match> find_match(Store& store, const Reaction& reaction,
                                Rng* rng, expr::EvalMode mode) {
  return runtime::MatchPipeline::find(store, reaction, rng, mode);
}

std::optional<Match> find_match(const Store& store, const Reaction& reaction,
                                Rng* rng, expr::EvalMode mode) {
  return runtime::MatchPipeline::find(store, reaction, rng, mode);
}

std::size_t enumerate_matches(Store& store, const Reaction& reaction,
                              std::size_t limit,
                              const std::function<bool(const Match&)>& fn,
                              expr::EvalMode mode) {
  return runtime::MatchPipeline::enumerate(store, reaction, limit, fn, mode);
}

void commit(Store& store, const Match& match) {
  runtime::MatchPipeline::commit(store, match);
}

}  // namespace gammaflow::gamma
