#include "gammaflow/runtime/match_pipeline.hpp"

#include <algorithm>

#include "gammaflow/gamma/program.hpp"
#include "gammaflow/obs/run_recorder.hpp"
#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::runtime {
namespace {

using gamma::Element;
using gamma::Match;
using gamma::Reaction;
using gamma::Store;

// The shared backtracking core. Visits enabled matches of `reaction`; for
// each, builds a Match and calls `fn`; stops when fn returns false or
// `limit` is reached. `rng` randomizes the probe order inside each candidate
// bucket (cyclic start offset — cheap fairness without shuffling).
//
// Stale bucket entries (dead or reused slots) are detected by generation
// stamp and skipped; on the read-only instantiation the skip is reported via
// note_stale() so the store's garbage debt grows and the next exclusive
// section knows to compact (the mutating instantiation pruned the buckets in
// bucket(), so its skips are transient within this one search).
template <typename StoreT>  // Store (pruning) or const Store (read-only)
std::size_t search(StoreT& store, const Reaction& reaction, std::size_t limit,
                   Rng* rng, expr::EvalMode mode,
                   const std::function<bool(Match&)>& fn) {
  const auto& patterns = reaction.patterns();
  const std::size_t k = patterns.size();

  // Bucket pointers are stable across the search: bucket() never inserts
  // map entries and prune() mutates entry vectors in place.
  std::vector<const Store::Bucket*> buckets(k);
  for (std::size_t i = 0; i < k; ++i) {
    buckets[i] = store.bucket(patterns[i]);
    if (buckets[i] == nullptr || buckets[i]->entries.empty()) return 0;
  }

  std::vector<expr::Env> envs(k + 1);
  std::vector<Store::Id> chosen(k);
  std::size_t visited = 0;
  bool stop = false;

  auto dfs = [&](auto&& self, std::size_t depth) -> void {
    if (stop) return;
    if (depth == k) {
      auto produced = reaction.apply(envs[k], mode);
      if (!produced) return;  // patterns matched but no branch fires
      Match m;
      m.reaction = &reaction;
      m.ids = chosen;
      m.env = envs[k];
      m.produced = std::move(*produced);
      ++visited;
      if (!fn(m) || visited >= limit) stop = true;
      return;
    }
    const auto& bucket = buckets[depth]->entries;
    const std::size_t n = bucket.size();
    const std::size_t start = rng ? rng->bounded(n) : 0;
    for (std::size_t t = 0; t < n && !stop; ++t) {
      const Store::Entry entry = bucket[(start + t) % n];
      if (!store.live(entry)) {
        store.note_stale(*buckets[depth]);
        continue;
      }
      const Store::Id id = entry.id;
      bool dup = false;
      for (std::size_t d = 0; d < depth; ++d) {
        if (chosen[d] == id) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      envs[depth + 1] = envs[depth];
      if (!patterns[depth].match(store.element(id), envs[depth + 1])) continue;
      chosen[depth] = id;
      self(self, depth + 1);
    }
  };
  dfs(dfs, 0);
  return visited;
}

template <typename StoreT>
std::optional<Match> find_one(StoreT& store, const Reaction& reaction,
                              Rng* rng, expr::EvalMode mode) {
  std::optional<Match> found;
  search(store, reaction, 1, rng, mode, [&](Match& m) {
    found = std::move(m);
    return false;
  });
  return found;
}

}  // namespace

std::optional<Match> MatchPipeline::find(Store& store, const Reaction& reaction,
                                         Rng* rng, expr::EvalMode mode) {
  return find_one(store, reaction, rng, mode);
}

std::optional<Match> MatchPipeline::find(const Store& store,
                                         const Reaction& reaction, Rng* rng,
                                         expr::EvalMode mode) {
  return find_one(store, reaction, rng, mode);
}

std::size_t MatchPipeline::enumerate(Store& store, const Reaction& reaction,
                                     std::size_t limit,
                                     const std::function<bool(const Match&)>& fn,
                                     expr::EvalMode mode) {
  return search(store, reaction, limit, nullptr, mode,
                [&](Match& m) { return fn(m); });
}

bool MatchPipeline::validate(const Store& store, Match& match,
                             expr::EvalMode mode) {
  std::vector<const Element*> elems;
  elems.reserve(match.ids.size());
  for (const Store::Id id : match.ids) {
    // alive() alone is not enough — a recycled slot is alive with different
    // content — but re-running the pattern match on the current occupants
    // catches that too, so the pair of checks is exact.
    if (!store.alive(id)) return false;
    elems.push_back(&store.element(id));
  }
  expr::Env env;
  if (!match.reaction->match(elems, env)) return false;
  auto produced = match.reaction->apply(env, mode);
  if (!produced) return false;
  match.env = std::move(env);
  match.produced = std::move(*produced);
  return true;
}

void MatchPipeline::commit(Store& store, const Match& match,
                           const RecordCtx* rec) {
  if (rec != nullptr && rec->recorder != nullptr) {
    // Render consumed occupants while their ids are still alive.
    obs::FireRecord fire;
    fire.reaction = match.reaction->name();
    fire.stage = rec->stage;
    fire.shard = rec->shard;
    fire.node = rec->node;
    fire.consumed.reserve(match.ids.size());
    for (const Store::Id id : match.ids) {
      fire.consumed.push_back(store.element(id).to_string());
    }
    fire.produced.reserve(match.produced.size());
    for (const Element& e : match.produced) {
      fire.produced.push_back(e.to_string());
    }
    rec->recorder->fire(std::move(fire));
  }
  for (const Store::Id id : match.ids) store.remove(id);
  for (const Element& e : match.produced) store.insert(e);
}

void observe_reaction_compile(obs::Telemetry* tel,
                              const gamma::Program& program) {
  if (tel == nullptr) return;
  Histogram& compile_hist = tel->stats().hist("expr.compile_ms");
  for (const auto& stage : program.stages()) {
    for (const Reaction& r : stage) {
      compile_hist.observe(r.compiled().compile_ms());
    }
  }
}

}  // namespace gammaflow::runtime

namespace gammaflow::gamma {

// Legacy entry points (declared in gamma/store.hpp), kept as thin delegates
// so existing callers and tests stay source-compatible. New code calls
// runtime::MatchPipeline directly.

std::optional<Match> find_match(Store& store, const Reaction& reaction,
                                Rng* rng, expr::EvalMode mode) {
  return runtime::MatchPipeline::find(store, reaction, rng, mode);
}

std::optional<Match> find_match(const Store& store, const Reaction& reaction,
                                Rng* rng, expr::EvalMode mode) {
  return runtime::MatchPipeline::find(store, reaction, rng, mode);
}

std::size_t enumerate_matches(Store& store, const Reaction& reaction,
                              std::size_t limit,
                              const std::function<bool(const Match&)>& fn,
                              expr::EvalMode mode) {
  return runtime::MatchPipeline::enumerate(store, reaction, limit, fn, mode);
}

void commit(Store& store, const Match& match) {
  runtime::MatchPipeline::commit(store, match);
}

}  // namespace gammaflow::gamma
