// See worklist.hpp for the model. The drain policy mirrors the
// IndexedEngine's inner loop (fire a reaction while it stays enabled before
// moving on — cheaper than re-queueing after every commit) but replaces its
// shuffled full passes with the dirty queue: a reaction is probed only when
// an insertion its footprint admits has happened since it last proved itself
// exhausted.
#include "gammaflow/runtime/worklist.hpp"

#include <utility>

#include "gammaflow/common/error.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"

namespace gammaflow::runtime {

WakeupIndex::WakeupIndex(std::vector<WakeKeys> keys) : keys_(std::move(keys)) {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    const WakeKeys& k = keys_[i];
    if (k.any) {
      always_.push_back(i);
      continue;  // the always list subsumes the per-key buckets
    }
    for (const std::string& label : k.labels) by_label_[label].push_back(i);
    for (const std::size_t arity : k.arities) by_arity_[arity].push_back(i);
  }
}

void WakeupIndex::wake(const gamma::Element& e,
                       std::vector<std::size_t>& out) const {
  out.insert(out.end(), always_.begin(), always_.end());
  if (e.arity() >= 2 && e.field(1).is_str()) {
    const auto it = by_label_.find(e.field(1).as_str());
    if (it != by_label_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  const auto it = by_arity_.find(e.arity());
  if (it != by_arity_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
}

IncrementalFixpoint::IncrementalFixpoint(gamma::Program program,
                                         std::vector<WakeKeys> keys,
                                         const WorklistOptions& options)
    : program_(std::move(program)),
      index_(std::move(keys)),
      options_(options),
      mode_(options.eval_mode()),
      rng_(options.seed),
      recording_(options, "worklist", "gamma") {
  if (program_.stage_count() > 1) {
    throw EngineError(
        "worklist fixpoint requires a single-stage program; `;` sequencing "
        "has no incremental meaning under streaming injection (got " +
        std::to_string(program_.stage_count()) + " stages)");
  }
  static const std::vector<gamma::Reaction> kNoReactions;
  reactions_ = program_.empty() ? &kNoReactions : &program_.stages().front();
  if (index_.reaction_count() != reactions_->size()) {
    throw EngineError("worklist wakeup keys cover " +
                      std::to_string(index_.reaction_count()) +
                      " reactions but the program has " +
                      std::to_string(reactions_->size()));
  }
  dirty_.assign(reactions_->size(), 0);
  // The journal opens on the empty store; every injection's quiescent state
  // is one round (DESIGN §11), so replaying the rounds reproduces `final`.
  recording_.begin(gamma::Multiset{});
}

void IncrementalFixpoint::wake_element(const gamma::Element& e) {
  wake_scratch_.clear();
  if (options_.rescan) {
    for (std::size_t i = 0; i < reactions_->size(); ++i) {
      wake_scratch_.push_back(i);
    }
  } else {
    index_.wake(e, wake_scratch_);
  }
  for (const std::size_t idx : wake_scratch_) {
    if (dirty_[idx] != 0) continue;
    dirty_[idx] = 1;
    queue_.push_back(idx);
    ++stats_.wakeups;
  }
}

Outcome IncrementalFixpoint::saturate(StepLoop& loop) {
  // Drain the dirty queue in FIFO batches of kDrainBatch: one deque
  // round-trip per batch instead of per reaction. Entries are processed
  // strictly in pop order and an early stop pushes the unprocessed suffix
  // back to the FRONT in order, so the firing schedule is identical to
  // one-at-a-time draining.
  std::size_t batch[kDrainBatch];
  while (!queue_.empty() && loop.running()) {
    std::size_t m = 0;
    while (m < kDrainBatch && !queue_.empty()) {
      batch[m++] = queue_.front();
      queue_.pop_front();
    }
    ++stats_.drain_batches;
    std::size_t resume = m;  // first batch entry to push back, if any
    for (std::size_t bi = 0; bi < m; ++bi) {
      if (!loop.running()) {
        resume = bi;  // untouched entries: dirty flags still set
        break;
      }
      const std::size_t idx = batch[bi];
      dirty_[idx] = 0;
      const gamma::Reaction& r = (*reactions_)[idx];
      bool exhausted = false;
      while (!loop.should_stop()) {
        ++stats_.rematches;
        auto match = MatchPipeline::find(store_, r, &rng_, mode_);
        if (!match) {
          // Exhaustive index search failed: r has NO enabled match in the
          // current store, so clearing its dirty flag preserves the
          // "enabled => dirty" invariant until a later insertion re-wakes it.
          exhausted = true;
          break;
        }
        if (!loop.admit(stats_.fires)) break;
        ++stats_.fires;
        ++last_fires_;
        const RecordCtx rctx = recording_.ctx(0);
        MatchPipeline::commit(store_, *match, recording_ ? &rctx : nullptr);
        for (const gamma::Element& produced : match->produced) {
          wake_element(produced);
        }
      }
      if (!exhausted && dirty_[idx] == 0) {
        // Stopped mid-drain (deadline/budget/cancel) with r possibly still
        // enabled: keep it dirty so the next inject() resumes the drain
        // from a state that satisfies the invariant.
        dirty_[idx] = 1;
        resume = bi;
        break;
      }
    }
    for (std::size_t r = m; r > resume; --r) queue_.push_front(batch[r - 1]);
  }
  return loop.outcome();
}

Outcome IncrementalFixpoint::inject(const std::vector<gamma::Element>& elements) {
  last_fires_ = 0;
  ++stats_.injects;
  StepLoop loop(options_, options_.max_steps, "worklist", "max_steps");
  for (const gamma::Element& e : elements) {
    store_.insert(e);
    ++stats_.injected;
    wake_element(e);
  }
  last_outcome_ = saturate(loop);
  if (recording_) recording_.round(store_);
  if (obs::Telemetry* tel = options_.telemetry) {
    auto& stats = tel->stats();
    stats.count("serve.injected", elements.size());
    stats.count("serve.fires", last_fires_);
    stats.hist("serve.inject_us").observe(loop.wall_seconds() * 1e6);
  }
  return last_outcome_;
}

Outcome IncrementalFixpoint::inject(const gamma::Multiset& elements) {
  std::vector<gamma::Element> flat;
  flat.reserve(elements.size());
  for (const gamma::Element& e : elements) flat.push_back(e);
  return inject(flat);
}

void IncrementalFixpoint::finish_recording() {
  recording_.finish(last_outcome_, snapshot());
}

}  // namespace gammaflow::runtime
