#include "gammaflow/runtime/sharded_store.hpp"

#include <algorithm>

#include "gammaflow/expr/ast.hpp"

namespace gammaflow::runtime {
namespace {

/// The pattern's label when it follows the [value, 'label', ...] convention
/// (>= 2 fields, field 1 a literal string); nullopt otherwise.
std::optional<std::string> pattern_label(const gamma::Pattern& p) {
  const auto& fields = p.fields();
  if (fields.size() < 2) return std::nullopt;
  const gamma::PatternField& f = fields[1];
  if (f.is_binder() || !f.value().is_str()) return std::nullopt;
  return f.value().as_str();
}

/// The output tuple's label when field 1 is a string LITERAL expression;
/// nullopt for anything dynamic (a computed label defeats static routing).
std::optional<std::string> output_label(
    const std::vector<expr::ExprPtr>& tuple) {
  if (tuple.size() < 2) return std::nullopt;
  const expr::ExprPtr& field1 = tuple[1];
  if (field1 == nullptr || field1->kind() != expr::Expr::Kind::Literal ||
      !field1->literal().is_str()) {
    return std::nullopt;
  }
  return field1->literal().as_str();
}

}  // namespace

ShardPlan plan_shards(const std::vector<gamma::Reaction>& stage,
                      const std::map<std::string, std::size_t>& conflict_classes) {
  ShardPlan plan;
  if (conflict_classes.empty() || stage.size() < 2) return plan;

  // Rule 1: full coverage; collect each reaction's class.
  std::vector<std::size_t> cls(stage.size());
  for (std::size_t i = 0; i < stage.size(); ++i) {
    const auto it = conflict_classes.find(stage[i].name());
    if (it == conflict_classes.end()) return plan;
    cls[i] = it->second;
  }

  // Rules 2 + 3: label-literal patterns, one class per consumed label.
  std::unordered_map<std::string, std::size_t> label_class;
  for (std::size_t i = 0; i < stage.size(); ++i) {
    for (const gamma::Pattern& p : stage[i].patterns()) {
      const auto label = pattern_label(p);
      if (!label) return plan;
      const auto [it, inserted] = label_class.emplace(*label, cls[i]);
      if (!inserted && it->second != cls[i]) return plan;
    }
  }

  // Rule 4: literal output labels; a produced label someone consumes must
  // stay in the producer's class. Labels nobody consumes are inert under
  // rule 2 (every pattern demands a mapped label) and may land anywhere.
  for (std::size_t i = 0; i < stage.size(); ++i) {
    for (const gamma::Branch& b : stage[i].branches()) {
      for (const auto& tuple : b.outputs) {
        const auto label = output_label(tuple);
        if (!label) return plan;
        const auto it = label_class.find(*label);
        if (it != label_class.end() && it->second != cls[i]) return plan;
      }
    }
  }

  // Renumber the classes present into dense shard ids.
  std::map<std::size_t, std::size_t> shard_of_class;
  for (const std::size_t c : cls) {
    shard_of_class.emplace(c, shard_of_class.size());
  }
  if (shard_of_class.size() < 2) return plan;

  plan.sharded = true;
  plan.shard_count = shard_of_class.size();
  plan.reaction_shard.reserve(stage.size());
  for (const std::size_t c : cls) {
    plan.reaction_shard.push_back(shard_of_class.at(c));
  }
  for (const auto& [label, c] : label_class) {
    plan.label_shard.emplace(label, shard_of_class.at(c));
  }
  return plan;
}

ShardedStore::ShardedStore(const gamma::Multiset& initial, ShardMap map)
    : map_(std::move(map)) {
  shards_.reserve(map_.shards());
  for (std::size_t s = 0; s < map_.shards(); ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (const gamma::Element& e : initial) {
    shards_[map_.route(e)]->store.insert(e);
  }
}

std::size_t ShardedStore::size() const noexcept {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->store.size();
  return total;
}

std::uint64_t ShardedStore::version() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->store.version();
  return total;
}

gamma::Multiset ShardedStore::to_multiset() const {
  gamma::Multiset m;
  for (const auto& s : shards_) m.add(s->store.to_multiset());
  return m;
}

}  // namespace gammaflow::runtime
