// Human-readable run report: the `--metrics` view. Counters, summaries and
// histogram quantiles in aligned text, plus per-thread span accounting when
// a full Telemetry is at hand.
#pragma once

#include <iosfwd>

#include "gammaflow/common/stats.hpp"
#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::obs {

/// Prints a metrics snapshot grouped as counters / summaries / histograms.
void write_report(std::ostream& os, const MetricsSnapshot& metrics);

/// Full report: metrics plus one line per registered thread (events
/// recorded, events dropped by ring overflow).
void write_report(std::ostream& os, const Telemetry& telemetry);

}  // namespace gammaflow::obs
