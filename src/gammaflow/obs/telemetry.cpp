#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::obs {

std::vector<TraceEvent> ThreadRecorder::events() const {
  std::vector<TraceEvent> out;
  const std::size_t cap = ring_.size();
  const std::uint64_t kept = recorded_ < cap ? recorded_ : cap;
  out.reserve(static_cast<std::size_t>(kept));
  // Oldest surviving event: with overflow the write cursor points at it.
  const std::uint64_t first = recorded_ - kept;
  for (std::uint64_t i = 0; i < kept; ++i) {
    out.push_back(ring_[static_cast<std::size_t>((first + i) % cap)]);
  }
  return out;
}

ThreadRecorder& Telemetry::register_thread(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto tid = static_cast<std::uint32_t>(recorders_.size() + 1);
  recorders_.emplace_back(tid, events_per_thread_);
  thread_names_.push_back(name);
  return recorders_.back();
}

const char* Telemetry::intern(const std::string& s) {
  std::lock_guard lock(mutex_);
  for (const std::string& existing : interned_) {
    if (existing == s) return existing.c_str();
  }
  interned_.push_back(s);
  return interned_.back().c_str();
}

std::vector<Telemetry::ThreadView> Telemetry::threads() const {
  std::lock_guard lock(mutex_);
  std::vector<ThreadView> out;
  out.reserve(recorders_.size());
  for (std::size_t i = 0; i < recorders_.size(); ++i) {
    out.push_back(ThreadView{&recorders_[i], thread_names_[i]});
  }
  return out;
}

}  // namespace gammaflow::obs
