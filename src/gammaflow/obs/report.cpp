#include "gammaflow/obs/report.hpp"

#include <iomanip>
#include <ostream>

namespace gammaflow::obs {

void write_report(std::ostream& os, const MetricsSnapshot& metrics) {
  if (!metrics.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : metrics.counters) {
      os << "  " << std::left << std::setw(36) << name << std::right
         << std::setw(14) << value << '\n';
    }
  }
  if (!metrics.summaries.empty()) {
    os << "summaries:\n";
    for (const auto& [name, s] : metrics.summaries) {
      os << "  " << std::left << std::setw(36) << name << std::right
         << " n=" << s.count() << " mean=" << s.mean() << " min=" << s.min()
         << " max=" << s.max() << '\n';
    }
  }
  if (!metrics.histograms.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : metrics.histograms) {
      os << "  " << std::left << std::setw(36) << name << std::right
         << " n=" << h.count << " mean=" << h.mean()
         << " p50=" << h.quantile(0.5) << " p90=" << h.quantile(0.9)
         << " p99=" << h.quantile(0.99) << " max=" << h.max << '\n';
    }
  }
  if (metrics.empty()) os << "(no metrics recorded)\n";
}

void write_report(std::ostream& os, const Telemetry& telemetry) {
  write_report(os, telemetry.metrics());
  const auto threads = telemetry.threads();
  if (threads.empty()) return;
  os << "threads:\n";
  for (const auto& t : threads) {
    os << "  " << std::left << std::setw(36) << t.name << std::right
       << " events=" << t.recorder->recorded()
       << " dropped=" << t.recorder->dropped() << '\n';
  }
}

}  // namespace gammaflow::obs
