// Run recorder: the provenance journal behind `--record-out` and the
// `gammaflow viz` scrubber. Where Telemetry answers "how fast / how often",
// the recorder answers "what happened to the multiset": per-fire provenance
// (reaction, consumed elements, produced elements, shard / cluster node) and
// per-round store snapshots, delta-encoded against the last KEPT snapshot so
// dropped rounds fold into the next one instead of corrupting replay.
//
// Budgets mirror runtime::TraceSink's discipline: firings and rounds past
// the caps still execute, the journal just stops growing and counts the
// drops (fires_dropped / rounds_dropped). A journal with zero drops replays
// exactly — replay_fires(j) == j.final_store — which is what
// verify_journal() checks and the round-trip tests (and `gammaflow viz`'s
// embedded data) rely on.
//
// The recorder speaks strings (canonical Element / token renderings), not
// gamma types: gf_obs stays dependent on gf_common alone, and one journal
// format serves all three model families (gamma / dataflow / distrib).
// Thread-safe: the parallel engines fire() from worker threads.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gammaflow::obs {

/// A store snapshot as canonical element string -> multiplicity. Ordered so
/// journals serialize deterministically.
using StoreCounts = std::map<std::string, std::int64_t>;

/// One firing's provenance. `round` indexes the round the fire lands in:
/// the NEXT kept RoundDelta (so replaying rounds 0..k equals replaying all
/// fires with round <= k when nothing was dropped).
struct FireRecord {
  std::string reaction;                // reaction name / node label
  std::int64_t stage = -1;             // gamma stage index, -1 = n/a
  std::uint64_t round = 0;             // assigned by the recorder
  std::vector<std::string> consumed;   // element / token strings
  std::vector<std::string> produced;
  std::int64_t shard = -1;             // sharded-store shard id, -1 = n/a
  std::int64_t node = -1;              // distrib cluster node, -1 = n/a
};

/// One kept round: the store delta since the previous kept round.
struct RoundDelta {
  std::uint64_t fires = 0;     // fires recorded since the last kept round
  std::uint64_t store_size = 0;  // total multiplicity after this round
  StoreCounts added;
  StoreCounts removed;
};

/// Journal growth budgets; see the header note for drop semantics.
struct RecorderLimits {
  std::uint64_t max_fires = 100'000;
  std::uint64_t max_rounds = 10'000;
  /// Approximate byte budget for round deltas (strings + per-entry
  /// overhead); a round whose delta would exceed it is dropped.
  std::uint64_t max_round_bytes = 8ull << 20;
};

/// The serialized form (version `kJournalVersion`).
struct Journal {
  int version = 1;
  std::string engine;   // "sequential", "interpreter", "cluster", ...
  std::string kind;     // "gamma" | "dataflow" | "distrib"
  std::string outcome;  // runtime Outcome name, e.g. "completed"
  /// Serve-session id when the journal comes from a `gammaflow serve`
  /// session ("" for batch runs; the key is omitted from the serialized
  /// form then, so pre-session journals round-trip byte-identically).
  std::string session;
  StoreCounts initial;
  std::vector<RoundDelta> rounds;
  std::vector<FireRecord> fires;
  StoreCounts final_store;
  std::uint64_t fires_total = 0;    // fires offered, kept + dropped
  std::uint64_t fires_dropped = 0;
  std::uint64_t rounds_total = 0;   // rounds offered, kept + dropped
  std::uint64_t rounds_dropped = 0;
};

inline constexpr int kJournalVersion = 1;

class RunRecorder {
 public:
  RunRecorder() = default;
  explicit RunRecorder(RecorderLimits limits) : limits_(limits) {}

  /// Starts a run: names the engine/kind and snapshots the initial store.
  /// Resets any previous journal (a recorder records one run at a time).
  void begin(std::string engine, std::string kind, StoreCounts initial);

  /// Tags the journal with a serve-session id (Journal::session). Call
  /// after begin() — begin resets the journal, tag included.
  void set_session(std::string session);

  /// Records one firing (budgeted; drops count toward fires_dropped).
  void fire(FireRecord record);

  /// Closes a round: computes the delta of `store` against the last kept
  /// snapshot. Budget-dropped rounds leave the baseline untouched, so the
  /// dropped delta folds into the next kept round.
  void round(const StoreCounts& store);

  /// Ends the run. Appends a closing round when the last kept snapshot
  /// differs from `final_store` (budget-exempt: replay always converges on
  /// the final store even when intermediate rounds were dropped).
  void finish(std::string outcome, StoreCounts final_store);

  /// The journal recorded so far (copy; safe to call mid-run).
  [[nodiscard]] Journal journal() const;
  /// Moves the journal out (end-of-run path; leaves the recorder empty).
  [[nodiscard]] Journal take();

 private:
  void close_round_locked(const StoreCounts& store, bool budget_exempt);

  mutable std::mutex mu_;
  RecorderLimits limits_;
  Journal journal_;
  StoreCounts last_kept_;       // baseline for the next round delta
  std::uint64_t round_bytes_ = 0;
  std::uint64_t fires_in_round_ = 0;
};

/// Serializes `journal` as one JSON object (stable key order, no trailing
/// newline). The format is documented in DESIGN.md ("Run journal").
void write_journal(std::ostream& out, const Journal& journal);
[[nodiscard]] std::string journal_to_string(const Journal& journal);

/// Parses a journal produced by write_journal. Throws std::runtime_error on
/// malformed input or an unsupported version.
[[nodiscard]] Journal parse_journal(std::istream& in);
[[nodiscard]] Journal parse_journal_string(const std::string& text);

/// Replays the first `upto` fires over `initial`: remove consumed, add
/// produced. With upto >= fires.size() and zero drops this reproduces
/// final_store.
[[nodiscard]] StoreCounts replay_fires(const Journal& journal,
                                       std::size_t upto);
/// Replays the first `upto` round deltas over `initial`.
[[nodiscard]] StoreCounts replay_rounds(const Journal& journal,
                                        std::size_t upto);

/// Internal consistency check: replay via rounds always matches final_store
/// (the closing round guarantees it); replay via fires matches when no fire
/// was dropped. Returns "" when consistent, else a diagnostic.
[[nodiscard]] std::string verify_journal(const Journal& journal);

}  // namespace gammaflow::obs
