#include "gammaflow/obs/run_recorder.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace gammaflow::obs {
namespace {

/// Approximate serialized weight of a delta entry: the string plus JSON
/// punctuation and a count. Only relative accuracy matters — the budget
/// bounds journal growth, it is not an exact encoder size.
std::uint64_t entry_bytes(const StoreCounts& counts) {
  std::uint64_t bytes = 0;
  for (const auto& [elem, n] : counts) {
    (void)n;
    bytes += elem.size() + 16;
  }
  return bytes;
}

void apply_delta(StoreCounts& store, const StoreCounts& added,
                 const StoreCounts& removed) {
  for (const auto& [elem, n] : removed) {
    auto it = store.find(elem);
    if (it == store.end()) continue;
    it->second -= n;
    if (it->second <= 0) store.erase(it);
  }
  for (const auto& [elem, n] : added) store[elem] += n;
}

std::uint64_t total_count(const StoreCounts& store) {
  std::uint64_t n = 0;
  for (const auto& [elem, c] : store) {
    (void)elem;
    n += static_cast<std::uint64_t>(c);
  }
  return n;
}

// ---------------------------------------------------------------- writing

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_counts(std::ostream& out, const StoreCounts& counts) {
  out << '{';
  bool first = true;
  for (const auto& [elem, n] : counts) {
    if (!first) out << ',';
    first = false;
    write_json_string(out, elem);
    out << ':' << n;
  }
  out << '}';
}

void write_strings(std::ostream& out, const std::vector<std::string>& items) {
  out << '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << ',';
    write_json_string(out, items[i]);
  }
  out << ']';
}

// ---------------------------------------------------------------- parsing
//
// A minimal recursive-descent parser for exactly the JSON write_journal
// emits (objects, arrays, strings, integers). Kept here rather than pulling
// in a dependency: the container bakes no JSON library and the grammar is
// ten productions.

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  [[nodiscard]] Journal parse() {
    Journal j;
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "gf_journal") {
        j.version = static_cast<int>(parse_int());
      } else if (key == "engine") {
        j.engine = parse_string();
      } else if (key == "kind") {
        j.kind = parse_string();
      } else if (key == "session") {
        j.session = parse_string();
      } else if (key == "outcome") {
        j.outcome = parse_string();
      } else if (key == "initial") {
        j.initial = parse_counts();
      } else if (key == "final") {
        j.final_store = parse_counts();
      } else if (key == "rounds") {
        j.rounds = parse_rounds();
      } else if (key == "fires") {
        j.fires = parse_fires();
      } else if (key == "fires_total") {
        j.fires_total = static_cast<std::uint64_t>(parse_int());
      } else if (key == "fires_dropped") {
        j.fires_dropped = static_cast<std::uint64_t>(parse_int());
      } else if (key == "rounds_total") {
        j.rounds_total = static_cast<std::uint64_t>(parse_int());
      } else if (key == "rounds_dropped") {
        j.rounds_dropped = static_cast<std::uint64_t>(parse_int());
      } else {
        skip_value();  // forward compatibility: ignore unknown keys
      }
    }
    expect('}');
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after journal object");
    if (j.version != kJournalVersion) {
      throw std::runtime_error("unsupported journal version " +
                               std::to_string(j.version));
    }
    return j;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("journal parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }
  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const unsigned code =
              static_cast<unsigned>(std::stoul(text_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          // write_journal only \u-escapes control characters (< 0x20); keep
          // the parser honest about exactly that range.
          if (code > 0xFF) fail("non-latin \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
    expect('"');
    return out;
  }

  [[nodiscard]] std::int64_t parse_int() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) fail("expected integer");
    return std::stoll(text_.substr(start, pos_ - start));
  }

  [[nodiscard]] StoreCounts parse_counts() {
    StoreCounts counts;
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      counts[key] = parse_int();
    }
    expect('}');
    return counts;
  }

  [[nodiscard]] std::vector<std::string> parse_strings() {
    std::vector<std::string> items;
    expect('[');
    bool first = true;
    while (!peek_is(']')) {
      if (!first) expect(',');
      first = false;
      items.push_back(parse_string());
    }
    expect(']');
    return items;
  }

  [[nodiscard]] std::vector<RoundDelta> parse_rounds() {
    std::vector<RoundDelta> rounds;
    expect('[');
    bool first = true;
    while (!peek_is(']')) {
      if (!first) expect(',');
      first = false;
      RoundDelta d;
      expect('{');
      bool kfirst = true;
      while (!peek_is('}')) {
        if (!kfirst) expect(',');
        kfirst = false;
        const std::string key = parse_string();
        expect(':');
        if (key == "fires") {
          d.fires = static_cast<std::uint64_t>(parse_int());
        } else if (key == "size") {
          d.store_size = static_cast<std::uint64_t>(parse_int());
        } else if (key == "add") {
          d.added = parse_counts();
        } else if (key == "del") {
          d.removed = parse_counts();
        } else {
          skip_value();
        }
      }
      expect('}');
      rounds.push_back(std::move(d));
    }
    expect(']');
    return rounds;
  }

  [[nodiscard]] std::vector<FireRecord> parse_fires() {
    std::vector<FireRecord> fires;
    expect('[');
    bool first = true;
    while (!peek_is(']')) {
      if (!first) expect(',');
      first = false;
      FireRecord f;
      expect('{');
      bool kfirst = true;
      while (!peek_is('}')) {
        if (!kfirst) expect(',');
        kfirst = false;
        const std::string key = parse_string();
        expect(':');
        if (key == "r") {
          f.reaction = parse_string();
        } else if (key == "stage") {
          f.stage = parse_int();
        } else if (key == "round") {
          f.round = static_cast<std::uint64_t>(parse_int());
        } else if (key == "in") {
          f.consumed = parse_strings();
        } else if (key == "out") {
          f.produced = parse_strings();
        } else if (key == "shard") {
          f.shard = parse_int();
        } else if (key == "node") {
          f.node = parse_int();
        } else {
          skip_value();
        }
      }
      expect('}');
      fires.push_back(std::move(f));
    }
    expect(']');
    return fires;
  }

  void skip_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos_ >= text_.size()) fail("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      (void)parse_string();
    } else if (c == '{') {
      expect('{');
      bool first = true;
      while (!peek_is('}')) {
        if (!first) expect(',');
        first = false;
        (void)parse_string();
        expect(':');
        skip_value();
      }
      expect('}');
    } else if (c == '[') {
      expect('[');
      bool first = true;
      while (!peek_is(']')) {
        if (!first) expect(',');
        first = false;
        skip_value();
      }
      expect(']');
    } else {
      (void)parse_int();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

// --------------------------------------------------------------- recorder

void RunRecorder::begin(std::string engine, std::string kind,
                        StoreCounts initial) {
  const std::lock_guard<std::mutex> lock(mu_);
  journal_ = Journal{};
  journal_.engine = std::move(engine);
  journal_.kind = std::move(kind);
  journal_.initial = std::move(initial);
  last_kept_ = journal_.initial;
  round_bytes_ = 0;
  fires_in_round_ = 0;
}

void RunRecorder::set_session(std::string session) {
  const std::lock_guard<std::mutex> lock(mu_);
  journal_.session = std::move(session);
}

void RunRecorder::fire(FireRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++journal_.fires_total;
  ++fires_in_round_;
  if (journal_.fires.size() >= limits_.max_fires) {
    ++journal_.fires_dropped;
    return;
  }
  record.round = journal_.rounds.size();
  journal_.fires.push_back(std::move(record));
}

void RunRecorder::close_round_locked(const StoreCounts& store,
                                     bool budget_exempt) {
  RoundDelta delta;
  for (const auto& [elem, n] : store) {
    auto it = last_kept_.find(elem);
    const std::int64_t before = it == last_kept_.end() ? 0 : it->second;
    if (n > before) delta.added[elem] = n - before;
  }
  for (const auto& [elem, n] : last_kept_) {
    auto it = store.find(elem);
    const std::int64_t after = it == store.end() ? 0 : it->second;
    if (n > after) delta.removed[elem] = n - after;
  }
  delta.fires = fires_in_round_;
  delta.store_size = total_count(store);
  if (!budget_exempt) {
    const std::uint64_t bytes = entry_bytes(delta.added) +
                                entry_bytes(delta.removed) + 32;
    if (journal_.rounds.size() >= limits_.max_rounds ||
        round_bytes_ + bytes > limits_.max_round_bytes) {
      // Dropped: last_kept_ stays put, so this delta folds into the next
      // kept round (or the budget-exempt closing round).
      ++journal_.rounds_dropped;
      return;
    }
    round_bytes_ += bytes;
  }
  fires_in_round_ = 0;
  last_kept_ = store;
  journal_.rounds.push_back(std::move(delta));
}

void RunRecorder::round(const StoreCounts& store) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++journal_.rounds_total;
  close_round_locked(store, /*budget_exempt=*/false);
}

void RunRecorder::finish(std::string outcome, StoreCounts final_store) {
  const std::lock_guard<std::mutex> lock(mu_);
  journal_.outcome = std::move(outcome);
  if (last_kept_ != final_store) {
    ++journal_.rounds_total;
    close_round_locked(final_store, /*budget_exempt=*/true);
  }
  journal_.final_store = std::move(final_store);
}

Journal RunRecorder::journal() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return journal_;
}

Journal RunRecorder::take() {
  const std::lock_guard<std::mutex> lock(mu_);
  Journal out = std::move(journal_);
  journal_ = Journal{};
  last_kept_.clear();
  round_bytes_ = 0;
  fires_in_round_ = 0;
  return out;
}

// ------------------------------------------------------------- serializer

void write_journal(std::ostream& out, const Journal& journal) {
  out << "{\"gf_journal\":" << journal.version;
  out << ",\"engine\":";
  write_json_string(out, journal.engine);
  out << ",\"kind\":";
  write_json_string(out, journal.kind);
  if (!journal.session.empty()) {
    out << ",\"session\":";
    write_json_string(out, journal.session);
  }
  out << ",\"outcome\":";
  write_json_string(out, journal.outcome);
  out << ",\"initial\":";
  write_counts(out, journal.initial);
  out << ",\"rounds\":[";
  for (std::size_t i = 0; i < journal.rounds.size(); ++i) {
    const RoundDelta& d = journal.rounds[i];
    if (i > 0) out << ',';
    out << "{\"fires\":" << d.fires << ",\"size\":" << d.store_size
        << ",\"add\":";
    write_counts(out, d.added);
    out << ",\"del\":";
    write_counts(out, d.removed);
    out << '}';
  }
  out << "],\"fires\":[";
  for (std::size_t i = 0; i < journal.fires.size(); ++i) {
    const FireRecord& f = journal.fires[i];
    if (i > 0) out << ',';
    out << "{\"r\":";
    write_json_string(out, f.reaction);
    out << ",\"stage\":" << f.stage << ",\"round\":" << f.round << ",\"in\":";
    write_strings(out, f.consumed);
    out << ",\"out\":";
    write_strings(out, f.produced);
    out << ",\"shard\":" << f.shard << ",\"node\":" << f.node << '}';
  }
  out << "],\"final\":";
  write_counts(out, journal.final_store);
  out << ",\"fires_total\":" << journal.fires_total
      << ",\"fires_dropped\":" << journal.fires_dropped
      << ",\"rounds_total\":" << journal.rounds_total
      << ",\"rounds_dropped\":" << journal.rounds_dropped << '}';
}

std::string journal_to_string(const Journal& journal) {
  std::ostringstream out;
  write_journal(out, journal);
  return out.str();
}

Journal parse_journal(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_journal_string(buf.str());
}

Journal parse_journal_string(const std::string& text) {
  return Parser(text).parse();
}

// ----------------------------------------------------------------- replay

StoreCounts replay_fires(const Journal& journal, std::size_t upto) {
  StoreCounts store = journal.initial;
  const std::size_t n = std::min(upto, journal.fires.size());
  for (std::size_t i = 0; i < n; ++i) {
    const FireRecord& f = journal.fires[i];
    StoreCounts consumed;
    StoreCounts produced;
    for (const std::string& e : f.consumed) ++consumed[e];
    for (const std::string& e : f.produced) ++produced[e];
    apply_delta(store, produced, consumed);
  }
  return store;
}

StoreCounts replay_rounds(const Journal& journal, std::size_t upto) {
  StoreCounts store = journal.initial;
  const std::size_t n = std::min(upto, journal.rounds.size());
  for (std::size_t i = 0; i < n; ++i) {
    apply_delta(store, journal.rounds[i].added, journal.rounds[i].removed);
  }
  return store;
}

std::string verify_journal(const Journal& journal) {
  if (replay_rounds(journal, journal.rounds.size()) != journal.final_store) {
    return "round-delta replay does not reach final store";
  }
  if (journal.fires_dropped == 0 &&
      replay_fires(journal, journal.fires.size()) != journal.final_store) {
    return "fire replay does not reach final store";
  }
  if (journal.fires.size() + journal.fires_dropped != journal.fires_total) {
    return "fire drop accounting inconsistent";
  }
  if (journal.rounds_dropped > journal.rounds_total) {
    return "round drop accounting inconsistent";
  }
  return "";
}

}  // namespace gammaflow::obs
