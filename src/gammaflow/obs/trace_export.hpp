// Chrome trace-event exporter: serializes a Telemetry's per-thread event
// rings as the JSON array format understood by chrome://tracing and
// Perfetto (https://ui.perfetto.dev). Every event object carries at least
// {name, ph, ts, pid, tid}; spans add dur, counters add args.value.
#pragma once

#include <iosfwd>

#include "gammaflow/obs/telemetry.hpp"

namespace gammaflow::obs {

/// Writes the full trace (thread-name metadata first, then events in ring
/// order per thread). Call after the traced run finished.
void write_chrome_trace(std::ostream& os, const Telemetry& telemetry);

}  // namespace gammaflow::obs
