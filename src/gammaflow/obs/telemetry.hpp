// Run-scoped telemetry: per-thread span/event recorders plus a metrics
// registry, handed to an engine through RunOptions/DfRunOptions. Design
// constraints, in order:
//   1. Zero cost when absent — engines hold a `Telemetry*` that defaults to
//      null, and every instrumentation site is behind one pointer test.
//   2. No locks on the hot path — each engine thread registers once (cold,
//      mutexed) and then writes into its own fixed-capacity ring buffer;
//      overflow overwrites the oldest events rather than allocating.
//   3. Post-mortem reading — recorders are read only after the run's worker
//      threads have joined, so the ring needs no atomics at all.
// Exporters (Chrome trace JSON, text report) live in trace_export.hpp and
// report.hpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gammaflow/common/stats.hpp"

namespace gammaflow::obs {

/// One trace event, shaped after the Chrome trace-event phases we emit:
/// 'X' complete span, 'i' instant, 'C' counter sample.
struct TraceEvent {
  const char* name = "";  // static literal or Telemetry::intern result
  char phase = 'X';
  std::uint64_t ts_us = 0;   // microseconds since the Telemetry epoch
  std::uint64_t dur_us = 0;  // 'X' only
  std::uint64_t arg = 0;     // 'C' value; optional span/instant payload
  bool has_arg = false;
};

/// Fixed-capacity single-writer event ring. The owning thread records;
/// nobody reads until that thread is done (engines join before exporting).
class ThreadRecorder {
 public:
  ThreadRecorder(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), ring_(capacity > 0 ? capacity : 1) {}

  void record(const TraceEvent& ev) noexcept {
    ring_[static_cast<std::size_t>(recorded_ % ring_.size())] = ev;
    ++recorded_;
  }
  void instant(const char* name, std::uint64_t ts_us) noexcept {
    record(TraceEvent{name, 'i', ts_us, 0, 0, false});
  }
  void counter(const char* name, std::uint64_t ts_us,
               std::uint64_t value) noexcept {
    record(TraceEvent{name, 'C', ts_us, 0, value, true});
  }

  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }
  /// Total events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  /// Surviving events, oldest first. Only valid once the writer stopped.
  [[nodiscard]] std::vector<TraceEvent> events() const;

 private:
  std::uint32_t tid_;
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
};

class Telemetry {
 public:
  static constexpr std::size_t kDefaultEventsPerThread = std::size_t{1} << 16;

  explicit Telemetry(std::size_t events_per_thread = kDefaultEventsPerThread)
      : epoch_(std::chrono::steady_clock::now()),
        events_per_thread_(events_per_thread) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Registers the calling thread under `name` ("gamma-worker-3"); cold path.
  /// The returned recorder is owned by the Telemetry and exclusive to the
  /// registering thread for writing.
  ThreadRecorder& register_thread(const std::string& name);

  /// Copies `s` into telemetry-lifetime storage so hot paths can stamp
  /// events with a stable `const char*` (intern once, record many).
  const char* intern(const std::string& s);

  [[nodiscard]] std::uint64_t now_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Run-scoped metric sink; safe from any thread.
  [[nodiscard]] StatsRegistry& stats() noexcept { return stats_; }
  [[nodiscard]] MetricsSnapshot metrics() const { return stats_.snapshot(); }

  struct ThreadView {
    const ThreadRecorder* recorder;
    std::string name;
  };
  /// All registered threads; call after the run's workers joined.
  [[nodiscard]] std::vector<ThreadView> threads() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::size_t events_per_thread_;
  mutable std::mutex mutex_;
  std::deque<ThreadRecorder> recorders_;  // deque: stable addresses
  std::vector<std::string> thread_names_;
  std::deque<std::string> interned_;
  StatsRegistry stats_;
};

/// RAII complete-span. With a null telemetry the constructor is a pair of
/// pointer stores and the destructor one null test — cheap enough to leave
/// in engine loops unconditionally.
class Span {
 public:
  Span(const Telemetry* tel, ThreadRecorder* rec, const char* name) noexcept
      : tel_(tel), rec_(rec), name_(name),
        start_(tel ? tel->now_us() : 0) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (rec_ == nullptr) return;
    const std::uint64_t end = tel_->now_us();
    rec_->record(TraceEvent{name_, 'X', start_, end - start_, arg_, has_arg_});
  }

  void set_arg(std::uint64_t v) noexcept {
    arg_ = v;
    has_arg_ = true;
  }

 private:
  const Telemetry* tel_;
  ThreadRecorder* rec_;
  const char* name_;
  std::uint64_t start_;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace gammaflow::obs
