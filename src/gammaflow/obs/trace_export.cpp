#include "gammaflow/obs/trace_export.hpp"

#include <ostream>
#include <string>

namespace gammaflow::obs {
namespace {

constexpr int kPid = 1;  // single-process tool; Chrome requires some pid

void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_event(std::ostream& os, const TraceEvent& ev, std::uint32_t tid,
                 bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":";
  write_json_string(os, ev.name);
  os << ",\"ph\":\"" << ev.phase << "\",\"ts\":" << ev.ts_us
     << ",\"pid\":" << kPid << ",\"tid\":" << tid;
  if (ev.phase == 'X') os << ",\"dur\":" << ev.dur_us;
  if (ev.phase == 'i') os << ",\"s\":\"t\"";  // instant scope: thread
  if (ev.phase == 'C' || ev.has_arg) {
    os << ",\"args\":{\"value\":" << ev.arg << '}';
  }
  os << '}';
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Telemetry& telemetry) {
  os << "[\n";
  bool first = true;
  const auto threads = telemetry.threads();
  for (const auto& t : threads) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << kPid
       << ",\"tid\":" << t.recorder->tid() << ",\"args\":{\"name\":";
    write_json_string(os, t.name.c_str());
    os << "}}";
  }
  for (const auto& t : threads) {
    for (const TraceEvent& ev : t.recorder->events()) {
      write_event(os, ev, t.recorder->tid(), first);
    }
  }
  os << "\n]\n";
}

}  // namespace gammaflow::obs
