// Lexer shared by the standalone expression parser and the Gamma DSL parser
// (Fig. 3 grammar). Keywords are matched case-insensitively because the
// paper's listings mix "if"/"If". String literals use single quotes, as in
// the paper ('A1').
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gammaflow/common/error.hpp"
#include "gammaflow/common/value.hpp"

namespace gammaflow::expr {

enum class TokenKind : std::uint8_t {
  End,
  Ident,
  IntLit,
  RealLit,
  StrLit,
  // keywords
  KwReplace, KwBy, KwIf, KwElse, KwWhere,
  KwAnd, KwOr, KwNot, KwTrue, KwFalse, KwNil,
  // imperative-mode keywords (frontend only)
  KwFor, KwWhile, KwOutput, KwVar,
  // operators / punctuation
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, EqEq, Ne,
  Assign, Comma, LBracket, RBracket, LParen, RParen,
  Pipe, Semicolon,
  // imperative-mode operators (frontend only)
  LBrace, RBrace, PlusPlus, MinusMinus, PlusEq, MinusEq,
};

const char* to_string(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;  // identifier name or raw literal spelling
  Value value;       // decoded literal payload for IntLit/RealLit/StrLit
  int line = 1;
  int column = 1;
};

/// Lexing dialect. Expression mode is the Gamma/expression language (the
/// default; `--x` lexes as two unary minuses). Imperative mode is the
/// frontend's C-like language: braces, ++/--/+=/-= and the for/while/
/// output/var keywords become tokens, `//` also starts a comment, and the
/// type words int/real/bool lex as KwVar.
enum class LexMode : std::uint8_t { Expression, Imperative };

/// Tokenizes the whole input eagerly. Throws ParseError on bad characters,
/// unterminated strings, or malformed numbers. `#` starts a line comment.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source,
                                          LexMode mode = LexMode::Expression);

}  // namespace gammaflow::expr
