// Bytecode backend for the expression IR: a one-pass compiler from the Expr
// AST into a compact register machine, and a stack-free Vm that executes it.
//
// Why: every engine evaluates reaction conditions and by-list expressions on
// EVERY candidate match, so the Γ fixed-point hot path is dominated by AST
// walking — shared_ptr chasing, per-node kind dispatch, and a string lookup
// per variable occurrence. Compiling once per program load replaces all of
// that with a flat Instr array over a register file: variables become slot
// indices resolved at compile time, literals live in a constant pool, and
// evaluation is a single dispatch loop with no allocation.
//
// Equivalence obligation (enforced by the differential suite in
// tests/test_bytecode.cpp): for any expression and environment, Vm::run on
// compile(e) returns exactly what eval(e, env) returns — same Value (kind
// and payload), same short-circuit behaviour for and/or, and a TypeError /
// ProgramError whenever the walker throws one. The compiler therefore folds
// only literal subtrees whose evaluation succeeds (the same guard
// expr::simplify uses) and applies NO algebraic identities: `0 + x -> x`
// style rewrites can erase the walker's type errors, which would break
// state-identity between compiled and interpreted engine runs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gammaflow/common/value.hpp"
#include "gammaflow/expr/ast.hpp"

namespace gammaflow::expr {

/// How an engine evaluates reaction conditions and outputs: walking the Expr
/// AST (the historical reference path) or running compiled bytecode
/// (default; RunOptions::compile / `--no-compile` select per run).
enum class EvalMode : std::uint8_t { Ast, Vm };

const char* to_string(EvalMode mode) noexcept;

/// Register-machine opcodes. Three-operand form over registers r[dst], r[a],
/// r[b]; LoadConst/LoadSlot use `a` as a pool/slot index, the conditional
/// jumps use `b` as an absolute instruction target. See DESIGN.md §8 for the
/// full ISA table.
enum class OpCode : std::uint8_t {
  LoadConst,  // r[dst] = consts[a]
  LoadSlot,   // r[dst] = *slots[a]          (binder slot, resolved at compile)
  Add,        // r[dst] = r[a] + r[b]        (checked, promoting — value.hpp)
  Sub,        // r[dst] = r[a] - r[b]
  Mul,        // r[dst] = r[a] * r[b]
  Div,        // r[dst] = r[a] / r[b]        (int/int is integer division)
  Mod,        // r[dst] = r[a] % r[b]        (two ints only)
  Lt,         // r[dst] = Bool(r[a] < r[b])
  Le,         // r[dst] = Bool(r[a] <= r[b])
  Gt,         // r[dst] = Bool(r[a] > r[b])
  Ge,         // r[dst] = Bool(r[a] >= r[b])
  Eq,         // r[dst] = Bool(r[a] == r[b]) (structural)
  Ne,         // r[dst] = Bool(r[a] != r[b])
  Neg,        // r[dst] = -r[a]
  Not,        // r[dst] = not r[a]
  Truthy,     // r[dst] = Bool(truthy(r[a])) (and/or result normalization)
  BoolToInt,  // r[dst] = truthy(r[a]) ? Int 1 : Int 0 (dataflow Cmp nodes)
  JumpIfFalsy,   // if !truthy(r[a]) { r[dst] = Bool(false); pc = b }
  JumpIfTruthy,  // if  truthy(r[a]) { r[dst] = Bool(true);  pc = b }
  Ret,        // return r[a]
};

const char* to_string(OpCode op) noexcept;

struct Instr {
  OpCode op = OpCode::Ret;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
};

/// A compiled expression: flat code, constant pool, and the register/slot
/// footprint the Vm needs. Immutable after compile(); safe to share across
/// threads (each thread brings its own Vm).
struct Chunk {
  std::vector<Instr> code;
  std::vector<Value> consts;
  /// Binder slot names in slot-index order (diagnostics / disassembly; the
  /// code itself refers to slots by index only).
  std::vector<std::string> slot_names;
  std::uint16_t register_count = 0;

  /// Human-readable listing, one instruction per line (tests, DESIGN.md).
  [[nodiscard]] std::string disassemble() const;
};

struct CompileOptions {
  /// Append a BoolToInt before Ret: dataflow Cmp nodes emit Int 1/0 (not
  /// Bool) so cross-model results stay structurally identical.
  bool bool_to_int_result = false;
};

/// Compiles `e` against a fixed slot layout: every Var must name an entry of
/// `slot_names` (its index becomes the LoadSlot operand) — a miss is a
/// compile-time ProgramError, which is strictly earlier than the walker's
/// eval-time error and only reachable through unvalidated expressions.
/// Literal-only subtrees are folded when their evaluation succeeds; throwing
/// subtrees (1/0) are preserved so runtime errors match the walker.
[[nodiscard]] Chunk compile(const ExprPtr& e,
                            std::span<const std::string> slot_names,
                            const CompileOptions& options = {});

/// Executes chunks. Owns a reusable register file so steady-state evaluation
/// allocates nothing; one Vm per thread (engines keep one per worker).
class Vm {
 public:
  /// Runs `chunk` with `slots[i]` bound to slot i (pointers, not copies —
  /// the caller's environment outlives the call). A null slot pointer means
  /// "unbound": referencing it throws the walker's ProgramError, and a slot
  /// the evaluated path never touches may stay null, exactly like lazy
  /// Env::lookup. Value operations throw TypeError as the walker does.
  [[nodiscard]] Value run(const Chunk& chunk,
                          std::span<const Value* const> slots);

  /// Instructions retired by THIS Vm since construction.
  [[nodiscard]] std::uint64_t instrs_executed() const noexcept {
    return instrs_;
  }

 private:
  std::vector<Value> regs_;
  std::uint64_t instrs_ = 0;
};

/// Process-wide count of VM instructions retired (relaxed counter flushed
/// once per Vm::run). Engines report per-run deltas as the
/// `vm.instrs_executed` metric.
[[nodiscard]] std::uint64_t vm_instrs_executed() noexcept;

}  // namespace gammaflow::expr
