// Bytecode backend for the expression IR: a one-pass compiler from the Expr
// AST into a compact register machine, and a stack-free Vm that executes it.
//
// Why: every engine evaluates reaction conditions and by-list expressions on
// EVERY candidate match, so the Γ fixed-point hot path is dominated by AST
// walking — shared_ptr chasing, per-node kind dispatch, and a string lookup
// per variable occurrence. Compiling once per program load replaces all of
// that with a flat Instr array over a register file: variables become slot
// indices resolved at compile time, literals live in a constant pool, and
// evaluation is a single dispatch loop with no allocation.
//
// Equivalence obligation (enforced by the differential suite in
// tests/test_bytecode.cpp): for any expression and environment, Vm::run on
// compile(e) returns exactly what eval(e, env) returns — same Value (kind
// and payload), same short-circuit behaviour for and/or, and a TypeError /
// ProgramError whenever the walker throws one. The compiler therefore folds
// only literal subtrees whose evaluation succeeds (the same guard
// expr::simplify uses) and applies NO algebraic identities: `0 + x -> x`
// style rewrites can erase the walker's type errors, which would break
// state-identity between compiled and interpreted engine runs.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gammaflow/common/value.hpp"
#include "gammaflow/expr/ast.hpp"

namespace gammaflow::expr {

/// How an engine evaluates reaction conditions and outputs: walking the Expr
/// AST (the historical reference path), running compiled bytecode, or —
/// default — batch bitmap evaluation of conditions over whole candidate
/// column batches, with the scalar Vm for outputs and as the per-reaction
/// escape hatch whenever a condition is not batchable.
/// RunOptions::compile / `--no-compile` and `--no-batch` select per run.
enum class EvalMode : std::uint8_t { Ast, Vm, Batch };

const char* to_string(EvalMode mode) noexcept;

/// Register-machine opcodes. Three-operand form over registers r[dst], r[a],
/// r[b]; LoadConst/LoadSlot use `a` as a pool/slot index, the conditional
/// jumps use `b` as an absolute instruction target. See DESIGN.md §8 for the
/// full ISA table.
enum class OpCode : std::uint8_t {
  LoadConst,  // r[dst] = consts[a]
  LoadSlot,   // r[dst] = *slots[a]          (binder slot, resolved at compile)
  Add,        // r[dst] = r[a] + r[b]        (checked, promoting — value.hpp)
  Sub,        // r[dst] = r[a] - r[b]
  Mul,        // r[dst] = r[a] * r[b]
  Div,        // r[dst] = r[a] / r[b]        (int/int is integer division)
  Mod,        // r[dst] = r[a] % r[b]        (two ints only)
  Lt,         // r[dst] = Bool(r[a] < r[b])
  Le,         // r[dst] = Bool(r[a] <= r[b])
  Gt,         // r[dst] = Bool(r[a] > r[b])
  Ge,         // r[dst] = Bool(r[a] >= r[b])
  Eq,         // r[dst] = Bool(r[a] == r[b]) (structural)
  Ne,         // r[dst] = Bool(r[a] != r[b])
  Neg,        // r[dst] = -r[a]
  Not,        // r[dst] = not r[a]
  Truthy,     // r[dst] = Bool(truthy(r[a])) (and/or result normalization)
  BoolToInt,  // r[dst] = truthy(r[a]) ? Int 1 : Int 0 (dataflow Cmp nodes)
  JumpIfFalsy,   // if !truthy(r[a]) { r[dst] = Bool(false); pc = b }
  JumpIfTruthy,  // if  truthy(r[a]) { r[dst] = Bool(true);  pc = b }
  Ret,        // return r[a]
};

const char* to_string(OpCode op) noexcept;

struct Instr {
  OpCode op = OpCode::Ret;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
};

/// A compiled expression: flat code, constant pool, and the register/slot
/// footprint the Vm needs. Immutable after compile(); safe to share across
/// threads (each thread brings its own Vm).
struct Chunk {
  std::vector<Instr> code;
  std::vector<Value> consts;
  /// Binder slot names in slot-index order (diagnostics / disassembly; the
  /// code itself refers to slots by index only).
  std::vector<std::string> slot_names;
  std::uint16_t register_count = 0;

  /// Human-readable listing, one instruction per line (tests, DESIGN.md).
  [[nodiscard]] std::string disassemble() const;
};

struct CompileOptions {
  /// Append a BoolToInt before Ret: dataflow Cmp nodes emit Int 1/0 (not
  /// Bool) so cross-model results stay structurally identical.
  bool bool_to_int_result = false;
};

/// Compiles `e` against a fixed slot layout: every Var must name an entry of
/// `slot_names` (its index becomes the LoadSlot operand) — a miss is a
/// compile-time ProgramError, which is strictly earlier than the walker's
/// eval-time error and only reachable through unvalidated expressions.
/// Literal-only subtrees are folded when their evaluation succeeds; throwing
/// subtrees (1/0) are preserved so runtime errors match the walker.
[[nodiscard]] Chunk compile(const ExprPtr& e,
                            std::span<const std::string> slot_names,
                            const CompileOptions& options = {});

/// Executes chunks. Owns a reusable register file so steady-state evaluation
/// allocates nothing; one Vm per thread (engines keep one per worker).
class Vm {
 public:
  /// Runs `chunk` with `slots[i]` bound to slot i (pointers, not copies —
  /// the caller's environment outlives the call). A null slot pointer means
  /// "unbound": referencing it throws the walker's ProgramError, and a slot
  /// the evaluated path never touches may stay null, exactly like lazy
  /// Env::lookup. Value operations throw TypeError as the walker does.
  [[nodiscard]] Value run(const Chunk& chunk,
                          std::span<const Value* const> slots);

  /// Instructions retired by THIS Vm since construction.
  [[nodiscard]] std::uint64_t instrs_executed() const noexcept {
    return instrs_;
  }

 private:
  std::vector<Value> regs_;
  std::uint64_t instrs_ = 0;
};

/// Process-wide count of VM instructions retired (relaxed counter flushed
/// once per Vm::run). Engines report per-run deltas as the
/// `vm.instrs_executed` metric.
[[nodiscard]] std::uint64_t vm_instrs_executed() noexcept;

// ---- Batch backend --------------------------------------------------------
//
// A second, narrower compilation target for CONDITIONS evaluated over whole
// candidate column batches (EvalMode::Batch). compile_batch() translates a
// scalar Chunk into straight-line lane code: the and/or jumps are eliminated
// by evaluating both sides eagerly and joining with AndBool/OrBool (sound
// because batch lanes are all-Int and the only faulting lane ops, Div/Mod by
// a runtime value, abort the whole batch instead of throwing), and the hot
// LoadSlot/LoadConst→op pairs bench_bytecode measures are fused into the
// consuming instruction's operands (Kind::Slot / Kind::Imm), so the typical
// field comparison is ONE instruction per batch instead of three per
// element. Translation refuses (nullopt) anything whose lane semantics could
// diverge from the scalar Vm — non-Int/Bool constants, Neg/arith on Bool,
// division by a literal zero — and the match pipeline then falls back to the
// scalar probe path for that reaction, keeping batch ≡ scalar ≡ AST exact.

/// One fused operand: a (vector or scalar) register, a binder slot, or an
/// immediate folded straight out of the constant pool.
struct BatchOperand {
  enum class Kind : std::uint8_t { Reg, Slot, Imm };
  Kind kind = Kind::Imm;
  /// True when the operand varies per lane (a vector register, or a slot the
  /// caller feeds as a gathered column); false = broadcast scalar.
  bool vec = false;
  std::uint16_t index = 0;  // register or slot index (Kind::Reg / Kind::Slot)
  std::int64_t imm = 0;     // payload for Kind::Imm (Bool constants as 0/1)
};

/// Lane opcodes. Every lane is an int64 (Bool results are 0/1); comparisons
/// go through double exactly like the scalar Vm and value.cpp's compare(),
/// so bitmaps are bit-identical with per-element evaluation — including the
/// >2^53 precision quirks.
enum class BatchOp : std::uint8_t {
  Add, Sub, Mul,
  Div, Mod,   // a zero divisor in ANY lane aborts the batch (scalar fallback)
  Lt, Le, Gt, Ge, Eq, Ne,
  Neg,
  Not,        // lane = (a == 0)
  Truthy,     // lane = (a != 0); also serves BoolToInt (same lane values)
  AndBool, OrBool,  // eager joins of the lowered and/or (0/1 lanes)
  Ret,        // bitmap out: lane != 0
};

struct BatchInstr {
  BatchOp op = BatchOp::Ret;
  std::uint16_t dst = 0;
  bool dst_vec = false;  // result varies per lane (any operand does)
  BatchOperand a;
  BatchOperand b;
};

/// A batch-compiled condition. Immutable after compile_batch(); safe to
/// share across threads (each thread brings its own BatchVm).
struct BatchChunk {
  std::vector<BatchInstr> code;
  std::uint16_t register_count = 0;
  /// slot -> 1 when the code references it; the match pipeline gathers
  /// columns (vector slots) / type-checks bindings (scalar slots) only for
  /// slots the condition actually reads.
  std::vector<std::uint8_t> slot_used;
  /// Loads folded into consuming operands (superinstruction fusion tally).
  std::size_t fused_loads = 0;
};

/// Translates a compiled condition for batch evaluation; `slot_is_vector[i]`
/// marks slots that vary per lane (innermost-pattern binders) as opposed to
/// broadcast scalars bound by the outer patterns. Returns nullopt when the
/// chunk is not batchable (see module note) — callers keep the scalar path.
[[nodiscard]] std::optional<BatchChunk> compile_batch(
    const Chunk& chunk, std::span<const std::uint8_t> slot_is_vector);

/// Executes batch chunks over n lanes. Owns reusable lane buffers so
/// steady-state evaluation allocates nothing; one BatchVm per thread.
class BatchVm {
 public:
  struct SlotInput {
    const std::int64_t* column = nullptr;  // lane data (vector slots)
    std::int64_t scalar = 0;               // broadcast value (scalar slots)
  };

  /// Evaluates `chunk` over lanes 0..n-1; on success `truthy_out[i]` is 1
  /// exactly when the scalar Vm would return a truthy Value on lane i's
  /// bindings. Returns false when any lane divides by zero — the caller must
  /// fall back to the scalar path for the whole batch, which reproduces the
  /// walker's TypeError iff scalar probing actually reaches a faulting lane.
  [[nodiscard]] bool run(const BatchChunk& chunk,
                         std::span<const SlotInput> slots, std::size_t n,
                         std::vector<std::uint8_t>& truthy_out);

 private:
  std::vector<std::vector<std::int64_t>> regs_;
};

/// Process-wide batch-evaluation counters (relaxed; engines report per-run
/// deltas as `vm.batch_evals` and the `vm.batch_width` histogram).
[[nodiscard]] std::uint64_t batch_evals() noexcept;
[[nodiscard]] std::uint64_t batch_lanes() noexcept;
/// Width histogram: counts[b] = evals whose lane count n has bit_width(n)
/// == b, i.e. n in [2^(b-1), 2^b). Widths beyond 2^31 share the last bucket.
inline constexpr std::size_t kBatchWidthBuckets = 33;
[[nodiscard]] std::array<std::uint64_t, kBatchWidthBuckets>
batch_width_counts() noexcept;

}  // namespace gammaflow::expr
