#include "gammaflow/expr/eval.hpp"

namespace gammaflow::expr {

Value apply(BinOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinOp::Add: return add(a, b);
    case BinOp::Sub: return sub(a, b);
    case BinOp::Mul: return mul(a, b);
    case BinOp::Div: return div(a, b);
    case BinOp::Mod: return mod(a, b);
    case BinOp::Lt: return cmp_lt(a, b);
    case BinOp::Le: return cmp_le(a, b);
    case BinOp::Gt: return cmp_gt(a, b);
    case BinOp::Ge: return cmp_ge(a, b);
    case BinOp::Eq: return cmp_eq(a, b);
    case BinOp::Ne: return cmp_ne(a, b);
    case BinOp::And: return logic_and(a, b);
    case BinOp::Or: return logic_or(a, b);
  }
  throw TypeError("unknown binary operator");
}

Value apply(UnOp op, const Value& a) {
  switch (op) {
    case UnOp::Neg: return neg(a);
    case UnOp::Not: return logic_not(a);
  }
  throw TypeError("unknown unary operator");
}

Value eval(const Expr& e, const Env& env) {
  switch (e.kind()) {
    case Expr::Kind::Literal:
      return e.literal();
    case Expr::Kind::Var:
      return env.lookup(e.var());
    case Expr::Kind::Unary:
      return apply(e.un_op(), eval(*e.operand(), env));
    case Expr::Kind::Binary: {
      // Short-circuit logic: the paper's conditions use `or` over label
      // alternatives where the right side may reference the same vars, but
      // short-circuiting also avoids spurious TypeErrors on partial data.
      if (e.bin_op() == BinOp::And) {
        return eval(*e.lhs(), env).truthy() ? Value(eval(*e.rhs(), env).truthy())
                                            : Value(false);
      }
      if (e.bin_op() == BinOp::Or) {
        return eval(*e.lhs(), env).truthy() ? Value(true)
                                            : Value(eval(*e.rhs(), env).truthy());
      }
      // Operands evaluate left-to-right, explicitly sequenced: inside an
      // apply() call the order would be unspecified, and WHICH side's error
      // surfaces from a double-faulting expression must not depend on the
      // compiler (the bytecode Vm is defined to match this order exactly).
      {
        const Value a = eval(*e.lhs(), env);
        const Value b = eval(*e.rhs(), env);
        return apply(e.bin_op(), a, b);
      }
    }
  }
  throw TypeError("unknown expression kind");
}

}  // namespace gammaflow::expr
