#include "gammaflow/expr/parser.hpp"

namespace gammaflow::expr {

const Token& TokenStream::expect(TokenKind kind) {
  if (!at(kind)) {
    const Token& t = peek();
    throw ParseError(std::string("expected ") + to_string(kind) + ", found " +
                         to_string(t.kind) +
                         (t.text.empty() ? "" : " '" + t.text + "'"),
                     t.line, t.column);
  }
  return advance();
}

namespace {

ExprPtr parse_or(TokenStream& ts);

ExprPtr parse_primary(TokenStream& ts) {
  const Token& t = ts.peek();
  switch (t.kind) {
    case TokenKind::IntLit:
    case TokenKind::RealLit:
    case TokenKind::StrLit:
    case TokenKind::KwTrue:
    case TokenKind::KwFalse:
      ts.advance();
      return Expr::lit(t.value);
    case TokenKind::KwNil:
      ts.advance();
      return Expr::lit(Value());
    case TokenKind::Ident:
      ts.advance();
      return Expr::var(t.text);
    case TokenKind::LParen: {
      ts.advance();
      ExprPtr inner = parse_or(ts);
      ts.expect(TokenKind::RParen);
      return inner;
    }
    default:
      throw ParseError(std::string("expected expression, found ") +
                           to_string(t.kind) +
                           (t.text.empty() ? "" : " '" + t.text + "'"),
                       t.line, t.column);
  }
}

ExprPtr parse_unary(TokenStream& ts) {
  if (ts.accept(TokenKind::Minus)) {
    return Expr::unary(UnOp::Neg, parse_unary(ts));
  }
  if (ts.accept(TokenKind::KwNot)) {
    return Expr::unary(UnOp::Not, parse_unary(ts));
  }
  return parse_primary(ts);
}

ExprPtr parse_term(TokenStream& ts) {
  ExprPtr lhs = parse_unary(ts);
  while (true) {
    BinOp op;
    if (ts.at(TokenKind::Star)) op = BinOp::Mul;
    else if (ts.at(TokenKind::Slash)) op = BinOp::Div;
    else if (ts.at(TokenKind::Percent)) op = BinOp::Mod;
    else break;
    ts.advance();
    lhs = Expr::binary(op, std::move(lhs), parse_unary(ts));
  }
  return lhs;
}

ExprPtr parse_additive(TokenStream& ts) {
  ExprPtr lhs = parse_term(ts);
  while (true) {
    BinOp op;
    if (ts.at(TokenKind::Plus)) op = BinOp::Add;
    else if (ts.at(TokenKind::Minus)) op = BinOp::Sub;
    else break;
    ts.advance();
    lhs = Expr::binary(op, std::move(lhs), parse_term(ts));
  }
  return lhs;
}

ExprPtr parse_comparison(TokenStream& ts) {
  ExprPtr lhs = parse_additive(ts);
  // Non-associative (a < b < c is rejected as a type error later, but we
  // still parse left-to-right like most languages).
  while (true) {
    BinOp op;
    switch (ts.peek().kind) {
      case TokenKind::Lt: op = BinOp::Lt; break;
      case TokenKind::Le: op = BinOp::Le; break;
      case TokenKind::Gt: op = BinOp::Gt; break;
      case TokenKind::Ge: op = BinOp::Ge; break;
      case TokenKind::EqEq: op = BinOp::Eq; break;
      case TokenKind::Ne: op = BinOp::Ne; break;
      default: return lhs;
    }
    ts.advance();
    lhs = Expr::binary(op, std::move(lhs), parse_additive(ts));
  }
}

ExprPtr parse_and(TokenStream& ts) {
  ExprPtr lhs = parse_comparison(ts);
  while (ts.accept(TokenKind::KwAnd)) {
    lhs = Expr::binary(BinOp::And, std::move(lhs), parse_comparison(ts));
  }
  return lhs;
}

ExprPtr parse_or(TokenStream& ts) {
  ExprPtr lhs = parse_and(ts);
  while (ts.accept(TokenKind::KwOr)) {
    lhs = Expr::binary(BinOp::Or, std::move(lhs), parse_and(ts));
  }
  return lhs;
}

}  // namespace

ExprPtr parse_expression(TokenStream& ts) { return parse_or(ts); }

ExprPtr parse_expression(std::string_view source) {
  TokenStream ts(tokenize(source));
  ExprPtr e = parse_expression(ts);
  if (!ts.done()) {
    const Token& t = ts.peek();
    throw ParseError("trailing input after expression: '" + t.text + "'",
                     t.line, t.column);
  }
  return e;
}

}  // namespace gammaflow::expr
