// Expression IR shared between the two models. Gamma reaction conditions and
// by-list outputs are expressions over the replace-list variables (id1, id2,
// tag variable v, ...); Algorithm 2 walks these trees to emit dataflow
// arithmetic/comparison nodes, and Algorithm 1 emits reactions whose bodies
// are these trees. Nodes are immutable and shared via ExprPtr.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gammaflow/common/value.hpp"

namespace gammaflow::expr {

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

enum class UnOp : std::uint8_t { Neg, Not };

/// Operator surface spelling ("+", "<=", "and", ...), as the DSL prints it.
const char* to_string(BinOp op) noexcept;
const char* to_string(UnOp op) noexcept;

[[nodiscard]] bool is_arithmetic(BinOp op) noexcept;  // Add..Mod
[[nodiscard]] bool is_comparison(BinOp op) noexcept;  // Lt..Ne
[[nodiscard]] bool is_logical(BinOp op) noexcept;     // And, Or

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind : std::uint8_t { Literal, Var, Unary, Binary };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  // Literal
  [[nodiscard]] const Value& literal() const noexcept { return literal_; }
  // Var
  [[nodiscard]] const std::string& var() const noexcept { return name_; }
  // Unary
  [[nodiscard]] UnOp un_op() const noexcept { return un_op_; }
  [[nodiscard]] const ExprPtr& operand() const noexcept { return lhs_; }
  // Binary
  [[nodiscard]] BinOp bin_op() const noexcept { return bin_op_; }
  [[nodiscard]] const ExprPtr& lhs() const noexcept { return lhs_; }
  [[nodiscard]] const ExprPtr& rhs() const noexcept { return rhs_; }

  /// Precedence-aware rendering that re-parses to an equal tree.
  [[nodiscard]] std::string to_string() const;

  /// All distinct variable names referenced, sorted.
  [[nodiscard]] std::set<std::string> free_vars() const;

  /// Number of nodes in the tree (bench sizing, fusion cost model).
  [[nodiscard]] std::size_t size() const noexcept;

  // Factories (the only way to build nodes).
  static ExprPtr lit(Value v);
  static ExprPtr var(std::string name);
  static ExprPtr unary(UnOp op, ExprPtr operand);
  static ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);

 private:
  Expr() = default;

  Kind kind_ = Kind::Literal;
  UnOp un_op_ = UnOp::Neg;
  BinOp bin_op_ = BinOp::Add;
  Value literal_;
  std::string name_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Structural equality (same shape, ops, literals, and names).
[[nodiscard]] bool equal(const ExprPtr& a, const ExprPtr& b) noexcept;

/// Convenience builders for tests and generators.
inline ExprPtr lit(Value v) { return Expr::lit(std::move(v)); }
inline ExprPtr var(std::string name) { return Expr::var(std::move(name)); }
inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return Expr::binary(BinOp::Add, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return Expr::binary(BinOp::Sub, std::move(a), std::move(b));
}
inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return Expr::binary(BinOp::Mul, std::move(a), std::move(b));
}
inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return Expr::binary(BinOp::Div, std::move(a), std::move(b));
}

}  // namespace gammaflow::expr
