// Constant folding + algebraic identity simplification. Used by the
// reduction pass (§III-A3): fusing reactions substitutes producer expressions
// into consumer bodies, and simplify() keeps the fused trees small.
#pragma once

#include <optional>

#include "gammaflow/expr/ast.hpp"
#include "gammaflow/expr/env.hpp"

namespace gammaflow::expr {

/// Folds constant subtrees (evaluating them) and applies safe identities
/// (x+0, x*1, x*0 when x is pure, true and e, ...). Never changes semantics:
/// subtrees that would throw at runtime (e.g. 1/0) are left intact.
[[nodiscard]] ExprPtr simplify(const ExprPtr& e);

/// Substitutes variables by expressions: every Var named in `subst` is
/// replaced by the bound tree. Used by reaction fusion.
[[nodiscard]] ExprPtr substitute(
    const ExprPtr& e,
    const std::vector<std::pair<std::string, ExprPtr>>& subst);

/// Truth value of `e` when it provably folds to a constant under simplify():
/// true/false for a literal with defined truthiness, nullopt otherwise
/// (free variables, or a literal whose truthiness would throw at runtime).
/// The optimizer's dead-reaction check and the constant-condition lint both
/// key off this.
[[nodiscard]] std::optional<bool> constant_truth(const ExprPtr& e);

}  // namespace gammaflow::expr
