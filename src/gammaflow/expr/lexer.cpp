#include "gammaflow/expr/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace gammaflow::expr {

const char* to_string(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::End: return "<end>";
    case TokenKind::Ident: return "identifier";
    case TokenKind::IntLit: return "integer";
    case TokenKind::RealLit: return "real";
    case TokenKind::StrLit: return "string";
    case TokenKind::KwReplace: return "'replace'";
    case TokenKind::KwBy: return "'by'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwWhere: return "'where'";
    case TokenKind::KwAnd: return "'and'";
    case TokenKind::KwOr: return "'or'";
    case TokenKind::KwNot: return "'not'";
    case TokenKind::KwTrue: return "'true'";
    case TokenKind::KwFalse: return "'false'";
    case TokenKind::KwNil: return "'nil'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::Ne: return "'!='";
    case TokenKind::Assign: return "'='";
    case TokenKind::Comma: return "','";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwOutput: return "'output'";
    case TokenKind::KwVar: return "'var'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::PlusPlus: return "'++'";
    case TokenKind::MinusMinus: return "'--'";
    case TokenKind::PlusEq: return "'+='";
    case TokenKind::MinusEq: return "'-='";
  }
  return "?";
}

namespace {

std::string lowercase(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

TokenKind keyword_kind(std::string_view ident, LexMode mode) {
  static const std::unordered_map<std::string, TokenKind> kKeywords = {
      {"replace", TokenKind::KwReplace}, {"by", TokenKind::KwBy},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"where", TokenKind::KwWhere},     {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},           {"not", TokenKind::KwNot},
      {"true", TokenKind::KwTrue},       {"false", TokenKind::KwFalse},
      {"nil", TokenKind::KwNil},
  };
  // The frontend's keywords; type words are interchangeable with 'var'.
  static const std::unordered_map<std::string, TokenKind> kImperative = {
      {"for", TokenKind::KwFor},   {"while", TokenKind::KwWhile},
      {"output", TokenKind::KwOutput},
      {"var", TokenKind::KwVar},   {"int", TokenKind::KwVar},
      {"real", TokenKind::KwVar},  {"bool", TokenKind::KwVar},
  };
  const std::string lower = lowercase(ident);
  if (mode == LexMode::Imperative) {
    if (auto it = kImperative.find(lower); it != kImperative.end()) {
      return it->second;
    }
  }
  auto it = kKeywords.find(lower);
  return it == kKeywords.end() ? TokenKind::Ident : it->second;
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool done() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() noexcept {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source, LexMode mode) {
  const bool imperative = mode == LexMode::Imperative;
  std::vector<Token> tokens;
  Cursor cur(source);

  auto push = [&](TokenKind kind, std::string text, Value value, int line,
                  int column) {
    tokens.push_back(Token{kind, std::move(text), std::move(value), line, column});
  };

  while (!cur.done()) {
    const int line = cur.line();
    const int column = cur.column();
    const char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    if (c == '#' || (imperative && c == '/' && cur.peek(1) == '/')) {
      while (!cur.done() && cur.peek() != '\n') cur.advance();  // line comment
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (!cur.done() && (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                             cur.peek() == '_')) {
        ident += cur.advance();
      }
      const TokenKind kind = keyword_kind(ident, mode);
      Value value;
      if (kind == TokenKind::KwTrue) value = Value(true);
      if (kind == TokenKind::KwFalse) value = Value(false);
      push(kind, std::move(ident), std::move(value), line, column);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      bool is_real = false;
      while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek()))) {
        digits += cur.advance();
      }
      if (cur.peek() == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1)))) {
        is_real = true;
        digits += cur.advance();
        while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek()))) {
          digits += cur.advance();
        }
      }
      if (cur.peek() == 'e' || cur.peek() == 'E') {
        const char sign = cur.peek(1);
        const char first = (sign == '+' || sign == '-') ? cur.peek(2) : sign;
        if (std::isdigit(static_cast<unsigned char>(first))) {
          is_real = true;
          digits += cur.advance();  // e
          if (sign == '+' || sign == '-') digits += cur.advance();
          while (!cur.done() && std::isdigit(static_cast<unsigned char>(cur.peek()))) {
            digits += cur.advance();
          }
        }
      }
      if (is_real) {
        push(TokenKind::RealLit, digits, Value(std::stod(digits)), line, column);
      } else {
        std::int64_t v = 0;
        const auto [ptr, ec] =
            std::from_chars(digits.data(), digits.data() + digits.size(), v);
        if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
          throw ParseError("integer literal out of range: " + digits, line, column);
        }
        push(TokenKind::IntLit, digits, Value(v), line, column);
      }
      continue;
    }
    if (c == '\'') {
      cur.advance();
      std::string text;
      while (!cur.done() && cur.peek() != '\'') {
        if (cur.peek() == '\n') {
          throw ParseError("unterminated string literal", line, column);
        }
        text += cur.advance();
      }
      if (cur.done()) throw ParseError("unterminated string literal", line, column);
      cur.advance();  // closing quote
      push(TokenKind::StrLit, text, Value(text), line, column);
      continue;
    }

    cur.advance();
    switch (c) {
      case '+':
        if (imperative && cur.peek() == '+') {
          cur.advance();
          push(TokenKind::PlusPlus, "++", {}, line, column);
        } else if (imperative && cur.peek() == '=') {
          cur.advance();
          push(TokenKind::PlusEq, "+=", {}, line, column);
        } else {
          push(TokenKind::Plus, "+", {}, line, column);
        }
        break;
      case '-':
        if (imperative && cur.peek() == '-') {
          cur.advance();
          push(TokenKind::MinusMinus, "--", {}, line, column);
        } else if (imperative && cur.peek() == '=') {
          cur.advance();
          push(TokenKind::MinusEq, "-=", {}, line, column);
        } else {
          push(TokenKind::Minus, "-", {}, line, column);
        }
        break;
      case '{':
        if (!imperative) {
          throw ParseError("unexpected '{'", line, column);
        }
        push(TokenKind::LBrace, "{", {}, line, column);
        break;
      case '}':
        if (!imperative) {
          throw ParseError("unexpected '}'", line, column);
        }
        push(TokenKind::RBrace, "}", {}, line, column);
        break;
      case '*': push(TokenKind::Star, "*", {}, line, column); break;
      case '/': push(TokenKind::Slash, "/", {}, line, column); break;
      case '%': push(TokenKind::Percent, "%", {}, line, column); break;
      case ',': push(TokenKind::Comma, ",", {}, line, column); break;
      case '[': push(TokenKind::LBracket, "[", {}, line, column); break;
      case ']': push(TokenKind::RBracket, "]", {}, line, column); break;
      case '(': push(TokenKind::LParen, "(", {}, line, column); break;
      case ')': push(TokenKind::RParen, ")", {}, line, column); break;
      case '|': push(TokenKind::Pipe, "|", {}, line, column); break;
      case ';': push(TokenKind::Semicolon, ";", {}, line, column); break;
      case '<':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Le, "<=", {}, line, column);
        } else {
          push(TokenKind::Lt, "<", {}, line, column);
        }
        break;
      case '>':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Ge, ">=", {}, line, column);
        } else {
          push(TokenKind::Gt, ">", {}, line, column);
        }
        break;
      case '=':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::EqEq, "==", {}, line, column);
        } else {
          push(TokenKind::Assign, "=", {}, line, column);
        }
        break;
      case '!':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::Ne, "!=", {}, line, column);
        } else {
          throw ParseError("unexpected '!'", line, column);
        }
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line,
                         column);
    }
  }

  tokens.push_back(Token{TokenKind::End, "", {}, cur.line(), cur.column()});
  return tokens;
}

}  // namespace gammaflow::expr
