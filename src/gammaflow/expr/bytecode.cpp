#include "gammaflow/expr/bytecode.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "gammaflow/common/error.hpp"
#include "gammaflow/expr/eval.hpp"

namespace gammaflow::expr {

namespace {

std::atomic<std::uint64_t> g_vm_instrs{0};

constexpr std::size_t kOperandLimit =
    std::numeric_limits<std::uint16_t>::max();

OpCode opcode_for(BinOp op) {
  switch (op) {
    case BinOp::Add: return OpCode::Add;
    case BinOp::Sub: return OpCode::Sub;
    case BinOp::Mul: return OpCode::Mul;
    case BinOp::Div: return OpCode::Div;
    case BinOp::Mod: return OpCode::Mod;
    case BinOp::Lt: return OpCode::Lt;
    case BinOp::Le: return OpCode::Le;
    case BinOp::Gt: return OpCode::Gt;
    case BinOp::Ge: return OpCode::Ge;
    case BinOp::Eq: return OpCode::Eq;
    case BinOp::Ne: return OpCode::Ne;
    case BinOp::And:
    case BinOp::Or: break;  // lowered to jumps, never a direct opcode
  }
  throw ProgramError("bytecode: operator has no direct opcode");
}

/// Evaluates a variable-free subtree exactly as the walker would, including
/// short-circuit logic: `lhs and rhs` folds to false when lhs folds falsy
/// even if rhs references variables or would throw — the walker never
/// evaluates rhs in that case either. Returns nullopt (no fold) whenever
/// evaluation would throw, preserving the runtime error for the Vm.
std::optional<Value> fold(const Expr& e) {
  try {
    switch (e.kind()) {
      case Expr::Kind::Literal:
        return e.literal();
      case Expr::Kind::Var:
        return std::nullopt;
      case Expr::Kind::Unary: {
        auto a = fold(*e.operand());
        if (!a) return std::nullopt;
        return apply(e.un_op(), *a);
      }
      case Expr::Kind::Binary: {
        auto a = fold(*e.lhs());
        if (!a) return std::nullopt;
        if (e.bin_op() == BinOp::And) {
          if (!a->truthy()) return Value(false);
          auto b = fold(*e.rhs());
          if (!b) return std::nullopt;
          return Value(b->truthy());
        }
        if (e.bin_op() == BinOp::Or) {
          if (a->truthy()) return Value(true);
          auto b = fold(*e.rhs());
          if (!b) return std::nullopt;
          return Value(b->truthy());
        }
        auto b = fold(*e.rhs());
        if (!b) return std::nullopt;
        return apply(e.bin_op(), *a, *b);
      }
    }
  } catch (const Error&) {
    return std::nullopt;
  }
  return std::nullopt;
}

class Compiler {
 public:
  explicit Compiler(std::span<const std::string> slot_names)
      : slots_(slot_names) {}

  Chunk compile(const ExprPtr& e, const CompileOptions& options) {
    if (!e) throw ProgramError("bytecode: cannot compile a null expression");
    const std::uint16_t result = emit(*e, 0);
    if (options.bool_to_int_result) {
      push({OpCode::BoolToInt, result, result, 0});
    }
    push({OpCode::Ret, 0, result, 0});
    chunk_.slot_names.assign(slots_.begin(), slots_.end());
    return std::move(chunk_);
  }

 private:
  /// Emits code leaving the result in register `dst`; returns `dst`.
  /// Register discipline: a binary node evaluates lhs into dst and rhs into
  /// dst+1, so live registers form a stack and the high-water mark equals
  /// the tree's right-spine depth.
  std::uint16_t emit(const Expr& e, std::uint16_t dst) {
    reserve(dst);
    if (e.kind() != Expr::Kind::Literal) {
      if (auto v = fold(e)) {
        push({OpCode::LoadConst, dst, intern(*std::move(v)), 0});
        return dst;
      }
    }
    switch (e.kind()) {
      case Expr::Kind::Literal:
        push({OpCode::LoadConst, dst, intern(e.literal()), 0});
        return dst;
      case Expr::Kind::Var:
        push({OpCode::LoadSlot, dst, slot_of(e.var()), 0});
        return dst;
      case Expr::Kind::Unary: {
        emit(*e.operand(), dst);
        push({e.un_op() == UnOp::Neg ? OpCode::Neg : OpCode::Not, dst, dst, 0});
        return dst;
      }
      case Expr::Kind::Binary: {
        if (e.bin_op() == BinOp::And || e.bin_op() == BinOp::Or) {
          // `a and b` == truthy(a) ? Bool(truthy(b)) : Bool(false); the jump
          // writes the short-circuit constant into dst itself, so no merge
          // move is needed.
          const OpCode jump = e.bin_op() == BinOp::And ? OpCode::JumpIfFalsy
                                                       : OpCode::JumpIfTruthy;
          emit(*e.lhs(), dst);
          const std::size_t patch = chunk_.code.size();
          push({jump, dst, dst, 0});
          emit(*e.rhs(), dst);
          push({OpCode::Truthy, dst, dst, 0});
          chunk_.code[patch].b = checked_u16(chunk_.code.size(),
                                             "bytecode: jump target");
          return dst;
        }
        emit(*e.lhs(), dst);
        const std::uint16_t rhs =
            checked_u16(std::size_t{dst} + 1, "bytecode: expression too deep");
        emit(*e.rhs(), rhs);
        push({opcode_for(e.bin_op()), dst, dst, rhs});
        return dst;
      }
    }
    throw ProgramError("bytecode: unknown expression kind");
  }

  std::uint16_t slot_of(const std::string& name) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] == name) {
        return checked_u16(i, "bytecode: slot index");
      }
    }
    throw ProgramError("unbound variable '" + name + "' (not a binder slot)");
  }

  std::uint16_t intern(Value v) {
    for (std::size_t i = 0; i < chunk_.consts.size(); ++i) {
      if (chunk_.consts[i] == v) {
        return checked_u16(i, "bytecode: constant index");
      }
    }
    chunk_.consts.push_back(std::move(v));
    return checked_u16(chunk_.consts.size() - 1, "bytecode: constant pool");
  }

  void reserve(std::uint16_t reg) {
    if (std::size_t{reg} + 1 > chunk_.register_count) {
      chunk_.register_count = static_cast<std::uint16_t>(reg + 1);
    }
  }

  void push(Instr in) { chunk_.code.push_back(in); }

  static std::uint16_t checked_u16(std::size_t v, const char* what) {
    if (v > kOperandLimit) throw ProgramError(std::string(what) + " overflow");
    return static_cast<std::uint16_t>(v);
  }

  std::span<const std::string> slots_;
  Chunk chunk_;
};

/// Inline truthiness for the jump/normalization opcodes; falls back to
/// Value::truthy() (out-of-line) only to raise its exact TypeError.
inline bool fast_truthy(const Value& v) {
  if (const bool* b = v.if_bool()) return *b;
  if (const std::int64_t* i = v.if_int()) return *i != 0;
  return v.truthy();  // throws; never returns
}

}  // namespace

const char* to_string(EvalMode mode) noexcept {
  switch (mode) {
    case EvalMode::Ast: return "ast";
    case EvalMode::Vm: return "vm";
    case EvalMode::Batch: return "batch";
  }
  return "?";
}

const char* to_string(OpCode op) noexcept {
  switch (op) {
    case OpCode::LoadConst: return "loadconst";
    case OpCode::LoadSlot: return "loadslot";
    case OpCode::Add: return "add";
    case OpCode::Sub: return "sub";
    case OpCode::Mul: return "mul";
    case OpCode::Div: return "div";
    case OpCode::Mod: return "mod";
    case OpCode::Lt: return "lt";
    case OpCode::Le: return "le";
    case OpCode::Gt: return "gt";
    case OpCode::Ge: return "ge";
    case OpCode::Eq: return "eq";
    case OpCode::Ne: return "ne";
    case OpCode::Neg: return "neg";
    case OpCode::Not: return "not";
    case OpCode::Truthy: return "truthy";
    case OpCode::BoolToInt: return "booltoint";
    case OpCode::JumpIfFalsy: return "jumpiffalsy";
    case OpCode::JumpIfTruthy: return "jumpiftruthy";
    case OpCode::Ret: return "ret";
  }
  return "?";
}

std::string Chunk::disassemble() const {
  std::ostringstream os;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    os << pc << ": " << to_string(in.op);
    switch (in.op) {
      case OpCode::LoadConst:
        os << " r" << in.dst << ", " << consts[in.a];
        break;
      case OpCode::LoadSlot:
        os << " r" << in.dst << ", s" << in.a;
        if (in.a < slot_names.size()) os << " (" << slot_names[in.a] << ")";
        break;
      case OpCode::Neg:
      case OpCode::Not:
      case OpCode::Truthy:
      case OpCode::BoolToInt:
        os << " r" << in.dst << ", r" << in.a;
        break;
      case OpCode::JumpIfFalsy:
      case OpCode::JumpIfTruthy:
        os << " r" << in.a << ", ->" << in.b << " (r" << in.dst << ")";
        break;
      case OpCode::Ret:
        os << " r" << in.a;
        break;
      default:
        os << " r" << in.dst << ", r" << in.a << ", r" << in.b;
        break;
    }
    os << '\n';
  }
  return os.str();
}

Chunk compile(const ExprPtr& e, std::span<const std::string> slot_names,
              const CompileOptions& options) {
  return Compiler(slot_names).compile(e, options);
}

Value Vm::run(const Chunk& chunk, std::span<const Value* const> slots) {
  if (regs_.size() < chunk.register_count) regs_.resize(chunk.register_count);
  const Instr* code = chunk.code.data();
  std::size_t pc = 0;
  std::uint64_t retired = 0;
  // Flush the instruction count even when a value op throws (TypeError on
  // mixed kinds), so metrics stay honest on failing conditions.
  struct Flush {
    Vm* vm;
    const std::uint64_t* n;
    ~Flush() {
      vm->instrs_ += *n;
      g_vm_instrs.fetch_add(*n, std::memory_order_relaxed);
    }
  } flush{this, &retired};
  for (;;) {
    const Instr& in = code[pc];
    ++retired;
    switch (in.op) {
      case OpCode::LoadConst:
        regs_[in.dst] = chunk.consts[in.a];
        ++pc;
        break;
      case OpCode::LoadSlot: {
        const Value* slot = slots[in.a];
        if (slot == nullptr) {
          // Matches Env::lookup: the walker only throws when the variable is
          // actually referenced on the evaluated path, and so do we.
          throw ProgramError("unbound variable '" + chunk.slot_names[in.a] +
                             "'");
        }
        regs_[in.dst] = *slot;
        ++pc;
        break;
      }
      // Binary value ops: an inline Int×Int fast path (the dominant case in
      // reaction conditions) with a fall-through to the checked helpers in
      // value.cpp for every other kind combination — promotion, string
      // concat, and the exact TypeError texts all come from the same single
      // source of truth as the walker. Comparisons intentionally go through
      // double like value.cpp's compare() so results are bit-identical.
      case OpCode::Add: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] = (xi && yi) ? Value(*xi + *yi) : add(x, y);
        ++pc;
        break;
      }
      case OpCode::Sub: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] = (xi && yi) ? Value(*xi - *yi) : sub(x, y);
        ++pc;
        break;
      }
      case OpCode::Mul: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] = (xi && yi) ? Value(*xi * *yi) : mul(x, y);
        ++pc;
        break;
      }
      case OpCode::Div: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi && *yi != 0) ? Value(*xi / *yi) : div(x, y);
        ++pc;
        break;
      }
      case OpCode::Mod: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi && *yi != 0) ? Value(*xi % *yi) : mod(x, y);
        ++pc;
        break;
      }
      case OpCode::Lt: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) < static_cast<double>(*yi))
                : cmp_lt(x, y);
        ++pc;
        break;
      }
      case OpCode::Le: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) <= static_cast<double>(*yi))
                : cmp_le(x, y);
        ++pc;
        break;
      }
      case OpCode::Gt: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) > static_cast<double>(*yi))
                : cmp_gt(x, y);
        ++pc;
        break;
      }
      case OpCode::Ge: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) >= static_cast<double>(*yi))
                : cmp_ge(x, y);
        ++pc;
        break;
      }
      case OpCode::Eq: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) == static_cast<double>(*yi))
                : cmp_eq(x, y);
        ++pc;
        break;
      }
      case OpCode::Ne: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) != static_cast<double>(*yi))
                : cmp_ne(x, y);
        ++pc;
        break;
      }
      case OpCode::Neg: {
        const Value& x = regs_[in.a];
        const std::int64_t* xi = x.if_int();
        regs_[in.dst] = xi ? Value(-*xi) : neg(x);
        ++pc;
        break;
      }
      case OpCode::Not:
        regs_[in.dst] = Value(!fast_truthy(regs_[in.a]));
        ++pc;
        break;
      case OpCode::Truthy:
        regs_[in.dst] = Value(fast_truthy(regs_[in.a]));
        ++pc;
        break;
      case OpCode::BoolToInt:
        regs_[in.dst] = Value(fast_truthy(regs_[in.a]) ? 1 : 0);
        ++pc;
        break;
      case OpCode::JumpIfFalsy:
        if (!fast_truthy(regs_[in.a])) {
          regs_[in.dst] = Value(false);
          pc = in.b;
        } else {
          ++pc;
        }
        break;
      case OpCode::JumpIfTruthy:
        if (fast_truthy(regs_[in.a])) {
          regs_[in.dst] = Value(true);
          pc = in.b;
        } else {
          ++pc;
        }
        break;
      case OpCode::Ret:
        return std::move(regs_[in.a]);
    }
  }
}

std::uint64_t vm_instrs_executed() noexcept {
  return g_vm_instrs.load(std::memory_order_relaxed);
}

// ---- Batch backend --------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_batch_evals{0};
std::atomic<std::uint64_t> g_batch_lanes{0};
std::array<std::atomic<std::uint64_t>, kBatchWidthBuckets> g_batch_width{};

/// One-pass translator from scalar chunks to batch lane code. Walks the
/// scalar instruction stream keeping, per register, what it currently holds:
/// a PENDING load (a slot/constant not yet materialized — the fusion source:
/// the consuming instruction takes it as an operand instead), or a computed
/// value with a static kind (Int or Bool lanes). The and/or jumps become
/// eager joins: at the jump we snapshot truthy(lhs) into a fresh temp
/// register and push a fixup; when translation reaches the jump target the
/// rhs value is sitting in the same register, and we emit AndBool/OrBool
/// over temp and register — exactly the Bool the scalar Vm leaves there on
/// either path. Anything outside the Int/Bool lane model refuses.
class BatchCompiler {
 public:
  BatchCompiler(const Chunk& chunk, std::span<const std::uint8_t> slot_is_vector)
      : chunk_(chunk), slot_vec_(slot_is_vector) {}

  std::optional<BatchChunk> translate() {
    regs_.assign(chunk_.register_count, RegState{});
    next_reg_ = chunk_.register_count;
    out_.slot_used.assign(slot_vec_.size(), 0);
    for (std::size_t pc = 0; pc < chunk_.code.size() && !done_; ++pc) {
      while (!joins_.empty() && joins_.back().target == pc) {
        const Join j = joins_.back();
        joins_.pop_back();
        const BatchOperand lhs = reg_operand(j.temp);
        const BatchOperand rhs = operand(j.reg);
        emit(j.is_and ? BatchOp::AndBool : BatchOp::OrBool, j.reg, lhs, rhs);
        set(j.reg, RegState::Kind::Bool, lhs.vec || rhs.vec);
      }
      if (!step(chunk_.code[pc])) return std::nullopt;
    }
    if (!done_ || !joins_.empty()) return std::nullopt;  // malformed chunk
    out_.register_count = next_reg_;
    return std::move(out_);
  }

 private:
  struct RegState {
    enum class Kind : std::uint8_t { None, Int, Bool };
    Kind kind = Kind::None;
    bool vec = false;
    bool pending = false;  // value is exactly `load`; nothing emitted yet
    BatchOperand load{};
  };
  struct Join {
    std::size_t target;
    std::uint16_t reg;
    std::uint16_t temp;
    bool is_and;
  };
  using Kind = RegState::Kind;

  bool step(const Instr& in) {
    switch (in.op) {
      case OpCode::LoadConst: {
        const Value& v = chunk_.consts[in.a];
        if (const std::int64_t* i = v.if_int()) {
          set_pending(in.dst, Kind::Int,
                      BatchOperand{BatchOperand::Kind::Imm, false, 0, *i});
          return true;
        }
        if (const bool* b = v.if_bool()) {
          set_pending(in.dst, Kind::Bool,
                      BatchOperand{BatchOperand::Kind::Imm, false, 0,
                                   *b ? std::int64_t{1} : std::int64_t{0}});
          return true;
        }
        return false;  // Real/Str/Nil constants: lanes are int64 only
      }
      case OpCode::LoadSlot: {
        if (in.a >= slot_vec_.size()) return false;
        out_.slot_used[in.a] = 1;
        set_pending(in.dst, Kind::Int,
                    BatchOperand{BatchOperand::Kind::Slot,
                                 slot_vec_[in.a] != 0, in.a, 0});
        return true;
      }
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::Mul: {
        if (kind(in.a) != Kind::Int || kind(in.b) != Kind::Int) return false;
        return binary(arith_op(in.op), in, Kind::Int);
      }
      case OpCode::Div:
      case OpCode::Mod: {
        if (kind(in.a) != Kind::Int || kind(in.b) != Kind::Int) return false;
        const BatchOperand b = operand(in.b);
        // A literal zero divisor is a guaranteed TypeError on the evaluated
        // path — only the scalar evaluators raise it with the right text.
        if (b.kind == BatchOperand::Kind::Imm && b.imm == 0) return false;
        const BatchOperand a = operand(in.a);
        emit(in.op == OpCode::Div ? BatchOp::Div : BatchOp::Mod, in.dst, a, b);
        set(in.dst, Kind::Int, a.vec || b.vec);
        return true;
      }
      case OpCode::Lt:
      case OpCode::Le:
      case OpCode::Gt:
      case OpCode::Ge:
      case OpCode::Eq:
      case OpCode::Ne: {
        if (kind(in.a) != Kind::Int || kind(in.b) != Kind::Int) return false;
        return binary(cmp_op(in.op), in, Kind::Bool);
      }
      case OpCode::Neg: {
        if (kind(in.a) != Kind::Int) return false;
        const BatchOperand a = operand(in.a);
        emit(BatchOp::Neg, in.dst, a, BatchOperand{});
        set(in.dst, Kind::Int, a.vec);
        return true;
      }
      case OpCode::Not:
      case OpCode::Truthy:
      case OpCode::BoolToInt: {
        if (kind(in.a) == Kind::None) return false;
        const BatchOperand a = operand(in.a);
        emit(in.op == OpCode::Not ? BatchOp::Not : BatchOp::Truthy, in.dst, a,
             BatchOperand{});
        set(in.dst, in.op == OpCode::BoolToInt ? Kind::Int : Kind::Bool,
            a.vec);
        return true;
      }
      case OpCode::JumpIfFalsy:
      case OpCode::JumpIfTruthy: {
        if (in.dst != in.a) return false;  // compiler invariant; be safe
        if (kind(in.a) == Kind::None) return false;
        if (next_reg_ == kOperandLimit) return false;
        const std::uint16_t temp = next_reg_++;
        regs_.push_back(RegState{});
        const BatchOperand a = operand(in.a);
        emit(BatchOp::Truthy, temp, a, BatchOperand{});
        set(temp, Kind::Bool, a.vec);
        joins_.push_back(
            Join{in.b, in.a, temp, in.op == OpCode::JumpIfFalsy});
        return true;
      }
      case OpCode::Ret: {
        if (kind(in.a) == Kind::None) return false;
        emit(BatchOp::Ret, 0, operand(in.a), BatchOperand{});
        done_ = true;
        return true;
      }
    }
    return false;
  }

  bool binary(BatchOp op, const Instr& in, Kind result) {
    const BatchOperand a = operand(in.a);
    const BatchOperand b = operand(in.b);
    emit(op, in.dst, a, b);
    set(in.dst, result, a.vec || b.vec);
    return true;
  }

  static BatchOp arith_op(OpCode op) {
    switch (op) {
      case OpCode::Add: return BatchOp::Add;
      case OpCode::Sub: return BatchOp::Sub;
      default: return BatchOp::Mul;
    }
  }
  static BatchOp cmp_op(OpCode op) {
    switch (op) {
      case OpCode::Lt: return BatchOp::Lt;
      case OpCode::Le: return BatchOp::Le;
      case OpCode::Gt: return BatchOp::Gt;
      case OpCode::Ge: return BatchOp::Ge;
      case OpCode::Eq: return BatchOp::Eq;
      default: return BatchOp::Ne;
    }
  }

  [[nodiscard]] Kind kind(std::uint16_t r) const {
    return r < regs_.size() ? regs_[r].kind : Kind::None;
  }
  /// The register's value as an operand; a pending load fuses here.
  BatchOperand operand(std::uint16_t r) {
    const RegState& s = regs_[r];
    if (s.pending) {
      ++out_.fused_loads;
      return s.load;
    }
    return BatchOperand{BatchOperand::Kind::Reg, s.vec, r, 0};
  }
  BatchOperand reg_operand(std::uint16_t r) const {
    return BatchOperand{BatchOperand::Kind::Reg, regs_[r].vec, r, 0};
  }
  void set(std::uint16_t r, Kind k, bool vec) {
    regs_[r] = RegState{k, vec, false, {}};
  }
  void set_pending(std::uint16_t r, Kind k, BatchOperand load) {
    regs_[r] = RegState{k, load.vec, true, load};
  }
  void emit(BatchOp op, std::uint16_t dst, BatchOperand a, BatchOperand b) {
    out_.code.push_back(BatchInstr{op, dst, a.vec || b.vec, a, b});
  }

  const Chunk& chunk_;
  std::span<const std::uint8_t> slot_vec_;
  BatchChunk out_;
  std::vector<RegState> regs_;
  std::vector<Join> joins_;
  std::uint16_t next_reg_ = 0;
  bool done_ = false;
};

}  // namespace

std::optional<BatchChunk> compile_batch(
    const Chunk& chunk, std::span<const std::uint8_t> slot_is_vector) {
  return BatchCompiler(chunk, slot_is_vector).translate();
}

bool BatchVm::run(const BatchChunk& chunk, std::span<const SlotInput> slots,
                  std::size_t n, std::vector<std::uint8_t>& truthy_out) {
  g_batch_evals.fetch_add(1, std::memory_order_relaxed);
  g_batch_lanes.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
  const std::size_t width_bucket = std::min<std::size_t>(
      static_cast<std::size_t>(std::bit_width(n)), kBatchWidthBuckets - 1);
  g_batch_width[width_bucket].fetch_add(1, std::memory_order_relaxed);

  if (regs_.size() < chunk.register_count) regs_.resize(chunk.register_count);

  struct Src {
    const std::int64_t* col;  // null = broadcast scalar `s`
    std::int64_t s;
  };
  // Resolve dst BEFORE operands: dst may alias an operand register, and the
  // lane-buffer resize must happen before we take that register's pointer.
  auto dst_of = [&](const BatchInstr& in) -> std::int64_t* {
    std::vector<std::int64_t>& d = regs_[in.dst];
    const std::size_t need = in.dst_vec ? n : 1;
    if (d.size() < need) d.resize(need);
    return d.data();
  };
  auto src = [&](const BatchOperand& o) -> Src {
    switch (o.kind) {
      case BatchOperand::Kind::Imm:
        return Src{nullptr, o.imm};
      case BatchOperand::Kind::Slot: {
        const SlotInput& si = slots[o.index];
        return o.vec ? Src{si.column, 0} : Src{nullptr, si.scalar};
      }
      case BatchOperand::Kind::Reg: {
        std::vector<std::int64_t>& r = regs_[o.index];
        return o.vec ? Src{r.data(), 0} : Src{nullptr, r.empty() ? 0 : r[0]};
      }
    }
    return Src{nullptr, 0};
  };
  auto binary = [&](const BatchInstr& in, auto f) {
    std::int64_t* d = dst_of(in);
    const Src a = src(in.a);
    const Src b = src(in.b);
    if (!in.dst_vec) {
      d[0] = f(a.s, b.s);
    } else if (a.col != nullptr && b.col != nullptr) {
      const std::int64_t* x = a.col;
      const std::int64_t* y = b.col;
      for (std::size_t i = 0; i < n; ++i) d[i] = f(x[i], y[i]);
    } else if (a.col != nullptr) {
      const std::int64_t* x = a.col;
      const std::int64_t ys = b.s;
      for (std::size_t i = 0; i < n; ++i) d[i] = f(x[i], ys);
    } else {
      const std::int64_t xs = a.s;
      const std::int64_t* y = b.col;
      for (std::size_t i = 0; i < n; ++i) d[i] = f(xs, y[i]);
    }
  };
  auto unary = [&](const BatchInstr& in, auto f) {
    std::int64_t* d = dst_of(in);
    const Src a = src(in.a);
    if (!in.dst_vec) {
      d[0] = f(a.s);
      return;
    }
    const std::int64_t* x = a.col;
    for (std::size_t i = 0; i < n; ++i) d[i] = f(x[i]);
  };
  // Any zero divisor — even in a lane the scalar scan might never reach —
  // aborts the batch; the caller's scalar fallback then reproduces the
  // walker's exact match-or-throw order.
  auto divmod = [&](const BatchInstr& in, auto f) -> bool {
    std::int64_t* d = dst_of(in);
    const Src a = src(in.a);
    const Src b = src(in.b);
    if (b.col == nullptr) {
      if (b.s == 0) return false;
      if (!in.dst_vec) {
        d[0] = f(a.s, b.s);
      } else {
        const std::int64_t* x = a.col;
        const std::int64_t ys = b.s;
        for (std::size_t i = 0; i < n; ++i) d[i] = f(x[i], ys);
      }
      return true;
    }
    const std::int64_t* y = b.col;
    for (std::size_t i = 0; i < n; ++i) {
      if (y[i] == 0) return false;
    }
    if (a.col != nullptr) {
      const std::int64_t* x = a.col;
      for (std::size_t i = 0; i < n; ++i) d[i] = f(x[i], y[i]);
    } else {
      const std::int64_t xs = a.s;
      for (std::size_t i = 0; i < n; ++i) d[i] = f(xs, y[i]);
    }
    return true;
  };
  auto as_lane = [](bool v) { return v ? std::int64_t{1} : std::int64_t{0}; };

  for (const BatchInstr& in : chunk.code) {
    switch (in.op) {
      case BatchOp::Add:
        binary(in, [](std::int64_t x, std::int64_t y) { return x + y; });
        break;
      case BatchOp::Sub:
        binary(in, [](std::int64_t x, std::int64_t y) { return x - y; });
        break;
      case BatchOp::Mul:
        binary(in, [](std::int64_t x, std::int64_t y) { return x * y; });
        break;
      case BatchOp::Div:
        if (!divmod(in, [](std::int64_t x, std::int64_t y) { return x / y; }))
          return false;
        break;
      case BatchOp::Mod:
        if (!divmod(in, [](std::int64_t x, std::int64_t y) { return x % y; }))
          return false;
        break;
      // Comparisons go through double exactly like the scalar Vm (and
      // value.cpp's compare()), so lanes match bit-for-bit even past 2^53.
      case BatchOp::Lt:
        binary(in, [&](std::int64_t x, std::int64_t y) {
          return as_lane(static_cast<double>(x) < static_cast<double>(y));
        });
        break;
      case BatchOp::Le:
        binary(in, [&](std::int64_t x, std::int64_t y) {
          return as_lane(static_cast<double>(x) <= static_cast<double>(y));
        });
        break;
      case BatchOp::Gt:
        binary(in, [&](std::int64_t x, std::int64_t y) {
          return as_lane(static_cast<double>(x) > static_cast<double>(y));
        });
        break;
      case BatchOp::Ge:
        binary(in, [&](std::int64_t x, std::int64_t y) {
          return as_lane(static_cast<double>(x) >= static_cast<double>(y));
        });
        break;
      case BatchOp::Eq:
        binary(in, [&](std::int64_t x, std::int64_t y) {
          return as_lane(static_cast<double>(x) == static_cast<double>(y));
        });
        break;
      case BatchOp::Ne:
        binary(in, [&](std::int64_t x, std::int64_t y) {
          return as_lane(static_cast<double>(x) != static_cast<double>(y));
        });
        break;
      case BatchOp::Neg:
        unary(in, [](std::int64_t x) { return -x; });
        break;
      case BatchOp::Not:
        unary(in, [&](std::int64_t x) { return as_lane(x == 0); });
        break;
      case BatchOp::Truthy:
        unary(in, [&](std::int64_t x) { return as_lane(x != 0); });
        break;
      case BatchOp::AndBool:
        binary(in, [](std::int64_t x, std::int64_t y) { return x & y; });
        break;
      case BatchOp::OrBool:
        binary(in, [](std::int64_t x, std::int64_t y) { return x | y; });
        break;
      case BatchOp::Ret: {
        const Src a = src(in.a);
        truthy_out.resize(n);
        if (a.col != nullptr) {
          for (std::size_t i = 0; i < n; ++i) {
            truthy_out[i] = a.col[i] != 0 ? std::uint8_t{1} : std::uint8_t{0};
          }
        } else {
          std::fill(truthy_out.begin(), truthy_out.end(),
                    a.s != 0 ? std::uint8_t{1} : std::uint8_t{0});
        }
        return true;
      }
    }
  }
  return false;  // no Ret: malformed chunk — treat as a fallback signal
}

std::uint64_t batch_evals() noexcept {
  return g_batch_evals.load(std::memory_order_relaxed);
}

std::uint64_t batch_lanes() noexcept {
  return g_batch_lanes.load(std::memory_order_relaxed);
}

std::array<std::uint64_t, kBatchWidthBuckets> batch_width_counts() noexcept {
  std::array<std::uint64_t, kBatchWidthBuckets> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = g_batch_width[i].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace gammaflow::expr
