#include "gammaflow/expr/bytecode.hpp"

#include <atomic>
#include <cstddef>
#include <limits>
#include <optional>
#include <sstream>
#include <utility>

#include "gammaflow/common/error.hpp"
#include "gammaflow/expr/eval.hpp"

namespace gammaflow::expr {

namespace {

std::atomic<std::uint64_t> g_vm_instrs{0};

constexpr std::size_t kOperandLimit =
    std::numeric_limits<std::uint16_t>::max();

OpCode opcode_for(BinOp op) {
  switch (op) {
    case BinOp::Add: return OpCode::Add;
    case BinOp::Sub: return OpCode::Sub;
    case BinOp::Mul: return OpCode::Mul;
    case BinOp::Div: return OpCode::Div;
    case BinOp::Mod: return OpCode::Mod;
    case BinOp::Lt: return OpCode::Lt;
    case BinOp::Le: return OpCode::Le;
    case BinOp::Gt: return OpCode::Gt;
    case BinOp::Ge: return OpCode::Ge;
    case BinOp::Eq: return OpCode::Eq;
    case BinOp::Ne: return OpCode::Ne;
    case BinOp::And:
    case BinOp::Or: break;  // lowered to jumps, never a direct opcode
  }
  throw ProgramError("bytecode: operator has no direct opcode");
}

/// Evaluates a variable-free subtree exactly as the walker would, including
/// short-circuit logic: `lhs and rhs` folds to false when lhs folds falsy
/// even if rhs references variables or would throw — the walker never
/// evaluates rhs in that case either. Returns nullopt (no fold) whenever
/// evaluation would throw, preserving the runtime error for the Vm.
std::optional<Value> fold(const Expr& e) {
  try {
    switch (e.kind()) {
      case Expr::Kind::Literal:
        return e.literal();
      case Expr::Kind::Var:
        return std::nullopt;
      case Expr::Kind::Unary: {
        auto a = fold(*e.operand());
        if (!a) return std::nullopt;
        return apply(e.un_op(), *a);
      }
      case Expr::Kind::Binary: {
        auto a = fold(*e.lhs());
        if (!a) return std::nullopt;
        if (e.bin_op() == BinOp::And) {
          if (!a->truthy()) return Value(false);
          auto b = fold(*e.rhs());
          if (!b) return std::nullopt;
          return Value(b->truthy());
        }
        if (e.bin_op() == BinOp::Or) {
          if (a->truthy()) return Value(true);
          auto b = fold(*e.rhs());
          if (!b) return std::nullopt;
          return Value(b->truthy());
        }
        auto b = fold(*e.rhs());
        if (!b) return std::nullopt;
        return apply(e.bin_op(), *a, *b);
      }
    }
  } catch (const Error&) {
    return std::nullopt;
  }
  return std::nullopt;
}

class Compiler {
 public:
  explicit Compiler(std::span<const std::string> slot_names)
      : slots_(slot_names) {}

  Chunk compile(const ExprPtr& e, const CompileOptions& options) {
    if (!e) throw ProgramError("bytecode: cannot compile a null expression");
    const std::uint16_t result = emit(*e, 0);
    if (options.bool_to_int_result) {
      push({OpCode::BoolToInt, result, result, 0});
    }
    push({OpCode::Ret, 0, result, 0});
    chunk_.slot_names.assign(slots_.begin(), slots_.end());
    return std::move(chunk_);
  }

 private:
  /// Emits code leaving the result in register `dst`; returns `dst`.
  /// Register discipline: a binary node evaluates lhs into dst and rhs into
  /// dst+1, so live registers form a stack and the high-water mark equals
  /// the tree's right-spine depth.
  std::uint16_t emit(const Expr& e, std::uint16_t dst) {
    reserve(dst);
    if (e.kind() != Expr::Kind::Literal) {
      if (auto v = fold(e)) {
        push({OpCode::LoadConst, dst, intern(*std::move(v)), 0});
        return dst;
      }
    }
    switch (e.kind()) {
      case Expr::Kind::Literal:
        push({OpCode::LoadConst, dst, intern(e.literal()), 0});
        return dst;
      case Expr::Kind::Var:
        push({OpCode::LoadSlot, dst, slot_of(e.var()), 0});
        return dst;
      case Expr::Kind::Unary: {
        emit(*e.operand(), dst);
        push({e.un_op() == UnOp::Neg ? OpCode::Neg : OpCode::Not, dst, dst, 0});
        return dst;
      }
      case Expr::Kind::Binary: {
        if (e.bin_op() == BinOp::And || e.bin_op() == BinOp::Or) {
          // `a and b` == truthy(a) ? Bool(truthy(b)) : Bool(false); the jump
          // writes the short-circuit constant into dst itself, so no merge
          // move is needed.
          const OpCode jump = e.bin_op() == BinOp::And ? OpCode::JumpIfFalsy
                                                       : OpCode::JumpIfTruthy;
          emit(*e.lhs(), dst);
          const std::size_t patch = chunk_.code.size();
          push({jump, dst, dst, 0});
          emit(*e.rhs(), dst);
          push({OpCode::Truthy, dst, dst, 0});
          chunk_.code[patch].b = checked_u16(chunk_.code.size(),
                                             "bytecode: jump target");
          return dst;
        }
        emit(*e.lhs(), dst);
        const std::uint16_t rhs =
            checked_u16(std::size_t{dst} + 1, "bytecode: expression too deep");
        emit(*e.rhs(), rhs);
        push({opcode_for(e.bin_op()), dst, dst, rhs});
        return dst;
      }
    }
    throw ProgramError("bytecode: unknown expression kind");
  }

  std::uint16_t slot_of(const std::string& name) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] == name) {
        return checked_u16(i, "bytecode: slot index");
      }
    }
    throw ProgramError("unbound variable '" + name + "' (not a binder slot)");
  }

  std::uint16_t intern(Value v) {
    for (std::size_t i = 0; i < chunk_.consts.size(); ++i) {
      if (chunk_.consts[i] == v) {
        return checked_u16(i, "bytecode: constant index");
      }
    }
    chunk_.consts.push_back(std::move(v));
    return checked_u16(chunk_.consts.size() - 1, "bytecode: constant pool");
  }

  void reserve(std::uint16_t reg) {
    if (std::size_t{reg} + 1 > chunk_.register_count) {
      chunk_.register_count = static_cast<std::uint16_t>(reg + 1);
    }
  }

  void push(Instr in) { chunk_.code.push_back(in); }

  static std::uint16_t checked_u16(std::size_t v, const char* what) {
    if (v > kOperandLimit) throw ProgramError(std::string(what) + " overflow");
    return static_cast<std::uint16_t>(v);
  }

  std::span<const std::string> slots_;
  Chunk chunk_;
};

/// Inline truthiness for the jump/normalization opcodes; falls back to
/// Value::truthy() (out-of-line) only to raise its exact TypeError.
inline bool fast_truthy(const Value& v) {
  if (const bool* b = v.if_bool()) return *b;
  if (const std::int64_t* i = v.if_int()) return *i != 0;
  return v.truthy();  // throws; never returns
}

}  // namespace

const char* to_string(EvalMode mode) noexcept {
  return mode == EvalMode::Vm ? "vm" : "ast";
}

const char* to_string(OpCode op) noexcept {
  switch (op) {
    case OpCode::LoadConst: return "loadconst";
    case OpCode::LoadSlot: return "loadslot";
    case OpCode::Add: return "add";
    case OpCode::Sub: return "sub";
    case OpCode::Mul: return "mul";
    case OpCode::Div: return "div";
    case OpCode::Mod: return "mod";
    case OpCode::Lt: return "lt";
    case OpCode::Le: return "le";
    case OpCode::Gt: return "gt";
    case OpCode::Ge: return "ge";
    case OpCode::Eq: return "eq";
    case OpCode::Ne: return "ne";
    case OpCode::Neg: return "neg";
    case OpCode::Not: return "not";
    case OpCode::Truthy: return "truthy";
    case OpCode::BoolToInt: return "booltoint";
    case OpCode::JumpIfFalsy: return "jumpiffalsy";
    case OpCode::JumpIfTruthy: return "jumpiftruthy";
    case OpCode::Ret: return "ret";
  }
  return "?";
}

std::string Chunk::disassemble() const {
  std::ostringstream os;
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    os << pc << ": " << to_string(in.op);
    switch (in.op) {
      case OpCode::LoadConst:
        os << " r" << in.dst << ", " << consts[in.a];
        break;
      case OpCode::LoadSlot:
        os << " r" << in.dst << ", s" << in.a;
        if (in.a < slot_names.size()) os << " (" << slot_names[in.a] << ")";
        break;
      case OpCode::Neg:
      case OpCode::Not:
      case OpCode::Truthy:
      case OpCode::BoolToInt:
        os << " r" << in.dst << ", r" << in.a;
        break;
      case OpCode::JumpIfFalsy:
      case OpCode::JumpIfTruthy:
        os << " r" << in.a << ", ->" << in.b << " (r" << in.dst << ")";
        break;
      case OpCode::Ret:
        os << " r" << in.a;
        break;
      default:
        os << " r" << in.dst << ", r" << in.a << ", r" << in.b;
        break;
    }
    os << '\n';
  }
  return os.str();
}

Chunk compile(const ExprPtr& e, std::span<const std::string> slot_names,
              const CompileOptions& options) {
  return Compiler(slot_names).compile(e, options);
}

Value Vm::run(const Chunk& chunk, std::span<const Value* const> slots) {
  if (regs_.size() < chunk.register_count) regs_.resize(chunk.register_count);
  const Instr* code = chunk.code.data();
  std::size_t pc = 0;
  std::uint64_t retired = 0;
  // Flush the instruction count even when a value op throws (TypeError on
  // mixed kinds), so metrics stay honest on failing conditions.
  struct Flush {
    Vm* vm;
    const std::uint64_t* n;
    ~Flush() {
      vm->instrs_ += *n;
      g_vm_instrs.fetch_add(*n, std::memory_order_relaxed);
    }
  } flush{this, &retired};
  for (;;) {
    const Instr& in = code[pc];
    ++retired;
    switch (in.op) {
      case OpCode::LoadConst:
        regs_[in.dst] = chunk.consts[in.a];
        ++pc;
        break;
      case OpCode::LoadSlot: {
        const Value* slot = slots[in.a];
        if (slot == nullptr) {
          // Matches Env::lookup: the walker only throws when the variable is
          // actually referenced on the evaluated path, and so do we.
          throw ProgramError("unbound variable '" + chunk.slot_names[in.a] +
                             "'");
        }
        regs_[in.dst] = *slot;
        ++pc;
        break;
      }
      // Binary value ops: an inline Int×Int fast path (the dominant case in
      // reaction conditions) with a fall-through to the checked helpers in
      // value.cpp for every other kind combination — promotion, string
      // concat, and the exact TypeError texts all come from the same single
      // source of truth as the walker. Comparisons intentionally go through
      // double like value.cpp's compare() so results are bit-identical.
      case OpCode::Add: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] = (xi && yi) ? Value(*xi + *yi) : add(x, y);
        ++pc;
        break;
      }
      case OpCode::Sub: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] = (xi && yi) ? Value(*xi - *yi) : sub(x, y);
        ++pc;
        break;
      }
      case OpCode::Mul: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] = (xi && yi) ? Value(*xi * *yi) : mul(x, y);
        ++pc;
        break;
      }
      case OpCode::Div: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi && *yi != 0) ? Value(*xi / *yi) : div(x, y);
        ++pc;
        break;
      }
      case OpCode::Mod: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi && *yi != 0) ? Value(*xi % *yi) : mod(x, y);
        ++pc;
        break;
      }
      case OpCode::Lt: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) < static_cast<double>(*yi))
                : cmp_lt(x, y);
        ++pc;
        break;
      }
      case OpCode::Le: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) <= static_cast<double>(*yi))
                : cmp_le(x, y);
        ++pc;
        break;
      }
      case OpCode::Gt: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) > static_cast<double>(*yi))
                : cmp_gt(x, y);
        ++pc;
        break;
      }
      case OpCode::Ge: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) >= static_cast<double>(*yi))
                : cmp_ge(x, y);
        ++pc;
        break;
      }
      case OpCode::Eq: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) == static_cast<double>(*yi))
                : cmp_eq(x, y);
        ++pc;
        break;
      }
      case OpCode::Ne: {
        const Value& x = regs_[in.a];
        const Value& y = regs_[in.b];
        const std::int64_t* xi = x.if_int();
        const std::int64_t* yi = y.if_int();
        regs_[in.dst] =
            (xi && yi)
                ? Value(static_cast<double>(*xi) != static_cast<double>(*yi))
                : cmp_ne(x, y);
        ++pc;
        break;
      }
      case OpCode::Neg: {
        const Value& x = regs_[in.a];
        const std::int64_t* xi = x.if_int();
        regs_[in.dst] = xi ? Value(-*xi) : neg(x);
        ++pc;
        break;
      }
      case OpCode::Not:
        regs_[in.dst] = Value(!fast_truthy(regs_[in.a]));
        ++pc;
        break;
      case OpCode::Truthy:
        regs_[in.dst] = Value(fast_truthy(regs_[in.a]));
        ++pc;
        break;
      case OpCode::BoolToInt:
        regs_[in.dst] = Value(fast_truthy(regs_[in.a]) ? 1 : 0);
        ++pc;
        break;
      case OpCode::JumpIfFalsy:
        if (!fast_truthy(regs_[in.a])) {
          regs_[in.dst] = Value(false);
          pc = in.b;
        } else {
          ++pc;
        }
        break;
      case OpCode::JumpIfTruthy:
        if (fast_truthy(regs_[in.a])) {
          regs_[in.dst] = Value(true);
          pc = in.b;
        } else {
          ++pc;
        }
        break;
      case OpCode::Ret:
        return std::move(regs_[in.a]);
    }
  }
}

std::uint64_t vm_instrs_executed() noexcept {
  return g_vm_instrs.load(std::memory_order_relaxed);
}

}  // namespace gammaflow::expr
