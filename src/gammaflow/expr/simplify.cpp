#include "gammaflow/expr/simplify.hpp"

#include "gammaflow/expr/eval.hpp"

namespace gammaflow::expr {
namespace {

bool is_literal(const ExprPtr& e) { return e->kind() == Expr::Kind::Literal; }

bool is_int_literal(const ExprPtr& e, std::int64_t v) {
  return is_literal(e) && e->literal().is_int() && e->literal().as_int() == v;
}

bool is_bool_literal(const ExprPtr& e, bool v) {
  return is_literal(e) && e->literal().is_bool() && e->literal().as_bool() == v;
}

}  // namespace

ExprPtr simplify(const ExprPtr& e) {
  switch (e->kind()) {
    case Expr::Kind::Literal:
    case Expr::Kind::Var:
      return e;
    case Expr::Kind::Unary: {
      ExprPtr operand = simplify(e->operand());
      if (is_literal(operand)) {
        try {
          return Expr::lit(apply(e->un_op(), operand->literal()));
        } catch (const TypeError&) {
          // leave as-is; runtime will report with full context
        }
      }
      // --(-x) => x ; not (not x) => x
      if (operand->kind() == Expr::Kind::Unary && operand->un_op() == e->un_op()) {
        return operand->operand();
      }
      return operand == e->operand() ? e : Expr::unary(e->un_op(), std::move(operand));
    }
    case Expr::Kind::Binary: {
      ExprPtr lhs = simplify(e->lhs());
      ExprPtr rhs = simplify(e->rhs());
      if (is_literal(lhs) && is_literal(rhs)) {
        try {
          return Expr::lit(apply(e->bin_op(), lhs->literal(), rhs->literal()));
        } catch (const TypeError&) {
          // fall through: preserve the failing tree for accurate runtime errors
        }
      }
      switch (e->bin_op()) {
        case BinOp::Add:
          if (is_int_literal(lhs, 0)) return rhs;
          if (is_int_literal(rhs, 0)) return lhs;
          break;
        case BinOp::Sub:
          if (is_int_literal(rhs, 0)) return lhs;
          break;
        case BinOp::Mul:
          if (is_int_literal(lhs, 1)) return rhs;
          if (is_int_literal(rhs, 1)) return lhs;
          break;
        case BinOp::Div:
          if (is_int_literal(rhs, 1)) return lhs;
          break;
        case BinOp::And:
          if (is_bool_literal(lhs, true)) return rhs;
          if (is_bool_literal(rhs, true)) return lhs;
          if (is_bool_literal(lhs, false)) return Expr::lit(Value(false));
          break;
        case BinOp::Or:
          if (is_bool_literal(lhs, false)) return rhs;
          if (is_bool_literal(rhs, false)) return lhs;
          if (is_bool_literal(lhs, true)) return Expr::lit(Value(true));
          break;
        default:
          break;
      }
      if (lhs == e->lhs() && rhs == e->rhs()) return e;
      return Expr::binary(e->bin_op(), std::move(lhs), std::move(rhs));
    }
  }
  return e;
}

std::optional<bool> constant_truth(const ExprPtr& e) {
  const ExprPtr folded = simplify(e);
  if (folded->kind() != Expr::Kind::Literal) return std::nullopt;
  try {
    return folded->literal().truthy();
  } catch (const TypeError&) {
    return std::nullopt;  // would throw at runtime; not a usable constant
  }
}

ExprPtr substitute(const ExprPtr& e,
                   const std::vector<std::pair<std::string, ExprPtr>>& subst) {
  switch (e->kind()) {
    case Expr::Kind::Literal:
      return e;
    case Expr::Kind::Var:
      for (const auto& [name, replacement] : subst) {
        if (name == e->var()) return replacement;
      }
      return e;
    case Expr::Kind::Unary: {
      ExprPtr operand = substitute(e->operand(), subst);
      return operand == e->operand() ? e : Expr::unary(e->un_op(), std::move(operand));
    }
    case Expr::Kind::Binary: {
      ExprPtr lhs = substitute(e->lhs(), subst);
      ExprPtr rhs = substitute(e->rhs(), subst);
      if (lhs == e->lhs() && rhs == e->rhs()) return e;
      return Expr::binary(e->bin_op(), std::move(lhs), std::move(rhs));
    }
  }
  return e;
}

}  // namespace gammaflow::expr
