// Evaluation environment: variable name -> Value bindings. Reaction arities
// are tiny (the paper never exceeds four replace-list tuples, i.e. ~9
// variables), so a flat vector with linear scan beats a hash map.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gammaflow/common/error.hpp"
#include "gammaflow/common/value.hpp"

namespace gammaflow::expr {

class Env {
 public:
  Env() = default;

  /// Adds or overwrites a binding.
  void bind(std::string_view name, Value value) {
    for (auto& [n, v] : bindings_) {
      if (n == name) {
        v = std::move(value);
        return;
      }
    }
    bindings_.emplace_back(std::string(name), std::move(value));
  }

  [[nodiscard]] const Value* find(std::string_view name) const noexcept {
    for (const auto& [n, v] : bindings_) {
      if (n == name) return &v;
    }
    return nullptr;
  }

  [[nodiscard]] const Value& lookup(std::string_view name) const {
    if (const Value* v = find(name)) return *v;
    throw ProgramError("unbound variable '" + std::string(name) + "'");
  }

  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return find(name) != nullptr;
  }

  [[nodiscard]] std::size_t size() const noexcept { return bindings_.size(); }
  void clear() noexcept { bindings_.clear(); }

  [[nodiscard]] auto begin() const noexcept { return bindings_.begin(); }
  [[nodiscard]] auto end() const noexcept { return bindings_.end(); }

 private:
  std::vector<std::pair<std::string, Value>> bindings_;
};

}  // namespace gammaflow::expr
