// Tree-walking evaluator over Value with short-circuit logical operators.
#pragma once

#include "gammaflow/common/value.hpp"
#include "gammaflow/expr/ast.hpp"
#include "gammaflow/expr/env.hpp"

namespace gammaflow::expr {

/// Evaluates `e` under `env`. Throws TypeError on kind misuse and
/// ProgramError on unbound variables.
[[nodiscard]] Value eval(const Expr& e, const Env& env);
[[nodiscard]] inline Value eval(const ExprPtr& e, const Env& env) {
  return eval(*e, env);
}

/// Applies one binary operator to already-evaluated operands. This is the
/// same dispatch a dataflow arithmetic/comparison node performs when firing,
/// keeping operator semantics identical across the two models by construction.
[[nodiscard]] Value apply(BinOp op, const Value& a, const Value& b);
[[nodiscard]] Value apply(UnOp op, const Value& a);

}  // namespace gammaflow::expr
