// Recursive-descent expression parser over the shared token stream. The DSL
// parser embeds this for replace/by/if payloads; it is also a public entry
// point ("parse this arithmetic string") used by tests and generators.
//
// Precedence (loosest to tightest):  or < and < comparisons < +- < */% < unary
#pragma once

#include <string_view>
#include <vector>

#include "gammaflow/expr/ast.hpp"
#include "gammaflow/expr/lexer.hpp"

namespace gammaflow::expr {

/// Bounded cursor over a token vector; shared with the DSL parser.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const noexcept {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokenKind kind) const noexcept {
    return peek().kind == kind;
  }
  const Token& advance() noexcept {
    const Token& t = peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  /// Consumes a token of `kind` or raises ParseError naming what was found.
  const Token& expect(TokenKind kind);
  /// Consumes and returns true if the next token is `kind`.
  bool accept(TokenKind kind) noexcept {
    if (!at(kind)) return false;
    advance();
    return true;
  }
  [[nodiscard]] bool done() const noexcept { return at(TokenKind::End); }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

/// Parses one expression from `ts`, leaving the cursor after it.
[[nodiscard]] ExprPtr parse_expression(TokenStream& ts);

/// Parses an entire string as a single expression; rejects trailing tokens.
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace gammaflow::expr
