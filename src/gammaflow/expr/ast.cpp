#include "gammaflow/expr/ast.hpp"

#include <sstream>

namespace gammaflow::expr {

const char* to_string(BinOp op) noexcept {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Mod: return "%";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::And: return "and";
    case BinOp::Or: return "or";
  }
  return "?";
}

const char* to_string(UnOp op) noexcept {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::Not: return "not";
  }
  return "?";
}

bool is_arithmetic(BinOp op) noexcept {
  return op >= BinOp::Add && op <= BinOp::Mod;
}
bool is_comparison(BinOp op) noexcept { return op >= BinOp::Lt && op <= BinOp::Ne; }
bool is_logical(BinOp op) noexcept { return op == BinOp::And || op == BinOp::Or; }

ExprPtr Expr::lit(Value v) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::Literal;
  node->literal_ = std::move(v);
  return node;
}

ExprPtr Expr::var(std::string name) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::Var;
  node->name_ = std::move(name);
  return node;
}

ExprPtr Expr::unary(UnOp op, ExprPtr operand) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::Unary;
  node->un_op_ = op;
  node->lhs_ = std::move(operand);
  return node;
}

ExprPtr Expr::binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::Binary;
  node->bin_op_ = op;
  node->lhs_ = std::move(lhs);
  node->rhs_ = std::move(rhs);
  return node;
}

namespace {

// Binding strength; higher binds tighter. Mirrors the parser's ladder so
// to_string() output re-parses to the identical tree.
int precedence(BinOp op) {
  switch (op) {
    case BinOp::Or: return 1;
    case BinOp::And: return 2;
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::Eq:
    case BinOp::Ne: return 3;
    case BinOp::Add:
    case BinOp::Sub: return 4;
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Mod: return 5;
  }
  return 0;
}

constexpr int kUnaryPrecedence = 6;

void print(const Expr& e, std::ostream& os, int parent_prec) {
  switch (e.kind()) {
    case Expr::Kind::Literal:
      os << e.literal();
      return;
    case Expr::Kind::Var:
      os << e.var();
      return;
    case Expr::Kind::Unary: {
      const bool parens = parent_prec > kUnaryPrecedence;
      if (parens) os << '(';
      os << to_string(e.un_op());
      if (e.un_op() == UnOp::Not) os << ' ';
      print(*e.operand(), os, kUnaryPrecedence);
      if (parens) os << ')';
      return;
    }
    case Expr::Kind::Binary: {
      const int prec = precedence(e.bin_op());
      const bool parens = parent_prec > prec;
      if (parens) os << '(';
      // Left-associative: left child may share our precedence, the right
      // child must bind strictly tighter.
      print(*e.lhs(), os, prec);
      os << ' ' << to_string(e.bin_op()) << ' ';
      print(*e.rhs(), os, prec + 1);
      if (parens) os << ')';
      return;
    }
  }
}

void collect_vars(const Expr& e, std::set<std::string>& out) {
  switch (e.kind()) {
    case Expr::Kind::Literal:
      return;
    case Expr::Kind::Var:
      out.insert(e.var());
      return;
    case Expr::Kind::Unary:
      collect_vars(*e.operand(), out);
      return;
    case Expr::Kind::Binary:
      collect_vars(*e.lhs(), out);
      collect_vars(*e.rhs(), out);
      return;
  }
}

}  // namespace

std::string Expr::to_string() const {
  std::ostringstream os;
  print(*this, os, 0);
  return os.str();
}

std::set<std::string> Expr::free_vars() const {
  std::set<std::string> out;
  collect_vars(*this, out);
  return out;
}

std::size_t Expr::size() const noexcept {
  switch (kind_) {
    case Kind::Literal:
    case Kind::Var: return 1;
    case Kind::Unary: return 1 + lhs_->size();
    case Kind::Binary: return 1 + lhs_->size() + rhs_->size();
  }
  return 1;
}

bool equal(const ExprPtr& a, const ExprPtr& b) noexcept {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case Expr::Kind::Literal: return a->literal() == b->literal();
    case Expr::Kind::Var: return a->var() == b->var();
    case Expr::Kind::Unary:
      return a->un_op() == b->un_op() && equal(a->operand(), b->operand());
    case Expr::Kind::Binary:
      return a->bin_op() == b->bin_op() && equal(a->lhs(), b->lhs()) &&
             equal(a->rhs(), b->rhs());
  }
  return false;
}

}  // namespace gammaflow::expr
