// AST for the frontend's mini imperative language — the "high level language
// based on the von Neumann paradigm" the paper writes its examples in
// (§III-A1). Just enough to express them and their natural extensions:
//
//   int x = 1;                       // declarations (type words optional)
//   m = (x + y) - (k * j);           // assignments over full expressions
//   x += y;  i--;                    // compound assignment / inc / dec
//   for (i = z; i > 0; i--) { ... }  // counted loops (Fig. 2)
//   while (c) { ... }                // condition loops
//   if (c) { ... } else { ... }      // conditionals
//   output m;                        // what the program observably computes
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gammaflow/expr/ast.hpp"

namespace gammaflow::frontend {

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

struct Assign {
  std::string name;
  expr::ExprPtr value;  // already desugared: i-- becomes i = i - 1
};

struct If {
  expr::ExprPtr condition;
  Block then_body;
  Block else_body;  // empty when absent
};

struct While {
  /// For-loops desugar here: the init assignment precedes the While node,
  /// the step is appended to the body.
  expr::ExprPtr condition;
  Block body;
};

struct Output {
  std::string name;  // the variable whose final value is observable
};

struct Stmt {
  enum class Kind { Assign, If, While, Output };
  Kind kind;
  Assign assign;  // Kind::Assign
  If if_stmt;     // Kind::If
  While while_stmt;  // Kind::While
  Output output;  // Kind::Output
  int line = 0;   // for diagnostics

  static StmtPtr make_assign(std::string name, expr::ExprPtr value, int line);
  static StmtPtr make_if(expr::ExprPtr cond, Block then_body, Block else_body,
                         int line);
  static StmtPtr make_while(expr::ExprPtr cond, Block body, int line);
  static StmtPtr make_output(std::string name, int line);
};

struct ProgramAst {
  Block statements;
};

/// Pretty-prints the AST back to surface syntax (diagnostics / round-trip
/// tests).
[[nodiscard]] std::string to_string(const ProgramAst& program);

}  // namespace gammaflow::frontend
