// Parser for the frontend language (see ast.hpp for the grammar sketch).
// Reuses the shared lexer in imperative mode and the shared expression
// parser for right-hand sides and conditions.
#pragma once

#include <string_view>

#include "gammaflow/frontend/ast.hpp"

namespace gammaflow::frontend {

/// Throws ParseError with source location on malformed input.
[[nodiscard]] ProgramAst parse_source(std::string_view source);

}  // namespace gammaflow::frontend
