#include "gammaflow/frontend/parser.hpp"

#include "gammaflow/expr/parser.hpp"

namespace gammaflow::frontend {

using expr::Token;
using expr::TokenKind;
using expr::TokenStream;

namespace {

class Parser {
 public:
  explicit Parser(std::string_view source)
      : ts_(expr::tokenize(source, expr::LexMode::Imperative)) {}

  ProgramAst parse() {
    ProgramAst program;
    while (!ts_.done()) statement(program.statements);
    return program;
  }

 private:
  [[noreturn]] void error(const std::string& what) {
    const Token& t = ts_.peek();
    throw ParseError(what + " (found " + expr::to_string(t.kind) +
                         (t.text.empty() ? "" : " '" + t.text + "'") + ")",
                     t.line, t.column);
  }

  Block block() {
    Block body;
    if (ts_.accept(TokenKind::LBrace)) {
      while (!ts_.at(TokenKind::RBrace)) {
        if (ts_.done()) error("unterminated block; expected '}'");
        statement(body);
      }
      ts_.advance();  // }
      return body;
    }
    statement(body);  // single-statement body, like the paper's loop
    return body;
  }

  /// Assignment without the trailing ';' (shared by statements and for(...)
  /// headers): `x = e`, `x += e`, `x -= e`, `x++`, `x--`.
  StmtPtr assignment() {
    const Token& name_tok = ts_.expect(TokenKind::Ident);
    const std::string name = name_tok.text;
    const int line = name_tok.line;
    const auto var = expr::Expr::var(name);
    if (ts_.accept(TokenKind::Assign)) {
      return Stmt::make_assign(name, expr::parse_expression(ts_), line);
    }
    if (ts_.accept(TokenKind::PlusEq)) {
      return Stmt::make_assign(
          name,
          expr::Expr::binary(expr::BinOp::Add, var, expr::parse_expression(ts_)),
          line);
    }
    if (ts_.accept(TokenKind::MinusEq)) {
      return Stmt::make_assign(
          name,
          expr::Expr::binary(expr::BinOp::Sub, var, expr::parse_expression(ts_)),
          line);
    }
    const auto one = expr::Expr::lit(Value(std::int64_t{1}));
    if (ts_.accept(TokenKind::PlusPlus)) {
      return Stmt::make_assign(
          name, expr::Expr::binary(expr::BinOp::Add, var, one), line);
    }
    if (ts_.accept(TokenKind::MinusMinus)) {
      return Stmt::make_assign(
          name, expr::Expr::binary(expr::BinOp::Sub, var, one), line);
    }
    error("expected '=', '+=', '-=', '++' or '--' after variable");
  }

  /// Parses one statement; may append several AST nodes (a for-loop becomes
  /// init + while).
  void statement(Block& out) {
    const Token& t = ts_.peek();
    switch (t.kind) {
      case TokenKind::KwVar:
        // `int x = e;` — the type word is documentation; semantics stay
        // dynamic like the rest of the system.
        ts_.advance();
        out.push_back(assignment());
        ts_.expect(TokenKind::Semicolon);
        return;
      case TokenKind::Ident:
        out.push_back(assignment());
        ts_.expect(TokenKind::Semicolon);
        return;
      case TokenKind::KwOutput: {
        ts_.advance();
        const Token& name = ts_.expect(TokenKind::Ident);
        out.push_back(Stmt::make_output(name.text, name.line));
        ts_.expect(TokenKind::Semicolon);
        return;
      }
      case TokenKind::KwIf: {
        ts_.advance();
        ts_.expect(TokenKind::LParen);
        expr::ExprPtr cond = expr::parse_expression(ts_);
        ts_.expect(TokenKind::RParen);
        Block then_body = block();
        Block else_body;
        if (ts_.accept(TokenKind::KwElse)) else_body = block();
        out.push_back(Stmt::make_if(std::move(cond), std::move(then_body),
                                    std::move(else_body), t.line));
        return;
      }
      case TokenKind::KwWhile: {
        ts_.advance();
        ts_.expect(TokenKind::LParen);
        expr::ExprPtr cond = expr::parse_expression(ts_);
        ts_.expect(TokenKind::RParen);
        out.push_back(Stmt::make_while(std::move(cond), block(), t.line));
        return;
      }
      case TokenKind::KwFor: {
        // for (init; cond; step) body  desugars to  init; while (cond)
        // { body; step; } — the uniform shape the compiler lowers to the
        // Fig. 2 steer/inctag pattern.
        ts_.advance();
        ts_.expect(TokenKind::LParen);
        if (!ts_.at(TokenKind::Semicolon)) {
          ts_.accept(TokenKind::KwVar);
          out.push_back(assignment());
        }
        ts_.expect(TokenKind::Semicolon);
        expr::ExprPtr cond = ts_.at(TokenKind::Semicolon)
                                 ? expr::Expr::lit(Value(true))
                                 : expr::parse_expression(ts_);
        ts_.expect(TokenKind::Semicolon);
        StmtPtr step;
        if (!ts_.at(TokenKind::RParen)) step = assignment();
        ts_.expect(TokenKind::RParen);
        Block body = block();
        if (step) body.push_back(std::move(step));
        out.push_back(
            Stmt::make_while(std::move(cond), std::move(body), t.line));
        return;
      }
      default:
        error("expected a statement");
    }
  }

  TokenStream ts_;
};

}  // namespace

ProgramAst parse_source(std::string_view source) {
  return Parser(source).parse();
}

}  // namespace gammaflow::frontend
