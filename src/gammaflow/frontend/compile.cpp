#include "gammaflow/frontend/compile.hpp"

#include <map>
#include <set>

#include "gammaflow/expr/simplify.hpp"
#include "gammaflow/frontend/parser.hpp"

namespace gammaflow::frontend {

using dataflow::GraphBuilder;
using dataflow::NodeId;
using expr::BinOp;
using expr::Expr;
using expr::ExprPtr;

namespace {

/// Tag context: 0 is the tag-zero world (roots, if-joins over roots); each
/// loop body and each loop exit get fresh ids. Tokens only combine within
/// one context — mixing would deadlock silently at a matching store, so the
/// compiler rejects it instead.
using Context = int;

/// A variable's current definition: one or more producer ports (several
/// after an if-join — the paper's multi-producer input ports) plus the tag
/// context its tokens live in.
struct Definition {
  std::vector<GraphBuilder::Port> ports;
  Context context = 0;
};

using Env = std::map<std::string, Definition>;

/// Where code is being lowered. Inside an if-branch, `gate` carries the
/// branch condition: fresh constants must be steered by it so the untaken
/// side produces nothing. Inside a loop body, bare literals are forbidden
/// outright (their Const token would carry tag 0).
struct Gate {
  Definition cond;
  bool then_side;
};
struct Region {
  bool in_loop = false;
  const Gate* gate = nullptr;
};

void vars_of(const ExprPtr& e, std::set<std::string>& out) {
  for (const std::string& v : e->free_vars()) out.insert(v);
}

void analyze_block(const Block& block, std::set<std::string>& reads,
                   std::set<std::string>& writes) {
  for (const StmtPtr& s : block) {
    switch (s->kind) {
      case Stmt::Kind::Assign:
        vars_of(s->assign.value, reads);
        writes.insert(s->assign.name);
        break;
      case Stmt::Kind::If:
        vars_of(s->if_stmt.condition, reads);
        analyze_block(s->if_stmt.then_body, reads, writes);
        analyze_block(s->if_stmt.else_body, reads, writes);
        break;
      case Stmt::Kind::While:
        vars_of(s->while_stmt.condition, reads);
        analyze_block(s->while_stmt.body, reads, writes);
        break;
      case Stmt::Kind::Output:
        reads.insert(s->output.name);
        break;
    }
  }
}

class Compiler {
 public:
  dataflow::Graph run(const ProgramAst& program) {
    Env env;
    const Region root;
    compile_block(program.statements, env, root);
    if (outputs_ == 0) {
      // A program with no observable result is almost certainly a mistake.
      throw CompileError("program has no 'output' statement", 0);
    }
    return std::move(builder_).build();
  }

 private:
  // ---- plumbing ----

  /// Feeds every producer port of `def` into (node, port) — multi-producer
  /// merges become several edges, resolved at run time by the tag
  /// discipline (exactly one side ever fires).
  void feed(const Definition& def, NodeId node, dataflow::PortId port,
            std::string_view label = {}) {
    for (const GraphBuilder::Port& p : def.ports) {
      builder_.connect(p, node, port, label);
    }
  }

  const Definition& lookup(const std::string& name, const Env& env, int line) {
    auto it = env.find(name);
    if (it == env.end()) {
      throw CompileError("undefined variable '" + name + "'", line);
    }
    return it->second;
  }

  /// Two operand contexts must agree; reports which variable-free operand
  /// (context 0) clashed with a loop product when they don't.
  static Context join_contexts(Context a, Context b, int line) {
    if (a != b) {
      throw CompileError(
          "operands live in different tag contexts (" + std::to_string(a) +
              " vs " + std::to_string(b) +
              "); a loop boundary separates them and their tokens could "
              "never meet",
          line);
    }
    return a;
  }

  // ---- expression lowering ----

  Definition compile_expr(const ExprPtr& raw, const Env& env,
                          const Region& region, int line) {
    return lower(expr::simplify(raw), env, region, line);
  }

  Definition lower(const ExprPtr& e, const Env& env, const Region& region,
                   int line) {
    switch (e->kind()) {
      case Expr::Kind::Literal:
        return lower_literal(e->literal(), region, line);
      case Expr::Kind::Var:
        return lookup(e->var(), env, line);
      case Expr::Kind::Unary: {
        if (e->un_op() == expr::UnOp::Not) {
          throw CompileError("'not' has no dataflow node equivalent", line);
        }
        // Negation as x * (-1): an immediate, so it works in any context.
        return lower(Expr::binary(BinOp::Mul, e->operand(),
                                  Expr::lit(Value(std::int64_t{-1}))),
                     env, region, line);
      }
      case Expr::Kind::Binary:
        return lower_binary(e, env, region, line);
    }
    throw CompileError("unreachable expression kind", line);
  }

  /// A standalone literal value. Tokens from Const nodes carry tag 0, so:
  /// forbidden in loop bodies; steered by the branch gate inside ifs (and
  /// the gate's condition must itself be tag-0, or the steer could never
  /// match); a plain Const node otherwise.
  Definition lower_literal(const Value& v, const Region& region, int line) {
    if (region.in_loop) {
      throw CompileError(
          "a bare literal cannot be materialized inside a loop body (its "
          "Const token would carry tag 0); fold it into an operation on a "
          "loop variable",
          line);
    }
    const GraphBuilder::Port c = builder_.constant(v);
    if (region.gate == nullptr) return Definition{{c}, 0};
    if (region.gate->cond.context != 0) {
      throw CompileError(
          "a literal inside this branch cannot be gated: the branch "
          "condition carries a non-zero iteration tag",
          line);
    }
    const NodeId st = builder_.steer();
    builder_.connect(c, st, dataflow::kSteerData);
    feed(region.gate->cond, st, dataflow::kSteerControl);
    return Definition{{region.gate->then_side ? GraphBuilder::true_out(st)
                                              : GraphBuilder::false_out(st)},
                      0};
  }

  Definition lower_binary(const ExprPtr& e, const Env& env,
                          const Region& region, int line) {
    const BinOp op = e->bin_op();
    if (expr::is_logical(op)) {
      throw CompileError(
          "logical operators have no dataflow node equivalent; restructure "
          "the condition",
          line);
    }
    ExprPtr lhs = e->lhs();
    ExprPtr rhs = e->rhs();

    // Normalize a literal LEFT operand so it can become an immediate:
    // commutative ops swap; comparisons swap with a flipped operator;
    // c - x rewrites to (x - c) * -1.
    if (lhs->kind() == Expr::Kind::Literal &&
        rhs->kind() != Expr::Kind::Literal) {
      switch (op) {
        case BinOp::Add:
        case BinOp::Mul:
        case BinOp::Eq:
        case BinOp::Ne:
          std::swap(lhs, rhs);
          break;
        case BinOp::Lt:
          return lower(Expr::binary(BinOp::Gt, rhs, lhs), env, region, line);
        case BinOp::Le:
          return lower(Expr::binary(BinOp::Ge, rhs, lhs), env, region, line);
        case BinOp::Gt:
          return lower(Expr::binary(BinOp::Lt, rhs, lhs), env, region, line);
        case BinOp::Ge:
          return lower(Expr::binary(BinOp::Le, rhs, lhs), env, region, line);
        case BinOp::Sub:
          return lower(Expr::binary(BinOp::Mul,
                                    Expr::binary(BinOp::Sub, rhs, lhs),
                                    Expr::lit(Value(std::int64_t{-1}))),
                       env, region, line);
        default:
          break;  // Div/Mod with literal dividend: falls through to a Const
                  // node, valid only where lower_literal allows one
      }
    }

    const bool imm = rhs->kind() == Expr::Kind::Literal;
    const Definition a = lower(lhs, env, region, line);
    if (imm) {
      const NodeId n = expr::is_comparison(op)
                           ? builder_.cmp_imm(op, rhs->literal())
                           : builder_.arith_imm(op, rhs->literal());
      feed(a, n, 0);
      return Definition{{GraphBuilder::out(n)}, a.context};
    }
    const Definition b = lower(rhs, env, region, line);
    const Context ctx = join_contexts(a.context, b.context, line);
    const NodeId n =
        expr::is_comparison(op) ? builder_.cmp(op) : builder_.arith(op);
    feed(a, n, 0);
    feed(b, n, 1);
    return Definition{{GraphBuilder::out(n)}, ctx};
  }

  // ---- statement lowering ----

  void compile_block(const Block& block, Env& env, const Region& region) {
    for (const StmtPtr& s : block) compile_stmt(*s, env, region);
  }

  void compile_stmt(const Stmt& s, Env& env, const Region& region) {
    switch (s.kind) {
      case Stmt::Kind::Assign:
        env[s.assign.name] = compile_expr(s.assign.value, env, region, s.line);
        return;
      case Stmt::Kind::Output: {
        const Definition& def = lookup(s.output.name, env, s.line);
        const NodeId out = builder_.output(s.output.name);
        // Single-producer outputs get a readable edge label (the paper's
        // 'm'); merged definitions fall back to auto labels.
        feed(def, out, 0,
             def.ports.size() == 1 ? std::string_view(s.output.name)
                                   : std::string_view{});
        ++outputs_;
        return;
      }
      case Stmt::Kind::If:
        compile_if(s.if_stmt, env, region, s.line);
        return;
      case Stmt::Kind::While:
        compile_while(s.while_stmt, env, region, s.line);
        return;
    }
  }

  void compile_if(const If& stmt, Env& env, const Region& region, int line) {
    const Definition cond = compile_expr(stmt.condition, env, region, line);

    // Involved variables: anything the branches read or write. Each gets a
    // steer so only the taken side receives (and the untaken side's value
    // survives for the join).
    std::set<std::string> reads, writes;
    analyze_block(stmt.then_body, reads, writes);
    analyze_block(stmt.else_body, reads, writes);
    std::set<std::string> involved = reads;
    involved.insert(writes.begin(), writes.end());

    Env then_env = env;
    Env else_env = env;
    std::map<std::string, NodeId> steers;
    for (const std::string& x : involved) {
      const Definition& def = lookup(x, env, line);
      join_contexts(def.context, cond.context, line);
      const NodeId st = builder_.steer("if" + std::to_string(line) + "_" + x);
      feed(def, st, dataflow::kSteerData);
      feed(cond, st, dataflow::kSteerControl);
      steers[x] = st;
      then_env[x] =
          Definition{{GraphBuilder::true_out(st)}, cond.context};
      else_env[x] =
          Definition{{GraphBuilder::false_out(st)}, cond.context};
    }

    const Gate then_gate{cond, true};
    const Gate else_gate{cond, false};
    Region then_region = region;
    then_region.gate = &then_gate;
    Region else_region = region;
    else_region.gate = &else_gate;
    compile_block(stmt.then_body, then_env, then_region);
    compile_block(stmt.else_body, else_env, else_region);

    // Join: each involved variable's post-if definition is the union of the
    // two sides' final definitions (exactly one side produces at run time).
    for (const std::string& x : involved) {
      const Definition& t = then_env[x];
      const Definition& f = else_env[x];
      if (t.context != cond.context || f.context != cond.context) {
        throw CompileError(
            "branch result for '" + x +
                "' left the surrounding tag context (a loop inside the if "
                "whose value escapes)",
            line);
      }
      Definition joined;
      joined.context = cond.context;
      joined.ports = t.ports;
      joined.ports.insert(joined.ports.end(), f.ports.begin(), f.ports.end());
      env[x] = std::move(joined);
    }
  }

  void compile_while(const While& stmt, Env& env, const Region& region,
                     int line) {
    // Loop-carried variables: everything the loop reads or writes,
    // condition included — each needs the inctag/steer circulation so its
    // tokens advance iterations together (Fig. 2's A/B/C paths).
    std::set<std::string> reads, writes;
    vars_of(stmt.condition, reads);
    analyze_block(stmt.body, reads, writes);
    std::set<std::string> carried = reads;
    carried.insert(writes.begin(), writes.end());
    if (carried.empty()) {
      throw CompileError("loop touches no variables", line);
    }
    if (region.gate != nullptr) {
      throw CompileError(
          "loops inside if-branches are not supported (their exit tokens "
          "cannot rejoin the branch's tag context)",
          line);
    }

    // Every carried variable must enter from ONE shared context (which may
    // itself be a previous loop's exit — sequential loops chain fine).
    Context entry_ctx = lookup(*carried.begin(), env, line).context;
    for (const std::string& x : carried) {
      entry_ctx = join_contexts(entry_ctx, lookup(x, env, line).context, line);
    }

    const Context body_ctx = ++next_context_;
    const Context exit_ctx = ++next_context_;

    // inctag per carried variable, fed by the entry definition (loop-back
    // edges are added after the body compiles).
    std::map<std::string, NodeId> inctags;
    Env head_env;
    for (const std::string& x : carried) {
      const NodeId inc =
          builder_.inctag("loop" + std::to_string(line) + "_inc_" + x);
      feed(env[x], inc, 0);
      inctags[x] = inc;
      head_env[x] = Definition{{GraphBuilder::out(inc)}, body_ctx};
    }

    Region body_region;
    body_region.in_loop = true;

    // The condition runs on start-of-iteration values (R14's position).
    const Definition cond =
        compile_expr(stmt.condition, head_env, body_region, line);

    // One steer per carried variable: TRUE feeds the body, FALSE exits.
    Env body_env;
    std::map<std::string, NodeId> steers;
    for (const std::string& x : carried) {
      const NodeId st =
          builder_.steer("loop" + std::to_string(line) + "_st_" + x);
      feed(head_env[x], st, dataflow::kSteerData);
      feed(cond, st, dataflow::kSteerControl);
      steers[x] = st;
      body_env[x] = Definition{{GraphBuilder::true_out(st)}, body_ctx};
    }

    compile_block(stmt.body, body_env, body_region);

    // Loop-back: the body's final definition of each variable re-enters its
    // inctag (unassigned variables loop their steered value back, like the
    // paper's A11 edge for y).
    for (const std::string& x : carried) {
      const Definition& back = body_env[x];
      if (back.context != body_ctx) {
        throw CompileError(
            "loop-carried variable '" + x +
                "' crosses tag contexts inside the loop body (a nested "
                "loop's value cannot re-enter an outer iteration)",
            line);
      }
      feed(back, inctags[x], 0);
    }

    // Exit: the FALSE ports, in a fresh context shared by this loop's vars.
    for (const std::string& x : carried) {
      env[x] = Definition{{GraphBuilder::false_out(steers[x])}, exit_ctx};
    }
  }

  GraphBuilder builder_;
  Context next_context_ = 0;
  std::size_t outputs_ = 0;
};

}  // namespace

dataflow::Graph compile(const ProgramAst& program) {
  return Compiler().run(program);
}

dataflow::Graph compile_source(std::string_view source) {
  return compile(parse_source(source));
}

}  // namespace gammaflow::frontend
