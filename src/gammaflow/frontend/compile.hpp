// Compiler: frontend AST -> dynamic dataflow graph, producing exactly the
// shapes the paper draws.
//
//   * assignments build arithmetic/comparison node trees (literal right
//     operands become immediates inside loops);
//   * if/else steers every involved variable by the condition and joins the
//     branch definitions on multi-producer input ports;
//   * while/for loops emit the Fig. 2 pattern per loop-carried variable:
//         entry ─► inctag ─► steer(data, cond) ─ true ─► body ─► loop back
//                     ▲                         └ false ─► exit value
//     with the condition computed from the inctag outputs (R14's role);
//   * `output v;` attaches an Output node.
//
// Tag-context discipline: tokens that exited a loop carry the iteration tag
// of the final round, so they can only combine with values from the SAME
// loop exit. The compiler tracks a context id per value and rejects
// cross-context arithmetic with CompileError instead of emitting a graph
// that silently deadlocks on tag mismatch.
#pragma once

#include <string_view>

#include "gammaflow/common/error.hpp"
#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/frontend/ast.hpp"

namespace gammaflow::frontend {

class CompileError : public Error {
 public:
  CompileError(const std::string& what, int line)
      : Error("CompileError at line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Compiles an AST; throws CompileError on undefined variables, unsupported
/// constructs (logical operators, literal-only assignments inside loops,
/// loop-carried values crossing tag contexts), ParseError bubbling from
/// parse_source.
[[nodiscard]] dataflow::Graph compile(const ProgramAst& program);

/// parse + compile in one call.
[[nodiscard]] dataflow::Graph compile_source(std::string_view source);

}  // namespace gammaflow::frontend
