#include "gammaflow/frontend/ast.hpp"

#include <sstream>

namespace gammaflow::frontend {

StmtPtr Stmt::make_assign(std::string name, expr::ExprPtr value, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::Assign;
  s->assign = Assign{std::move(name), std::move(value)};
  s->line = line;
  return s;
}

StmtPtr Stmt::make_if(expr::ExprPtr cond, Block then_body, Block else_body,
                      int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::If;
  s->if_stmt = If{std::move(cond), std::move(then_body), std::move(else_body)};
  s->line = line;
  return s;
}

StmtPtr Stmt::make_while(expr::ExprPtr cond, Block body, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::While;
  s->while_stmt = While{std::move(cond), std::move(body)};
  s->line = line;
  return s;
}

StmtPtr Stmt::make_output(std::string name, int line) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::Output;
  s->output = Output{std::move(name)};
  s->line = line;
  return s;
}

namespace {

void print_block(const Block& block, std::ostream& os, int indent);

void print_stmt(const Stmt& s, std::ostream& os, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case Stmt::Kind::Assign:
      os << pad << s.assign.name << " = " << s.assign.value->to_string()
         << ";\n";
      return;
    case Stmt::Kind::If:
      os << pad << "if (" << s.if_stmt.condition->to_string() << ") {\n";
      print_block(s.if_stmt.then_body, os, indent + 1);
      if (!s.if_stmt.else_body.empty()) {
        os << pad << "} else {\n";
        print_block(s.if_stmt.else_body, os, indent + 1);
      }
      os << pad << "}\n";
      return;
    case Stmt::Kind::While:
      os << pad << "while (" << s.while_stmt.condition->to_string() << ") {\n";
      print_block(s.while_stmt.body, os, indent + 1);
      os << pad << "}\n";
      return;
    case Stmt::Kind::Output:
      os << pad << "output " << s.output.name << ";\n";
      return;
  }
}

void print_block(const Block& block, std::ostream& os, int indent) {
  for (const StmtPtr& s : block) print_stmt(*s, os, indent);
}

}  // namespace

std::string to_string(const ProgramAst& program) {
  std::ostringstream os;
  print_block(program.statements, os, 0);
  return os.str();
}

}  // namespace gammaflow::frontend
