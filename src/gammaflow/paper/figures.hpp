// Canonical constructions of every artifact printed in the paper, used by
// tests (to pin them), examples, and the benchmark harness:
//   Fig. 1  — the expression graph for  m = (x + y) - (k * j)
//   §III-A1 — its Gamma listing R1..R3 and the initial multiset
//   §III-A3 — the reduced one-reaction form Rd1
//   Fig. 2  — the loop graph for  for(i=z; i>0; i--) x = x + y;
//   §III-A1 — its listing R11..R19 and initial multiset
//   §III-A3 — the reduced six-reaction form Rd11..Rd16
#pragma once

#include "gammaflow/dataflow/graph.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::paper {

// ---- Fig. 1 (x=1, y=5, k=3, j=2 as printed; parameters for sweeps) ----

/// The Fig. 1 dataflow graph. Edge labels A1,B1,C1,D1,B2,C2,m; vertices
/// R1 (+), R2 (*), R3 (-); result collected by Output node "m".
[[nodiscard]] dataflow::Graph fig1_graph(std::int64_t x = 1, std::int64_t y = 5,
                                         std::int64_t k = 3, std::int64_t j = 2);

/// The paper's Gamma listing R1|R2|R3, parsed from its surface syntax.
[[nodiscard]] gamma::Program fig1_gamma();
/// Initial multiset {[1,'A1'], [5,'B1'], [3,'C1'], [2,'D1']}.
[[nodiscard]] gamma::Multiset fig1_initial(std::int64_t x = 1, std::int64_t y = 5,
                                           std::int64_t k = 3, std::int64_t j = 2);
/// The reduced one-reaction program Rd1 (§III-A3).
[[nodiscard]] gamma::Program fig1_reduced_gamma();

// ---- Fig. 2 (loop; initial x, y, z parameters) ----

/// The Fig. 2 loop graph, exactly as drawn: inctags R11-R13, comparison R14
/// (id > 0, immediate 0), steers R15-R17, decrement R18 (immediate 1),
/// accumulate R19. All steer FALSE ports are unconnected (tokens die when
/// the loop exits), faithfully reproducing the printed reactions' "by 0
/// else". With `observe_result`, R17's FALSE port is routed to an Output
/// node "x_final" so the loop's result x + z*y becomes observable — the
/// natural completion the examples use.
[[nodiscard]] dataflow::Graph fig2_graph(std::int64_t z, std::int64_t y,
                                         std::int64_t x,
                                         bool observe_result = false);

/// The paper's nine-reaction listing R11..R19.
[[nodiscard]] gamma::Program fig2_gamma();
/// Initial multiset {[y,'A1',0], [z,'B1',0], [x,'C1',0]}.
[[nodiscard]] gamma::Multiset fig2_initial(std::int64_t z, std::int64_t y,
                                           std::int64_t x);
/// The reduced six-reaction program Rd11..Rd16 (§III-A3).
[[nodiscard]] gamma::Program fig2_reduced_gamma();

// ---- generators for sweeps / property tests ----

/// Balanced random expression graph with `leaves` Const inputs combined by
/// random +,-,* nodes into one Output "m" (div/mod excluded to avoid
/// divide-by-zero in random data). Used by E1's width sweep.
[[nodiscard]] dataflow::Graph random_expression_graph(std::size_t leaves,
                                                      std::uint64_t seed);

/// Fig. 2 generalized: `loops` independent accumulation loops side by side
/// (each its own z/y/x), exercising inter-loop parallelism.
[[nodiscard]] dataflow::Graph multi_loop_graph(std::size_t loops,
                                               std::int64_t z,
                                               bool observe_result = true);

/// A random WELL-FORMED program in the frontend's imperative language:
/// declarations, arithmetic assignments, if/else blocks, optionally one
/// trailing bounded for-loop, and outputs. Always compiles and terminates —
/// the seed generator for whole-pipeline property tests (source -> graph ->
/// Gamma -> engines all agree).
[[nodiscard]] std::string random_source_program(std::uint64_t seed,
                                                bool with_loop = true);

}  // namespace gammaflow::paper
