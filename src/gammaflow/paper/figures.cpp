#include "gammaflow/paper/figures.hpp"

#include <functional>
#include <sstream>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/expr/ast.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"

namespace gammaflow::paper {

using dataflow::Graph;
using dataflow::GraphBuilder;
using expr::BinOp;

Graph fig1_graph(std::int64_t x, std::int64_t y, std::int64_t k,
                 std::int64_t j) {
  GraphBuilder b;
  const auto cx = b.constant(Value(x), "x");
  const auto cy = b.constant(Value(y), "y");
  const auto ck = b.constant(Value(k), "k");
  const auto cj = b.constant(Value(j), "j");

  const dataflow::NodeId r1 = b.arith(BinOp::Add, "R1");
  const dataflow::NodeId r2 = b.arith(BinOp::Mul, "R2");
  const dataflow::NodeId r3 = b.arith(BinOp::Sub, "R3");
  b.connect(cx, r1, 0, "A1");
  b.connect(cy, r1, 1, "B1");
  b.connect(ck, r2, 0, "C1");
  b.connect(cj, r2, 1, "D1");
  b.connect(GraphBuilder::out(r1), r3, 0, "B2");
  b.connect(GraphBuilder::out(r2), r3, 1, "C2");

  const dataflow::NodeId out = b.output("m");
  b.connect(GraphBuilder::out(r3), out, 0, "m");
  return std::move(b).build();
}

gamma::Program fig1_gamma() {
  // Verbatim from §III-A1 (pair elements — no tags in Fig. 1).
  return gamma::dsl::parse_program(R"(
    R1 = replace [id1, 'A1'], [id2, 'B1']
         by [id1 + id2, 'B2']
    R2 = replace [id1, 'C1'], [id2, 'D1']
         by [id1 * id2, 'C2']
    R3 = replace [id1, 'B2'], [id2, 'C2']
         by [id1 - id2, 'm']
  )");
}

gamma::Multiset fig1_initial(std::int64_t x, std::int64_t y, std::int64_t k,
                             std::int64_t j) {
  return gamma::Multiset{
      gamma::Element::labeled(Value(x), "A1"),
      gamma::Element::labeled(Value(y), "B1"),
      gamma::Element::labeled(Value(k), "C1"),
      gamma::Element::labeled(Value(j), "D1"),
  };
}

gamma::Program fig1_reduced_gamma() {
  // Rd1 of §III-A3.
  return gamma::dsl::parse_program(R"(
    Rd1 = replace [id1,'A1'], [id2,'B1'], [id3,'C1'], [id4,'D1']
          by [(id1 + id2) - (id3 * id4), 'm']
  )");
}

Graph fig2_graph(std::int64_t z, std::int64_t y, std::int64_t x,
                 bool observe_result) {
  GraphBuilder b;
  const auto cy = b.constant(Value(y), "y");
  const auto cz = b.constant(Value(z), "z");
  const auto cx = b.constant(Value(x), "x");

  const auto r11 = b.inctag("R11");
  const auto r12 = b.inctag("R12");
  const auto r13 = b.inctag("R13");
  const auto r14 = b.cmp_imm(BinOp::Gt, Value(std::int64_t{0}), "R14");
  const auto r15 = b.steer("R15");
  const auto r16 = b.steer("R16");
  const auto r17 = b.steer("R17");
  const auto r18 = b.arith_imm(BinOp::Sub, Value(std::int64_t{1}), "R18");
  const auto r19 = b.arith(BinOp::Add, "R19");

  // Initial edges.
  b.connect(cy, r11, 0, "A1");
  b.connect(cz, r12, 0, "B1");
  b.connect(cx, r13, 0, "C1");
  // IncTag fan-outs.
  b.connect(GraphBuilder::out(r11), r15, dataflow::kSteerData, "A12");
  b.connect(GraphBuilder::out(r12), r14, 0, "B12");
  b.connect(GraphBuilder::out(r12), r16, dataflow::kSteerData, "B13");
  b.connect(GraphBuilder::out(r13), r17, dataflow::kSteerData, "C12");
  // Comparison fan-out: one control token per steer.
  b.connect(GraphBuilder::out(r14), r15, dataflow::kSteerControl, "B14");
  b.connect(GraphBuilder::out(r14), r16, dataflow::kSteerControl, "B15");
  b.connect(GraphBuilder::out(r14), r17, dataflow::kSteerControl, "B16");
  // Steer TRUE paths.
  b.connect(GraphBuilder::true_out(r15), r11, 0, "A11");  // loop y back
  b.connect(GraphBuilder::true_out(r15), r19, 0, "A13");
  b.connect(GraphBuilder::true_out(r16), r18, 0, "B17");
  b.connect(GraphBuilder::true_out(r17), r19, 1, "C13");
  // Decrement and accumulate loop-backs.
  b.connect(GraphBuilder::out(r18), r12, 0, "B11");
  b.connect(GraphBuilder::out(r19), r13, 0, "C11");

  if (observe_result) {
    const auto out = b.output("x_final");
    b.connect(GraphBuilder::false_out(r17), out, 0, "x_final");
  }
  return std::move(b).build();
}

gamma::Program fig2_gamma() {
  // Verbatim R11..R19 from §III-A1 (tagged triples).
  return gamma::dsl::parse_program(R"(
    R11 = replace [id1, x, v]
          by [id1, 'A12', v + 1]
          if (x == 'A1') or (x == 'A11')

    R12 = replace [id1, x, v]
          by [id1, 'B12', v + 1], [id1, 'B13', v + 1]
          if (x == 'B1') or (x == 'B11')

    R13 = replace [id1, x, v]
          by [id1, 'C12', v + 1]
          if (x == 'C1') or (x == 'C11')

    R14 = replace [id1, 'B12', v]
          by [1, 'B14', v], [1, 'B15', v], [1, 'B16', v]
          if id1 > 0
          by [0, 'B14', v], [0, 'B15', v], [0, 'B16', v]
          else

    R15 = replace [id1, 'A12', v], [id2, 'B14', v]
          by [id1, 'A11', v], [id1, 'A13', v]
          if id2 == 1
          by 0
          else

    R16 = replace [id1, 'B13', v], [id2, 'B15', v]
          by [id1, 'B17', v]
          if id2 == 1
          by 0
          else

    R17 = replace [id1, 'C12', v], [id2, 'B16', v]
          by [id1, 'C13', v]
          if id2 == 1
          by 0
          else

    R18 = replace [id1, 'B17', v]
          by [id1 - 1, 'B11', v]

    R19 = replace [id1, 'A13', v], [id2, 'C13', v]
          by [id1 + id2, 'C11', v]
  )");
}

gamma::Multiset fig2_initial(std::int64_t z, std::int64_t y, std::int64_t x) {
  return gamma::Multiset{
      gamma::Element::tagged(Value(y), "A1", 0),
      gamma::Element::tagged(Value(z), "B1", 0),
      gamma::Element::tagged(Value(x), "C1", 0),
  };
}

gamma::Program fig2_reduced_gamma() {
  // Rd11..Rd16 of §III-A3 (verbatim, including the paper's choice to fold
  // R14's comparison into the consumers as "if id2 > 0").
  return gamma::dsl::parse_program(R"(
    Rd11 = replace [id1, x, v]
           by [id1, 'A12', v + 1]
           if (x == 'A1') or (x == 'A11')

    Rd12 = replace [id1, x, v]
           by [id1, 'B14', v + 1], [id1, 'B12', v + 1], [id1, 'B16', v + 1]
           if (x == 'B1') or (x == 'B11')

    Rd13 = replace [id1, x, v]
           by [id1, 'C12', v + 1]
           if (x == 'C1') or (x == 'C11')

    Rd14 = replace [id1, 'A12', v], [id2, 'B14', v]
           by [id1, 'A11', v], [id1, 'A13', v]
           if id2 > 0
           by 0
           else

    Rd15 = replace [id1, 'B12', v]
           by [id1 - 1, 'B11', v]
           if id1 > 0
           by 0
           else

    Rd16 = replace [id1, 'A13', v], [id2, 'B16', v], [id3, 'C12', v]
           by [id1 + id3, 'C11', v]
           if id2 > 0
           by 0
           else
  )");
}

Graph random_expression_graph(std::size_t leaves, std::uint64_t seed) {
  if (leaves < 1) leaves = 1;
  Rng rng(seed);
  GraphBuilder b;
  std::vector<GraphBuilder::Port> frontier;
  frontier.reserve(leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    frontier.push_back(b.constant(
        Value(static_cast<std::int64_t>(rng.bounded(2001)) - 1000),
        "in" + std::to_string(i)));
  }
  static constexpr BinOp kOps[] = {BinOp::Add, BinOp::Sub, BinOp::Mul};
  while (frontier.size() > 1) {
    // Combine two random frontier entries; keeps the tree roughly balanced.
    const std::size_t i = rng.bounded(frontier.size());
    GraphBuilder::Port a = frontier[i];
    frontier[i] = frontier.back();
    frontier.pop_back();
    const std::size_t j = rng.bounded(frontier.size());
    GraphBuilder::Port c = frontier[j];
    const BinOp op = kOps[rng.bounded(3)];
    frontier[j] = b.arith(op, a, c);
  }
  b.connect(frontier.front(), b.output("m"), 0, "m");
  return std::move(b).build();
}

Graph multi_loop_graph(std::size_t loops, std::int64_t z, bool observe_result) {
  GraphBuilder b;
  for (std::size_t l = 0; l < loops; ++l) {
    const std::string p = "L" + std::to_string(l) + ".";
    const auto cy = b.constant(Value(std::int64_t(l + 1)), p + "y");
    const auto cz = b.constant(Value(z), p + "z");
    const auto cx = b.constant(Value(std::int64_t{0}), p + "x");

    const auto r11 = b.inctag(p + "R11");
    const auto r12 = b.inctag(p + "R12");
    const auto r13 = b.inctag(p + "R13");
    const auto r14 = b.cmp_imm(BinOp::Gt, Value(std::int64_t{0}), p + "R14");
    const auto r15 = b.steer(p + "R15");
    const auto r16 = b.steer(p + "R16");
    const auto r17 = b.steer(p + "R17");
    const auto r18 = b.arith_imm(BinOp::Sub, Value(std::int64_t{1}), p + "R18");
    const auto r19 = b.arith(BinOp::Add, p + "R19");

    b.connect(cy, r11, 0, p + "A1");
    b.connect(cz, r12, 0, p + "B1");
    b.connect(cx, r13, 0, p + "C1");
    b.connect(GraphBuilder::out(r11), r15, dataflow::kSteerData, p + "A12");
    b.connect(GraphBuilder::out(r12), r14, 0, p + "B12");
    b.connect(GraphBuilder::out(r12), r16, dataflow::kSteerData, p + "B13");
    b.connect(GraphBuilder::out(r13), r17, dataflow::kSteerData, p + "C12");
    b.connect(GraphBuilder::out(r14), r15, dataflow::kSteerControl, p + "B14");
    b.connect(GraphBuilder::out(r14), r16, dataflow::kSteerControl, p + "B15");
    b.connect(GraphBuilder::out(r14), r17, dataflow::kSteerControl, p + "B16");
    b.connect(GraphBuilder::true_out(r15), r11, 0, p + "A11");
    b.connect(GraphBuilder::true_out(r15), r19, 0, p + "A13");
    b.connect(GraphBuilder::true_out(r16), r18, 0, p + "B17");
    b.connect(GraphBuilder::true_out(r17), r19, 1, p + "C13");
    b.connect(GraphBuilder::out(r18), r12, 0, p + "B11");
    b.connect(GraphBuilder::out(r19), r13, 0, p + "C11");
    if (observe_result) {
      const auto out = b.output(p + "x_final");
      b.connect(GraphBuilder::false_out(r17), out, 0, p + "x_final");
    }
  }
  return std::move(b).build();
}

std::string random_source_program(std::uint64_t seed, bool with_loop) {
  Rng rng(seed);
  std::ostringstream src;

  // Declarations.
  const std::size_t nvars = 3 + rng.bounded(3);
  std::vector<std::string> vars;
  for (std::size_t i = 0; i < nvars; ++i) {
    vars.push_back(std::string(1, static_cast<char>('a' + i)));
    src << "int " << vars.back() << " = "
        << static_cast<std::int64_t>(rng.bounded(41)) - 20 << ";\n";
  }
  auto pick = [&]() -> const std::string& {
    return vars[rng.bounded(vars.size())];
  };
  // Small arithmetic expression over declared variables; + - * only (no
  // division: random data divides by zero).
  auto expr_str = [&](int depth) {
    std::string out;
    const std::function<void(int)> gen = [&](int d) {
      if (d == 0 || rng.coin(0.4)) {
        if (rng.coin(0.3)) {
          out += std::to_string(static_cast<std::int64_t>(rng.bounded(9)) + 1);
        } else {
          out += pick();
        }
        return;
      }
      out += '(';
      gen(d - 1);
      out += rng.coin(0.5) ? " + " : (rng.coin(0.5) ? " - " : " * ");
      gen(d - 1);
      out += ')';
    };
    gen(depth);
    return out;
  };

  // Straight-line and branching statements.
  const std::size_t nstmts = 2 + rng.bounded(4);
  for (std::size_t i = 0; i < nstmts; ++i) {
    if (rng.coin(0.3)) {
      const char* cmp = rng.coin() ? ">" : "<";
      src << "if (" << pick() << ' ' << cmp << ' ' << expr_str(1) << ") {\n"
          << "  " << pick() << " = " << expr_str(2) << ";\n";
      if (rng.coin()) {
        src << "} else {\n  " << pick() << " = " << expr_str(2) << ";\n";
      }
      src << "}\n";
    } else {
      src << pick() << " = " << expr_str(2) << ";\n";
    }
  }

  // Optional trailing bounded loop accumulating one variable by another.
  // After it, only outputs follow, so tag contexts never clash.
  if (with_loop && rng.coin(0.7)) {
    const std::string acc = pick();
    std::string step = pick();
    while (step == acc) step = pick();
    src << "for (q = " << 1 + rng.bounded(8) << "; q > 0; q--) " << acc
        << " = " << acc << " + " << step << ";\n";
    // Loop-carried variables exited into a fresh tag context; outputs are
    // context-agnostic, so observe those two plus one untouched variable.
    src << "output " << acc << ";\n";
  } else {
    // No loop: everything is tag-0, output every variable.
    for (const std::string& v : vars) src << "output " << v << ";\n";
  }
  return src.str();
}

}  // namespace gammaflow::paper
