#include "gammaflow/distrib/cluster.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"
#include "gammaflow/runtime/sharded_store.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::distrib {

using gamma::Element;
using gamma::Multiset;
using gamma::Reaction;
using gamma::Store;

void ClusterOptions::validate() const {
  if (nodes == 0) throw ProgramError("cluster needs >= 1 node");
  if (latency == 0) {
    throw ProgramError(
        "ClusterOptions::latency must be >= 1 (a zero-latency message would "
        "arrive in the round it was sent, breaking the round phases)");
  }
  if (fires_per_round == 0) {
    throw ProgramError(
        "ClusterOptions::fires_per_round must be >= 1 (a cluster that never "
        "fires locally livelocks instead of reaching the fixed point)");
  }
  faults.validate();
}

namespace {

/// Reliable-transfer kinds. Elements and Pull are LOGICAL messages (counted
/// by Safra, sequence-numbered, acked, retried); Ack is control traffic.
enum class MsgKind : std::uint8_t { Elements, Pull, Ack };

/// One physical message copy in the simulated network. Loss drops it,
/// duplication enqueues a second one, reordering inflates arrival_round.
struct Wire {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t arrival_round = 0;
  MsgKind kind = MsgKind::Elements;
  std::uint64_t seq = 0;  // sender-scoped id; an Ack echoes the acked seq
  std::vector<Element> elements;
};

struct Token {
  bool black = false;
  std::int64_t count = 0;
  std::uint64_t gen = 0;  // regeneration stamp; stale tokens are discarded
};

struct TokenMsg {
  std::size_t to = 0;
  std::size_t arrival_round = 0;
  Token token;
};

/// An unacked logical transfer, retried with exponential backoff. Keeping
/// the element payload here is what makes a lost shard recoverable: the
/// data survives at the sender until the receiver confirms it.
struct OutboxEntry {
  std::size_t to = 0;
  std::uint64_t seq = 0;
  MsgKind kind = MsgKind::Elements;
  std::vector<Element> elements;
  std::size_t next_retry_round = 0;
  unsigned attempts = 0;
};

struct Node {
  Store shard;
  Rng rng{0};
  // Safra state.
  bool black = false;              // received a message since last token pass
  std::int64_t message_count = 0;  // sent - received (logical messages)
  // Local activity.
  bool fired_this_round = false;
  bool answered_pull_this_round = false;  // receipt-activated send (EWD-legal)
  bool pull_pending = false;
  std::size_t quiescent_rounds = 0;
  std::uint64_t fires = 0;
  // Token in hand, waiting for passivity to forward.
  std::optional<Token> held_token;
  // Reliable-transfer state (all checkpointed with the shard, so a restart
  // resumes retries and keeps the duplicate filter).
  std::uint64_t next_seq = 0;
  std::vector<OutboxEntry> outbox;
  std::unordered_map<std::size_t, std::unordered_set<std::uint64_t>> seen;
  // Crash state: down (dropping everything) until this round; 0 = up.
  std::size_t down_until = 0;

  [[nodiscard]] bool active_this_round() const noexcept {
    return fired_this_round || answered_pull_this_round;
  }
};

class Simulation {
 public:
  Simulation(const gamma::Program& program, const Multiset& initial,
             const ClusterOptions& options)
      : program_(program),
        options_(options),
        injector_(options.faults, options.seed),
        telemetry_(options, "distrib"),
        recording_(options, "cluster", "distrib"),
        affinity_(std::unordered_map<std::string, std::size_t>(
                      options.label_affinity.begin(),
                      options.label_affinity.end()),
                  options.nodes),
        nodes_(options.nodes) {
    options_.validate();
    if (program.stage_count() > 1) {
      throw ProgramError(
          "distributed execution supports single-stage programs (the global "
          "termination of one stage is exactly what Safra detects)");
    }
    for (const FaultPlan::Crash& c : options_.faults.crashes) {
      if (c.node >= options_.nodes) {
        throw ProgramError("FaultPlan schedules a crash of node " +
                           std::to_string(c.node) + " but the cluster has " +
                           std::to_string(options_.nodes) + " node(s)");
      }
    }
    Rng seeder(options.seed);
    for (Node& n : nodes_) n.rng = seeder.split();

    // Round-trip estimate for the retry timer: send + ack, plus slack for
    // the phase boundaries and reorder jitter.
    rtt_ = 2 * options_.latency + 2 + options_.faults.reorder_jitter;
    token_timeout_ =
        options_.faults.token_timeout != 0
            ? options_.faults.token_timeout
            : 4 * options_.nodes *
                      (options_.latency + options_.faults.reorder_jitter + 1) +
                  options_.faults.crash_downtime + 16;

    // Initial placement. Elements with a conflict-class affinity go to their
    // class's home node; the rest follow the configured policy.
    std::size_t rr = 0;
    for (const Element& e : initial) {
      std::size_t target = 0;
      if (const auto home = affinity_.home(e)) {
        target = *home;
      } else {
        switch (options_.placement) {
          case Placement::Hash: target = e.hash() % options_.nodes; break;
          case Placement::RoundRobin: target = rr++ % options_.nodes; break;
          case Placement::Single: target = 0; break;
        }
      }
      nodes_[target].shard.insert(e);
    }

    recording_.begin(initial);

    // Seed the replicas with the placed state so a crash in the very first
    // rounds restores the initial shard.
    if (options_.faults.crashes_possible()) {
      replicas_.reserve(nodes_.size());
      replica_shard_versions_.reserve(nodes_.size());
      for (const Node& n : nodes_) {
        replicas_.push_back(snapshot_of(n));
        replica_shard_versions_.push_back(n.shard.version());
      }
    }
  }

  ClusterResult run() {
    runtime::StepLoop loop(options_, options_.max_rounds, "distributed run",
                           "max_rounds");
    // The simulation is single-threaded; one recorder carries a span per
    // round (arg = fires so far) so `--trace-out` shows the round cadence.
    obs::ThreadRecorder* const rec = telemetry_.recorder("distrib-sim");
    // Token starts at node 0 (the initiator is also the consolidation
    // collector, so it is the natural place to decide termination).
    nodes_[0].held_token = Token{false, 0, token_gen_};

    while (!terminated_) {
      // Cancel/deadline, then the round budget (EngineError under Throw).
      // On a cooperative stop the chemistry/stirring/token phases end, but
      // unacked in-flight transfers are settled first so the partial
      // multiset is exact (see settle_in_flight).
      if (loop.should_stop() || !loop.admit(round_)) {
        settle_in_flight();
        break;
      }
      ++round_;
      obs::Span round_span(telemetry_.sink(), rec, "round");
      crash_and_recover();
      deliver();
      react();
      communicate();
      pass_tokens();
      token_watchdog();
      checkpoint();
      std::uint64_t fires_so_far = 0;
      for (const Node& n : nodes_) fires_so_far += n.fires;
      round_span.set_arg(fires_so_far);
      // One journal round per cluster round. The snapshot is the union of
      // live shards; elements on the wire reappear when delivered (the
      // delta-vs-last-kept encoding keeps replay exact regardless).
      if (recording_) {
        Multiset all;
        for (Node& n : nodes_) all.add(n.shard.to_multiset());
        recording_.round(all);
      }
    }

    ClusterResult result;
    result.outcome = loop.outcome();
    result.rounds = round_;
    result.migrations = migrations_;
    result.messages = messages_;
    result.token_laps = laps_;
    result.acks = acks_;
    result.retransmissions = retransmissions_;
    result.messages_lost = lost_;
    result.messages_duplicated = duplicated_;
    result.messages_delayed = delayed_;
    result.duplicates_suppressed = dup_suppressed_;
    result.crashes = crashes_;
    result.recoveries = recoveries_;
    result.checkpoints = checkpoints_;
    result.token_regenerations = token_regens_;
    for (Node& n : nodes_) {
      result.fires += n.fires;
      result.fires_by_node.push_back(n.fires);
      result.final_shard_sizes.push_back(n.shard.size());
      result.final_multiset.add(n.shard.to_multiset());
    }
    if (obs::Telemetry* tel = telemetry_.sink()) {
      auto& stats = tel->stats();
      stats.count("distrib.rounds", result.rounds);
      stats.count("distrib.fires", result.fires);
      stats.count("distrib.messages", result.messages);
      stats.count("distrib.migrations", result.migrations);
      stats.count("distrib.token_laps", result.token_laps);
      stats.count("distrib.acks", result.acks);
      stats.count("distrib.retransmissions", result.retransmissions);
      stats.count("distrib.messages_lost", result.messages_lost);
      stats.count("distrib.messages_duplicated", result.messages_duplicated);
      stats.count("distrib.messages_delayed", result.messages_delayed);
      stats.count("distrib.duplicates_suppressed",
                  result.duplicates_suppressed);
      stats.count("distrib.crashes", result.crashes);
      stats.count("distrib.recoveries", result.recoveries);
      stats.count("distrib.checkpoints", result.checkpoints);
      stats.count("distrib.token_regenerations", result.token_regenerations);
      for (const std::size_t s : result.final_shard_sizes) {
        stats.observe_hist("distrib.final_shard_size",
                           static_cast<double>(s));
      }
      runtime::observe_reaction_compile(tel, program_);
    }
    telemetry_.finish(result.outcome, result.metrics);
    recording_.finish(result.outcome, result.final_multiset);
    return result;
  }

 private:
  [[nodiscard]] bool down(std::size_t i) const noexcept {
    return nodes_[i].down_until > round_;
  }

  /// Replica image of a node: full protocol state minus the token (the
  /// token is transient network property; resurrecting it from a backup
  /// would forge a second token of the same generation).
  [[nodiscard]] static Node snapshot_of(const Node& n) {
    Node snap = n;
    snap.held_token.reset();
    return snap;
  }

  // --- phase 0: crashes and restarts ---
  void crash_and_recover() {
    if (!options_.faults.crashes_possible()) return;
    for (Node& n : nodes_) {
      if (n.down_until != 0 && round_ >= n.down_until) {
        // Restart: rejoin the ring blackened, so the lap the node missed
        // cannot be mistaken for a clean one.
        n.down_until = 0;
        n.black = true;
        ++recoveries_;
      }
    }
    for (const FaultPlan::Crash& c : options_.faults.crashes) {
      if (c.round == round_ && !down(c.node)) crash(c.node, c.downtime);
    }
    if (options_.faults.crash_rate > 0.0) {
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!down(i) && injector_.spontaneous_crash()) {
          crash(i, options_.faults.crash_downtime);
        }
      }
    }
  }

  void crash(std::size_t i, std::size_t downtime) {
    ++crashes_;
    // The live shard dies with the process; the node re-installs the state
    // its ring successor checkpointed at the end of the previous round —
    // which is exactly the state at the crash point, because the crash
    // lands on the round boundary before any phase ran.
    Node restored = replicas_[i];
    restored.down_until = round_ + std::max<std::size_t>(1, downtime);
    restored.black = true;
    nodes_[i] = std::move(restored);
  }

  // --- the simulated (faulty) network ---

  /// Starts a LOGICAL transfer: sequence-numbered, Safra-counted once, kept
  /// in the outbox until acked, retried with exponential backoff.
  void send_reliable(std::size_t from, std::size_t to, MsgKind kind,
                     std::vector<Element> elements) {
    if (to == from) return;
    if (kind == MsgKind::Elements && elements.empty()) return;
    Node& sender = nodes_[from];
    const std::uint64_t seq = sender.next_seq++;
    ++sender.message_count;
    if (kind == MsgKind::Elements) migrations_ += elements.size();
    transmit(from, to, kind, seq, elements);
    sender.outbox.push_back(OutboxEntry{to, seq, kind, std::move(elements),
                                        round_ + rtt_, 0});
  }

  void send_ack(std::size_t from, std::size_t to, std::uint64_t seq) {
    ++acks_;
    transmit(from, to, MsgKind::Ack, seq, {});
  }

  /// One physical copy through the injector: partition/loss eat it,
  /// reordering delays it, duplication enqueues a second copy.
  void transmit(std::size_t from, std::size_t to, MsgKind kind,
                std::uint64_t seq, std::vector<Element> elements) {
    ++messages_;
    if (injector_.severed(from, to, round_) || injector_.lose()) {
      ++lost_;
      return;
    }
    std::size_t jitter = injector_.jitter();
    if (jitter > 0) ++delayed_;
    const bool duplicate = injector_.duplicate();
    if (duplicate) {
      ++duplicated_;
      ++messages_;
      wires_.push_back(Wire{from, to,
                            round_ + options_.latency + 1 + injector_.jitter(),
                            kind, seq, elements});
    }
    wires_.push_back(Wire{from, to, round_ + options_.latency + jitter, kind,
                          seq, std::move(elements)});
  }

  void send_token(std::size_t from, std::size_t to, const Token& token) {
    if (to == from) {  // degenerate 1-node ring: no network to cross
      nodes_[to].held_token = token;
      return;
    }
    // The token is control traffic: it can be lost or delayed (and then
    // regenerated by the watchdog), but the network never forges copies —
    // duplication is what the generation stamp guards against.
    if (injector_.severed(from, to, round_) || injector_.lose()) {
      ++lost_;
      return;
    }
    std::size_t jitter = injector_.jitter();
    if (jitter > 0) ++delayed_;
    token_msgs_.push_back(
        TokenMsg{to, round_ + options_.latency + jitter, token});
  }

  // --- phase 1: deliver messages due this round ---
  void deliver() {
    // Acks raised while sweeping the wire list are staged and sent after
    // the sweep: transmit() appends to wires_, which must not be mutated
    // mid-erase_if.
    struct PendingAck {
      std::size_t from, to;
      std::uint64_t seq;
    };
    std::vector<PendingAck> pending_acks;
    const auto ack = [&](std::size_t from, std::size_t to, std::uint64_t seq) {
      pending_acks.push_back(PendingAck{from, to, seq});
    };
    std::erase_if(wires_, [&](Wire& m) {
      if (m.arrival_round > round_) return false;
      if (down(m.to)) {  // a dead process reads nothing off the wire
        ++lost_;
        return true;
      }
      Node& node = nodes_[m.to];
      switch (m.kind) {
        case MsgKind::Elements: {
          node.black = true;  // Safra: receipt may reactivate; blacken
          if (!node.seen[m.from].insert(m.seq).second) {
            // Duplicate (network copy or retransmission): suppress so the
            // message counters stay balanced, but re-ack — the original
            // ack may be the thing that got lost.
            ++dup_suppressed_;
            ack(m.to, m.from, m.seq);
            return true;
          }
          for (Element& e : m.elements) node.shard.insert(std::move(e));
          --node.message_count;
          node.quiescent_rounds = 0;
          if (m.to == 0) verified_ = false;  // new material voids verification
          ack(m.to, m.from, m.seq);
          return true;
        }
        case MsgKind::Pull: {
          node.black = true;
          if (!node.seen[m.from].insert(m.seq).second) {
            ++dup_suppressed_;
          } else {
            --node.message_count;
            node.pull_pending = true;
          }
          ack(m.to, m.from, m.seq);
          return true;
        }
        case MsgKind::Ack: {
          // Control traffic: closes the retry loop, no Safra effect.
          auto it = std::find_if(
              node.outbox.begin(), node.outbox.end(),
              [&](const OutboxEntry& e) { return e.seq == m.seq; });
          if (it != node.outbox.end()) node.outbox.erase(it);
          return true;
        }
      }
      return true;
    });
    for (const PendingAck& a : pending_acks) send_ack(a.from, a.to, a.seq);
    std::erase_if(token_msgs_, [&](TokenMsg& m) {
      if (m.arrival_round > round_) return false;
      if (down(m.to)) return true;  // token dies; the watchdog regenerates
      if (m.token.gen != token_gen_) return true;  // stale generation
      nodes_[m.to].held_token = m.token;
      if (m.to == 0) token_idle_rounds_ = 0;
      return true;
    });
  }

  // --- phase 2: local chemistry ---
  void react() {
    const auto& stage = program_.stages().front();
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      node.fired_this_round = false;
      node.answered_pull_this_round = false;
      if (down(i)) continue;
      for (std::size_t k = 0; k < options_.fires_per_round; ++k) {
        bool fired = false;
        for (const Reaction& r : stage) {
          if (auto match = runtime::MatchPipeline::find(
                  node.shard, r, &node.rng, options_.eval_mode())) {
            const runtime::RecordCtx rctx =
                recording_.ctx(-1, -1, static_cast<std::int64_t>(i));
            runtime::MatchPipeline::commit(node.shard, *match,
                                           recording_ ? &rctx : nullptr);
            ++node.fires;
            fired = true;
            node.fired_this_round = true;
            break;
          }
        }
        if (!fired) break;
      }
      if (node.fired_this_round) {
        node.quiescent_rounds = 0;
      } else {
        ++node.quiescent_rounds;
      }
    }
    if (nodes_[0].fired_this_round) verified_ = false;
  }

  /// Picks and removes one random live element from a shard.
  std::optional<Element> take_random(Node& node) {
    if (node.shard.size() == 0) return std::nullopt;
    const Multiset snapshot = node.shard.to_multiset();
    const auto& elems = snapshot.elements();
    const Element chosen = elems[node.rng.bounded(elems.size())];
    // Remove one matching instance.
    Store fresh;
    bool skipped = false;
    for (const Element& e : elems) {
      if (!skipped && e == chosen) {
        skipped = true;
        continue;
      }
      fresh.insert(e);
    }
    node.shard = std::move(fresh);
    return chosen;
  }

  /// Re-sends overdue unacked transfers. A retransmission may race the
  /// token (the sender can be passive), so it blackens the sender — the
  /// same conservative rule EWD998 uses for restarts.
  void flush_retries(std::size_t i) {
    Node& node = nodes_[i];
    for (OutboxEntry& e : node.outbox) {
      if (e.next_retry_round > round_) continue;
      ++retransmissions_;
      node.black = true;
      transmit(i, e.to, e.kind, e.seq, e.elements);
      ++e.attempts;
      e.next_retry_round =
          round_ + (rtt_ << std::min(e.attempts, 6u));  // exponential backoff
    }
  }

  // --- phase 3: stirring and consolidation ---
  //
  // Every message here respects EWD998's premise so Safra stays sound:
  //   * stirring sends come from machines that fired this round (active);
  //   * consolidation is PULL-based: node 0 requests shards (its own counter
  //     is live at the termination decision, so its in-flight requests
  //     always show up as q + c_0 != 0), and responders send while
  //     activated by the request's receipt.
  // A passive node pushing its shard spontaneously would violate the
  // premise: its +1 could be snapshotted away and the initiator could
  // declare a clean lap with the shard still in flight (elements lost).
  // Retransmissions DO come from passive machines — that is why they
  // blacken the sender (see flush_retries).
  void communicate() {
    if (nodes_.size() == 1) return;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      if (down(i)) continue;
      flush_retries(i);
      if (node.pull_pending) {
        node.pull_pending = false;
        if (i != 0 && node.shard.size() > 0) {
          std::vector<Element> all = node.shard.to_multiset().elements();
          node.shard = Store{};
          node.answered_pull_this_round = true;  // receipt-activated
          send_reliable(i, 0, MsgKind::Elements, std::move(all));
        }
        continue;  // answering a pull supersedes stirring this round
      }
      if (node.fired_this_round) {
        // Active node: diffuse a few random elements (stir the solution).
        // With a label-affinity hint, stirring turns directed: a stray
        // element is routed to its class's home node (where its reaction
        // partners live), and an element already home stays put. Sends
        // still come only from active nodes, so EWD998's premise holds.
        for (std::size_t k = 0; k < options_.migrations_per_round; ++k) {
          if (node.shard.size() <= 1) break;
          auto e = take_random(node);
          if (!e) break;
          std::size_t peer = 0;
          if (const auto home = affinity_.home(*e); home && *home != i) {
            peer = *home;
          } else if (home) {
            node.shard.insert(std::move(*e));  // already co-located: keep
            continue;
          } else {
            peer = node.rng.bounded(nodes_.size() - 1);
            if (peer >= i) ++peer;  // uniform over the OTHER nodes
          }
          send_reliable(i, peer, MsgKind::Elements, {std::move(*e)});
        }
      }
    }
    // Collector: when node 0 has been quiet for a while, pull the other
    // shards in so any still-enabled cross-node match can assemble. The
    // pull is ARMED by collector activity (firing or receiving) and fires
    // once per quiescence episode — pulling on a timer forever would keep
    // blackening Safra laps and livelock the detection.
    if (down(0)) return;
    Node& collector = nodes_[0];
    if (collector.active_this_round() ||
        collector.quiescent_rounds == 0 /* received this round */) {
      pull_armed_ = true;
    }
    if (pull_armed_ && !collector.active_this_round() &&
        collector.quiescent_rounds >= options_.consolidate_after) {
      pull_armed_ = false;
      send_pull_burst();
    }
  }

  void send_pull_burst() {
    for (std::size_t peer = 1; peer < nodes_.size(); ++peer) {
      send_reliable(0, peer, MsgKind::Pull, {});
    }
  }

  // --- phase 4: Safra's termination detection ---
  void pass_tokens() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      if (down(i)) continue;  // a dead node forwards nothing
      if (node.held_token && node.held_token->gen != token_gen_) {
        node.held_token.reset();  // superseded by a regenerated token
      }
      if (!node.held_token) continue;
      // Hold the token while locally active; forward when passive.
      if (node.active_this_round()) continue;

      Token token = *node.held_token;
      if (i == 0 && token_in_flight_) {
        // Lap completed back at the initiator: decide or start a new lap.
        token_in_flight_ = false;
        ++laps_;
        const bool clean = !token.black && !node.black &&
                           token.count + node.message_count == 0;
        if (clean && !node.active_this_round()) {
          // A clean lap proves no computation and no messages — but not
          // that remote shards are empty of jointly-enabled matches. Before
          // declaring, run one VERIFICATION pull: gather every shard at the
          // collector. If the silence survives the pull (nothing arrived,
          // next clean lap), the fixed point is global. Any arrival resets
          // verification (deliver() zeroes quiescent_rounds, and
          // communicate() re-arms the periodic pull).
          if (!verified_ && nodes_.size() > 1) {
            verified_ = true;
            send_pull_burst();
          } else {
            terminated_ = true;
            return;
          }
        }
        token = Token{false, 0, token_gen_};  // fresh white lap
        node.black = false;
        // fall through to forward the fresh token
      }
      // Forward to the ring successor.
      if (i != 0) {
        token.count += node.message_count;
        if (node.black) token.black = true;
        node.black = false;
      }
      node.held_token.reset();
      token_in_flight_ = true;
      if (i == 0) token_idle_rounds_ = 0;
      send_token(i, (i + 1) % nodes_.size(), token);
    }
  }

  /// Token-loss recovery: the initiator counts rounds without the token in
  /// hand; past the timeout it declares the token eaten (crash, loss, or a
  /// severed ring) and issues a BLACK replacement under a new generation —
  /// black because the lap it replaces proves nothing, a new generation so
  /// a late-surfacing old token is discarded instead of double-counted.
  void token_watchdog() {
    // Only an active fault plan can eat a token; with a perfect network the
    // watchdog would just add spurious regenerations during long laps.
    if (terminated_ || nodes_.size() == 1 || !options_.faults.any()) return;
    Node& initiator = nodes_[0];
    const bool holds_current =
        initiator.held_token && initiator.held_token->gen == token_gen_;
    if (holds_current || down(0)) {
      token_idle_rounds_ = 0;
      return;
    }
    if (++token_idle_rounds_ <= token_timeout_) return;
    token_idle_rounds_ = 0;
    ++token_gen_;
    ++token_regens_;
    initiator.held_token = Token{true, 0, token_gen_};
    token_in_flight_ = false;
  }

  /// Early-stop settlement: every LOGICAL element transfer that is still
  /// unacked lives in some sender's outbox (the payload is kept until the
  /// ack lands), and the receiver's `seen` filter says whether it was
  /// already delivered. The simulator has global knowledge, so the drain a
  /// real deployment would run (retry until acked) collapses into one
  /// deterministic pass: deliver each undelivered payload straight into the
  /// receiver's shard, drop the rest. No element is lost on the wire and
  /// none is double-counted, making the partial multiset exact.
  void settle_in_flight() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      for (OutboxEntry& e : nodes_[i].outbox) {
        if (e.kind != MsgKind::Elements) continue;  // Pull: control only
        Node& receiver = nodes_[e.to];
        if (!receiver.seen[i].insert(e.seq).second) continue;  // delivered
        for (Element& el : e.elements) receiver.shard.insert(std::move(el));
      }
      nodes_[i].outbox.clear();
    }
    wires_.clear();
    token_msgs_.clear();
  }

  // --- phase 5: replication ---
  // Synchronous primary-backup: each node ships its end-of-round state to
  // its ring successor. The simulation applies it at the round boundary, so
  // a replica is never behind the state a crash destroys — the property
  // that makes recovery exact (no element lost, none resurrected).
  void checkpoint() {
    if (!options_.faults.crashes_possible() || terminated_) return;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (down(i)) continue;  // frozen state was checkpointed pre-crash
      if (nodes_[i].shard.version() != replica_shard_versions_[i]) {
        replica_shard_versions_[i] = nodes_[i].shard.version();
        ++checkpoints_;
      }
      replicas_[i] = snapshot_of(nodes_[i]);
    }
  }

  const gamma::Program& program_;
  ClusterOptions options_;
  FaultInjector injector_;
  runtime::EngineTelemetry telemetry_;
  runtime::RunRecording recording_;
  // label -> home-node routing (a cluster node IS a shard).
  runtime::ShardMap affinity_;
  std::vector<Node> nodes_;
  std::vector<Node> replicas_;  // replicas_[i] lives on node (i+1) % N
  std::vector<std::uint64_t> replica_shard_versions_;
  std::vector<Wire> wires_;
  std::vector<TokenMsg> token_msgs_;
  std::size_t round_ = 0;
  std::size_t rtt_ = 4;
  std::size_t token_timeout_ = 64;
  std::size_t token_idle_rounds_ = 0;
  std::uint64_t token_gen_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t laps_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t token_regens_ = 0;
  bool token_in_flight_ = false;
  bool pull_armed_ = true;
  bool verified_ = false;
  bool terminated_ = false;
};

}  // namespace

ClusterResult run_distributed(const gamma::Program& program,
                              const Multiset& initial,
                              const ClusterOptions& options) {
  Simulation sim(program, initial, options);
  return sim.run();
}

}  // namespace gammaflow::distrib
