#include "gammaflow/distrib/cluster.hpp"

#include <deque>
#include <optional>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/gamma/store.hpp"

namespace gammaflow::distrib {

using gamma::Element;
using gamma::Multiset;
using gamma::Reaction;
using gamma::Store;

namespace {

struct ElementMsg {
  std::size_t to;
  std::size_t arrival_round;
  std::vector<Element> elements;
};

/// Collector-driven consolidation request (see communicate()).
struct PullMsg {
  std::size_t to;
  std::size_t arrival_round;
};

struct Token {
  bool black = false;
  std::int64_t count = 0;
};

struct TokenMsg {
  std::size_t to;
  std::size_t arrival_round;
  Token token;
};

struct Node {
  Store shard;
  Rng rng{0};
  // Safra state.
  bool black = false;              // received a message since last token pass
  std::int64_t message_count = 0;  // sent - received (element messages)
  // Local activity.
  bool fired_this_round = false;
  bool answered_pull_this_round = false;  // receipt-activated send (EWD-legal)
  bool pull_pending = false;
  std::size_t quiescent_rounds = 0;
  std::uint64_t fires = 0;

  [[nodiscard]] bool active_this_round() const noexcept {
    return fired_this_round || answered_pull_this_round;
  }
  // Token in hand, waiting for passivity to forward.
  std::optional<Token> held_token;
};

class Simulation {
 public:
  Simulation(const gamma::Program& program, const Multiset& initial,
             const ClusterOptions& options)
      : program_(program), options_(options), nodes_(options.nodes) {
    if (program.stage_count() > 1) {
      throw ProgramError(
          "distributed execution supports single-stage programs (the global "
          "termination of one stage is exactly what Safra detects)");
    }
    if (options_.nodes == 0) throw ProgramError("cluster needs >= 1 node");
    Rng seeder(options.seed);
    for (Node& n : nodes_) n.rng = seeder.split();

    // Initial placement.
    std::size_t rr = 0;
    for (const Element& e : initial) {
      std::size_t target = 0;
      switch (options_.placement) {
        case Placement::Hash: target = e.hash() % options_.nodes; break;
        case Placement::RoundRobin: target = rr++ % options_.nodes; break;
        case Placement::Single: target = 0; break;
      }
      nodes_[target].shard.insert(e);
    }
  }

  ClusterResult run() {
    // Token starts at node 0 (the initiator is also the consolidation
    // collector, so it is the natural place to decide termination).
    nodes_[0].held_token = Token{};

    while (!terminated_) {
      if (round_ >= options_.max_rounds) {
        throw EngineError("distributed run exceeded max_rounds=" +
                          std::to_string(options_.max_rounds));
      }
      ++round_;
      deliver();
      react();
      communicate();
      pass_tokens();
    }

    ClusterResult result;
    result.rounds = round_;
    result.migrations = migrations_;
    result.messages = messages_;
    result.token_laps = laps_;
    for (Node& n : nodes_) {
      result.fires += n.fires;
      result.fires_by_node.push_back(n.fires);
      result.final_shard_sizes.push_back(n.shard.size());
      result.final_multiset.add(n.shard.to_multiset());
    }
    return result;
  }

 private:
  // --- phase 1: deliver messages due this round ---
  void deliver() {
    std::erase_if(element_msgs_, [&](ElementMsg& m) {
      if (m.arrival_round > round_) return false;
      Node& node = nodes_[m.to];
      for (Element& e : m.elements) node.shard.insert(std::move(e));
      --node.message_count;
      node.black = true;  // Safra: receipt may reactivate; blacken
      node.quiescent_rounds = 0;
      if (m.to == 0) verified_ = false;  // new material voids verification
      return true;
    });
    std::erase_if(pull_msgs_, [&](PullMsg& m) {
      if (m.arrival_round > round_) return false;
      Node& node = nodes_[m.to];
      --node.message_count;
      node.black = true;
      node.pull_pending = true;
      return true;
    });
    std::erase_if(token_msgs_, [&](TokenMsg& m) {
      if (m.arrival_round > round_) return false;
      nodes_[m.to].held_token = m.token;
      return true;
    });
  }

  // --- phase 2: local chemistry ---
  void react() {
    const auto& stage = program_.stages().front();
    for (Node& node : nodes_) {
      node.fired_this_round = false;
      node.answered_pull_this_round = false;
      for (std::size_t k = 0; k < options_.fires_per_round; ++k) {
        bool fired = false;
        for (const Reaction& r : stage) {
          if (auto match = gamma::find_match(node.shard, r, &node.rng)) {
            gamma::commit(node.shard, *match);
            ++node.fires;
            fired = true;
            node.fired_this_round = true;
            break;
          }
        }
        if (!fired) break;
      }
      if (node.fired_this_round) {
        node.quiescent_rounds = 0;
      } else {
        ++node.quiescent_rounds;
      }
    }
    if (nodes_[0].fired_this_round) verified_ = false;
  }

  void send_elements(std::size_t from, std::size_t to,
                     std::vector<Element> elements) {
    if (elements.empty() || to == from) return;
    ++nodes_[from].message_count;
    ++messages_;
    migrations_ += elements.size();
    element_msgs_.push_back(
        ElementMsg{to, round_ + options_.latency, std::move(elements)});
  }

  /// Picks and removes one random live element from a shard.
  std::optional<Element> take_random(Node& node) {
    if (node.shard.size() == 0) return std::nullopt;
    // Draw via the arity-agnostic route: snapshot is too costly; sample slot
    // ids until a live one is found (bounded: live/slots ratio stays sane
    // because the store reuses freed slots first).
    const Multiset snapshot = node.shard.to_multiset();
    const auto& elems = snapshot.elements();
    const Element chosen =
        elems[node.rng.bounded(elems.size())];
    // Remove one matching instance.
    Store fresh;
    bool skipped = false;
    for (const Element& e : elems) {
      if (!skipped && e == chosen) {
        skipped = true;
        continue;
      }
      fresh.insert(e);
    }
    node.shard = std::move(fresh);
    return chosen;
  }

  // --- phase 3: stirring and consolidation ---
  //
  // Every message here respects EWD998's premise so Safra stays sound:
  //   * stirring sends come from machines that fired this round (active);
  //   * consolidation is PULL-based: node 0 requests shards (its own counter
  //     is live at the termination decision, so its in-flight requests
  //     always show up as q + c_0 != 0), and responders send while
  //     activated by the request's receipt.
  // A passive node pushing its shard spontaneously would violate the
  // premise: its +1 could be snapshotted away and the initiator could
  // declare a clean lap with the shard still in flight (elements lost).
  void communicate() {
    if (nodes_.size() == 1) return;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      if (node.pull_pending) {
        node.pull_pending = false;
        if (i != 0 && node.shard.size() > 0) {
          std::vector<Element> all = node.shard.to_multiset().elements();
          node.shard = Store{};
          node.answered_pull_this_round = true;  // receipt-activated
          send_elements(i, 0, std::move(all));
        }
        continue;  // answering a pull supersedes stirring this round
      }
      if (node.fired_this_round) {
        // Active node: diffuse a few random elements (stir the solution).
        for (std::size_t k = 0; k < options_.migrations_per_round; ++k) {
          if (node.shard.size() <= 1) break;
          std::size_t peer = node.rng.bounded(nodes_.size() - 1);
          if (peer >= i) ++peer;  // uniform over the OTHER nodes
          if (auto e = take_random(node)) {
            send_elements(i, peer, {std::move(*e)});
          }
        }
      }
    }
    // Collector: when node 0 has been quiet for a while, pull the other
    // shards in so any still-enabled cross-node match can assemble. The
    // pull is ARMED by collector activity (firing or receiving) and fires
    // once per quiescence episode — pulling on a timer forever would keep
    // blackening Safra laps and livelock the detection.
    Node& collector = nodes_[0];
    if (collector.active_this_round() ||
        collector.quiescent_rounds == 0 /* received this round */) {
      pull_armed_ = true;
    }
    if (pull_armed_ && !collector.active_this_round() &&
        collector.quiescent_rounds >= options_.consolidate_after) {
      pull_armed_ = false;
      send_pull_burst();
    }
  }

  void send_pull_burst() {
    Node& collector = nodes_[0];
    for (std::size_t peer = 1; peer < nodes_.size(); ++peer) {
      ++collector.message_count;
      ++messages_;
      pull_msgs_.push_back(PullMsg{peer, round_ + options_.latency});
    }
  }

  // --- phase 4: Safra's termination detection ---
  void pass_tokens() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      if (!node.held_token) continue;
      // Hold the token while locally active; forward when passive.
      if (node.active_this_round()) continue;

      Token token = *node.held_token;
      if (i == 0 && token_in_flight_) {
        // Lap completed back at the initiator: decide or start a new lap.
        token_in_flight_ = false;
        ++laps_;
        const bool clean = !token.black && !node.black &&
                           token.count + node.message_count == 0;
        if (clean && !node.active_this_round()) {
          // A clean lap proves no computation and no messages — but not
          // that remote shards are empty of jointly-enabled matches. Before
          // declaring, run one VERIFICATION pull: gather every shard at the
          // collector. If the silence survives the pull (nothing arrived,
          // next clean lap), the fixed point is global. Any arrival resets
          // verification (deliver() zeroes quiescent_rounds, and
          // communicate() re-arms the periodic pull).
          if (!verified_ && nodes_.size() > 1) {
            verified_ = true;
            send_pull_burst();
          } else {
            terminated_ = true;
            return;
          }
        }
        token = Token{};  // fresh white lap
        node.black = false;
        // fall through to forward the fresh token
      }
      // Forward to the ring successor.
      if (i != 0) {
        token.count += node.message_count;
        if (node.black) token.black = true;
        node.black = false;
      }
      node.held_token.reset();
      token_in_flight_ = true;
      token_msgs_.push_back(
          TokenMsg{(i + 1) % nodes_.size(), round_ + options_.latency, token});
      if (nodes_.size() == 1) {
        // Degenerate ring: the token returns to the only node immediately.
      }
    }
  }

  const gamma::Program& program_;
  const ClusterOptions& options_;
  std::vector<Node> nodes_;
  std::vector<ElementMsg> element_msgs_;
  std::vector<PullMsg> pull_msgs_;
  std::vector<TokenMsg> token_msgs_;
  std::size_t round_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t laps_ = 0;
  bool token_in_flight_ = false;
  bool pull_armed_ = true;
  bool verified_ = false;
  bool terminated_ = false;
};

}  // namespace

ClusterResult run_distributed(const gamma::Program& program,
                              const Multiset& initial,
                              const ClusterOptions& options) {
  Simulation sim(program, initial, options);
  return sim.run();
}

}  // namespace gammaflow::distrib
