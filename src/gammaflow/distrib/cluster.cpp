#include "gammaflow/distrib/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/distrib/wal.hpp"
#include "gammaflow/gamma/store.hpp"
#include "gammaflow/obs/telemetry.hpp"
#include "gammaflow/runtime/match_pipeline.hpp"
#include "gammaflow/runtime/sharded_store.hpp"
#include "gammaflow/runtime/step_loop.hpp"

namespace gammaflow::distrib {

using gamma::Element;
using gamma::Multiset;
using gamma::Reaction;
using gamma::Store;

void ClusterOptions::validate() const {
  if (nodes == 0) throw ProgramError("cluster needs >= 1 node");
  if (latency == 0) {
    throw ProgramError(
        "ClusterOptions::latency must be >= 1 (a zero-latency message would "
        "arrive in the round it was sent, breaking the round phases)");
  }
  if (fires_per_round == 0) {
    throw ProgramError(
        "ClusterOptions::fires_per_round must be >= 1 (a cluster that never "
        "fires locally livelocks instead of reaching the fixed point)");
  }
  if (replication_factor == 0) {
    throw ProgramError(
        "ClusterOptions::replication_factor must be >= 1 (zero holders "
        "means crashes lose the shard)");
  }
  if (nodes > 1 && replication_factor >= nodes) {
    throw ProgramError("ClusterOptions::replication_factor must be < nodes "
                       "(a node cannot checkpoint to itself)");
  }
  if (checkpoint_every == 0) {
    throw ProgramError("ClusterOptions::checkpoint_every must be >= 1");
  }
  if (wal_snapshot_every == 0) {
    throw ProgramError("ClusterOptions::wal_snapshot_every must be >= 1");
  }
  if (resume && wal_dir.empty()) {
    throw ProgramError(
        "ClusterOptions::resume needs wal_dir (there is nothing to restore "
        "from without a write-ahead log)");
  }
  faults.validate();
  faults.membership.validate(nodes);
}

namespace {

/// Reliable-transfer kinds. Elements and Pull are LOGICAL messages (counted
/// by Safra, sequence-numbered, acked, retried); Ack is control traffic.
enum class MsgKind : std::uint8_t { Elements, Pull, Ack };

/// Membership state of a node slot. Members run chemistry and own labels;
/// a Draining node is still on the Safra ring (its counters stay in the
/// global sum) but out of the ownership map: it ships its shard away,
/// forwards anything still arriving, and deactivates when nothing in the
/// whole cluster still targets it. Inactive slots are spares (future joins)
/// or completed leaves.
enum class NState : std::uint8_t { Inactive, Member, Draining };

/// One physical message copy in the simulated network. Loss drops it,
/// duplication enqueues a second one, reordering inflates arrival_round.
struct Wire {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t arrival_round = 0;
  MsgKind kind = MsgKind::Elements;
  std::uint64_t seq = 0;  // sender-scoped id; an Ack echoes the acked seq
  std::vector<Element> elements;
};

struct Token {
  bool black = false;
  std::int64_t count = 0;
  std::uint64_t gen = 0;  // regeneration stamp; stale tokens are discarded
};

struct TokenMsg {
  std::size_t to = 0;
  std::size_t arrival_round = 0;
  Token token;
};

/// An unacked logical transfer, retried with exponential backoff. Keeping
/// the element payload here is what makes a lost shard recoverable: the
/// data survives at the sender until the receiver confirms it.
struct OutboxEntry {
  std::size_t to = 0;
  std::uint64_t seq = 0;
  MsgKind kind = MsgKind::Elements;
  std::vector<Element> elements;
  std::size_t next_retry_round = 0;
  unsigned attempts = 0;
};

struct Node {
  Store shard;
  Rng rng{0};
  // Safra state.
  bool black = false;              // received a message since last token pass
  std::int64_t message_count = 0;  // sent - received (logical messages)
  // Local activity.
  bool fired_this_round = false;
  bool answered_pull_this_round = false;  // receipt-activated send (EWD-legal)
  bool pull_pending = false;
  std::size_t quiescent_rounds = 0;
  std::uint64_t fires = 0;
  // Token in hand, waiting for passivity to forward.
  std::optional<Token> held_token;
  // Reliable-transfer state (all checkpointed with the shard, so a restart
  // resumes retries and keeps the duplicate filter).
  std::uint64_t next_seq = 0;
  std::vector<OutboxEntry> outbox;
  std::unordered_map<std::size_t, std::unordered_set<std::uint64_t>> seen;
  // Crash state: down (dropping everything) until this round; 0 = up.
  std::size_t down_until = 0;

  [[nodiscard]] bool active_this_round() const noexcept {
    return fired_this_round || answered_pull_this_round;
  }
};

class Simulation {
 public:
  Simulation(const gamma::Program& program, const Multiset& initial,
             const ClusterOptions& options)
      : program_(program),
        options_(options),
        injector_(options.faults, options.seed),
        telemetry_(options, "distrib"),
        recording_(options, "cluster", "distrib"),
        affinity_(std::unordered_map<std::string, std::size_t>(
                      options.label_affinity.begin(),
                      options.label_affinity.end()),
                  options.nodes),
        capacity_(options.nodes + options.faults.membership.joins.size()),
        nodes_(options.nodes + options.faults.membership.joins.size()),
        state_(capacity_, NState::Inactive),
        membership_on_(options.faults.membership.any()),
        churn_rng_(options.seed ^ 0x5bd1e995c4ceb9feULL),
        reseeder_(options.seed ^ 0x2545f4914f6cdd1dULL) {
    options_.validate();
    if (program.stage_count() > 1) {
      throw ProgramError(
          "distributed execution supports single-stage programs (the global "
          "termination of one stage is exactly what Safra detects)");
    }
    for (const FaultPlan::Crash& c : options_.faults.crashes) {
      if (c.node >= capacity_) {
        throw ProgramError("FaultPlan schedules a crash of node " +
                           std::to_string(c.node) + " but the cluster has " +
                           std::to_string(capacity_) +
                           " node slot(s) (nodes + scheduled joins)");
      }
    }
    for (std::size_t i = 0; i < options_.nodes; ++i) state_[i] = NState::Member;
    pending_joins_ = options_.faults.membership.joins;
    pending_leaves_ = options_.faults.membership.leaves;
    previously_left_.assign(capacity_, false);
    Rng seeder(options.seed);
    for (Node& n : nodes_) n.rng = seeder.split();

    // Round-trip estimate for the retry timer: send + ack, plus slack for
    // the phase boundaries and reorder jitter.
    rtt_ = 2 * options_.latency + 2 + options_.faults.reorder_jitter;
    token_timeout_ =
        options_.faults.token_timeout != 0
            ? options_.faults.token_timeout
            : 4 * capacity_ *
                      (options_.latency + options_.faults.reorder_jitter + 1) +
                  options_.faults.crash_downtime + 16;

    wal_on_ = !options_.wal_dir.empty();
    if (wal_on_) {
      std::filesystem::create_directories(options_.wal_dir);
      wal_.resize(capacity_);
      wal_rounds_.assign(capacity_, 0);
    }

    if (options_.resume) {
      load_resume_state();
    } else {
      place_initial(initial);
    }
    epoch_map_ = runtime::EpochShardMap(member_list(), epoch_);

    Multiset placed;
    for (Node& n : nodes_) placed.add(n.shard.to_multiset());
    recording_.begin(placed);

    // Seed the replicas with the placed state so a crash in the very first
    // rounds restores the initial shard. Holders default to the R ring
    // successors; checkpoint() recomputes them as the ring changes.
    if (options_.faults.crashes_possible()) {
      replicas_.reserve(capacity_);
      replica_shard_versions_.reserve(capacity_);
      for (const Node& n : nodes_) {
        replicas_.push_back(snapshot_of(n));
        replica_shard_versions_.push_back(n.shard.version());
      }
      replica_rounds_.assign(capacity_, round_);
      holders_.resize(capacity_);
      for (std::size_t i = 0; i < capacity_; ++i) {
        holders_[i] = ring_successors(i, options_.replication_factor);
      }
    }
  }

  ClusterResult run();

 private:
  // --- membership & ring helpers ---
  [[nodiscard]] std::vector<std::size_t> member_list() const {
    std::vector<std::size_t> m;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (state_[i] == NState::Member) m.push_back(i);
    }
    return m;
  }
  [[nodiscard]] std::size_t ring_size() const noexcept {
    std::size_t n = 0;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (state_[i] != NState::Inactive) ++n;
    }
    return n;
  }
  [[nodiscard]] std::size_t ring_next(std::size_t i) const noexcept {
    std::size_t j = (i + 1) % capacity_;
    while (state_[j] == NState::Inactive && j != i) j = (j + 1) % capacity_;
    return j;
  }
  [[nodiscard]] std::vector<std::size_t> ring_successors(
      std::size_t i, std::size_t r) const {
    std::vector<std::size_t> out;
    for (std::size_t j = ring_next(i); j != i && out.size() < r;
         j = ring_next(j)) {
      out.push_back(j);
    }
    return out;
  }

  [[nodiscard]] bool down(std::size_t i) const noexcept {
    return nodes_[i].down_until > round_;
  }

  /// Replica image of a node: full protocol state minus the token (the
  /// token is transient network property; resurrecting it from a backup
  /// would forge a second token of the same generation).
  [[nodiscard]] static Node snapshot_of(const Node& n) {
    Node snap = n;
    snap.held_token.reset();
    return snap;
  }

  void place_initial(const Multiset& initial);
  void load_resume_state();
  [[nodiscard]] WalNodeState wal_state_of(std::size_t i,
                                          std::uint64_t round) const;
  void install_wal_state(std::size_t i, WalNodeState st);

  void crash_and_recover();
  void crash(std::size_t i, std::size_t downtime);
  void try_restore(std::size_t i);
  void membership();
  void join_node(std::size_t j);
  void leave_node(std::size_t l);
  void deactivate(std::size_t l);
  [[nodiscard]] bool drained(std::size_t l) const;
  void bump_epoch();
  void rebalance(const runtime::EpochShardMap& old_map);

  void send_reliable(std::size_t from, std::size_t to, MsgKind kind,
                     std::vector<Element> elements);
  void send_ack(std::size_t from, std::size_t to, std::uint64_t seq);
  void transmit(std::size_t from, std::size_t to, MsgKind kind,
                std::uint64_t seq, std::vector<Element> elements);
  void send_token(std::size_t from, std::size_t to, const Token& token);

  void deliver();
  void react();
  std::optional<Element> take_random(Node& node);
  void flush_retries(std::size_t i);
  void communicate();
  void send_pull_burst();
  void pass_tokens();
  void token_watchdog();
  void settle_in_flight();
  void checkpoint();
  void wal_roundmark();
  void wal_roundmark_manifest();

  [[nodiscard]] bool wal_live(std::size_t i) const {
    return wal_on_ && wal_[i].is_open() && state_[i] != NState::Inactive;
  }

  const gamma::Program& program_;
  ClusterOptions options_;
  FaultInjector injector_;
  runtime::EngineTelemetry telemetry_;
  runtime::RunRecording recording_;
  // label -> home-node routing (a cluster node IS a shard).
  runtime::ShardMap affinity_;
  std::size_t capacity_;
  std::vector<Node> nodes_;
  std::vector<NState> state_;
  bool membership_on_ = false;
  Rng churn_rng_;  // random-churn target picks (own stream: see FaultInjector)
  Rng reseeder_;   // chemistry RNGs for rejoining / WAL-restored nodes
  std::vector<MembershipPlan::Event> pending_joins_;
  std::vector<MembershipPlan::Event> pending_leaves_;
  std::vector<bool> previously_left_;  // rejoin pool for random churn
  runtime::EpochShardMap epoch_map_;
  std::uint64_t epoch_ = 0;
  // Sum of departed nodes' Safra counters, added at every lap decision.
  // Kept outside the Node array so a crash of the initiator can't erase it.
  std::int64_t residual_count_ = 0;
  std::vector<Node> replicas_;  // replicas_[i] lives at holders_[i]
  std::vector<std::uint64_t> replica_shard_versions_;
  std::vector<std::uint64_t> replica_rounds_;
  std::vector<std::vector<std::size_t>> holders_;
  bool wal_on_ = false;
  std::vector<WalWriter> wal_;
  std::vector<std::uint64_t> wal_rounds_;  // last flushed round marker
  std::vector<Wire> wires_;
  std::vector<TokenMsg> token_msgs_;
  std::size_t round_ = 0;
  std::size_t rtt_ = 4;
  std::size_t token_timeout_ = 64;
  std::size_t token_idle_rounds_ = 0;
  std::uint64_t token_gen_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t laps_ = 0;
  std::uint64_t acks_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t token_regens_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t rebalances_ = 0;
  std::uint64_t labels_moved_ = 0;
  std::uint64_t replica_waits_ = 0;
  std::uint64_t wal_replays_ = 0;
  bool token_in_flight_ = false;
  bool pull_armed_ = true;
  bool verified_ = false;
  bool terminated_ = false;
};

void Simulation::place_initial(const Multiset& initial) {
  // Initial placement. Elements with a conflict-class affinity go to their
  // class's home node; the rest follow the configured policy.
  std::size_t rr = 0;
  for (const Element& e : initial) {
    std::size_t target = 0;
    if (const auto home = affinity_.home(e)) {
      target = *home;
    } else {
      switch (options_.placement) {
        case Placement::Hash: target = e.hash() % options_.nodes; break;
        case Placement::RoundRobin: target = rr++ % options_.nodes; break;
        case Placement::Single: target = 0; break;
      }
    }
    nodes_[target].shard.insert(e);
  }
  if (wal_on_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      wal_[i].open(wal_node_path(options_.wal_dir, i), i, /*fresh=*/true);
      if (state_[i] != NState::Inactive) {
        wal_[i].snapshot(wal_state_of(i, round_));
        wal_[i].log_round(round_);
      }
    }
    wal_roundmark_manifest();
  }
}

void Simulation::load_resume_state() {
  const WalManifest m = read_manifest(options_.wal_dir);
  if (!m.valid) {
    throw ProgramError("distrib --resume: no intact manifest in " +
                       options_.wal_dir);
  }
  if (m.initial_nodes != options_.nodes || m.states.size() != capacity_) {
    throw ProgramError(
        "distrib --resume: cluster shape mismatch (the WAL was written by a "
        "run with different --nodes/--join schedules)");
  }
  round_ = m.round;
  epoch_ = m.epoch;
  token_gen_ = m.token_gen + 1;  // never reuse a generation across restarts
  for (std::size_t i = 0; i < capacity_; ++i) {
    switch (m.states[i]) {
      case 'M': state_[i] = NState::Member; break;
      case 'D': state_[i] = NState::Draining; break;
      default: state_[i] = NState::Inactive; break;
    }
    // A restored ring with a hole must run membership-aware even when the
    // resuming invocation passed no churn schedule: legacy uniform stirring
    // would route elements at the Inactive slot forever (drop, retry, never
    // ack — Safra can then never balance).
    if (state_[i] != NState::Member) membership_on_ = true;
  }
  // Scheduled events at or before the restored round already happened.
  std::erase_if(pending_joins_, [&](const MembershipPlan::Event& e) {
    return e.round <= round_;
  });
  std::erase_if(pending_leaves_, [&](const MembershipPlan::Event& e) {
    return e.round <= round_;
  });

  // Replay every node's WAL (including Inactive slots with a log: their
  // sequence-number watermark must survive for a later rejoin).
  std::vector<WalPendingSend> pending;       // flattened, with the sender
  std::vector<std::size_t> pending_sender;
  for (std::size_t i = 0; i < capacity_; ++i) {
    WalNodeState st = replay_node_wal(wal_node_path(options_.wal_dir, i));
    if (!st.valid) {
      if (state_[i] != NState::Inactive) {
        throw ProgramError("distrib --resume: node " + std::to_string(i) +
                           " has no intact WAL in " + options_.wal_dir);
      }
      continue;
    }
    for (WalPendingSend& p : st.pending) {
      pending_sender.push_back(i);
      pending.push_back(std::move(p));
    }
    st.pending.clear();
    install_wal_state(i, std::move(st));
    ++wal_replays_;
  }

  // Global settlement: the simulator holds every surviving WAL at once, so
  // the drain a real cluster would run (retry until acked) collapses into
  // one pass — deliver each pending transfer its receiver has not already
  // seen, then zero the Safra counters (nothing is in flight any more).
  for (std::size_t k = 0; k < pending.size(); ++k) {
    const std::size_t from = pending_sender[k];
    WalPendingSend& p = pending[k];
    if (p.to >= capacity_) continue;
    Node& receiver = nodes_[p.to];
    if (!receiver.seen[from].insert(p.seq).second) continue;  // delivered
    if (p.kind == 1) {  // Pull
      if (state_[p.to] == NState::Member) receiver.pull_pending = true;
      continue;
    }
    if (state_[p.to] != NState::Inactive) {
      for (Element& e : p.elements) receiver.shard.insert(std::move(e));
    } else {
      // Receiver left between the sender's marker and the kill: re-route
      // to the collector (any live node converges; 0 is always a member).
      for (Element& e : p.elements) nodes_[0].shard.insert(std::move(e));
    }
  }
  for (std::size_t i = 0; i < capacity_; ++i) {
    nodes_[i].message_count = 0;
    nodes_[i].outbox.clear();
    nodes_[i].black = true;
    // Sequence watermark: a receiver may have seen sends the sender's torn
    // WAL forgot; never let the sender reuse those numbers.
    for (const auto& [from, seqs] : nodes_[i].seen) {
      if (from >= capacity_ || seqs.empty()) continue;
      const std::uint64_t top = *std::max_element(seqs.begin(), seqs.end());
      nodes_[from].next_seq = std::max(nodes_[from].next_seq, top + 1);
    }
  }

  // Reopen the logs in append mode, then compact: the settled restart state
  // becomes the new replay prefix (and records the settlement durably).
  for (std::size_t i = 0; i < capacity_; ++i) {
    const std::string path = wal_node_path(options_.wal_dir, i);
    const bool fresh = !std::filesystem::exists(path);
    wal_[i].open(path, i, fresh);
    wal_[i].compact(wal_state_of(i, round_));
    wal_rounds_[i] = round_;
  }
  wal_roundmark_manifest();
}

void Simulation::install_wal_state(std::size_t i, WalNodeState st) {
  Node n;
  for (const Element& e : st.shard) n.shard.insert(e);
  n.next_seq = st.next_seq;
  n.message_count = st.message_count;
  n.pull_pending = st.pull_pending;
  for (auto& [from, seqs] : st.seen) {
    n.seen[from] = std::unordered_set<std::uint64_t>(seqs.begin(), seqs.end());
  }
  for (WalPendingSend& p : st.pending) {
    n.outbox.push_back(OutboxEntry{
        p.to, p.seq, p.kind == 1 ? MsgKind::Pull : MsgKind::Elements,
        std::move(p.elements), round_ + 1, 0});
  }
  n.black = true;
  n.rng = reseeder_.split();
  nodes_[i] = std::move(n);
}

ClusterResult Simulation::run() {
  runtime::StepLoop loop(options_, options_.max_rounds, "distributed run",
                         "max_rounds");
  // The simulation is single-threaded; one recorder carries a span per
  // round (arg = fires so far) so `--trace-out` shows the round cadence.
  obs::ThreadRecorder* const rec = telemetry_.recorder("distrib-sim");
  // Token starts at node 0 (the initiator is also the consolidation
  // collector, so it is the natural place to decide termination).
  nodes_[0].held_token = Token{options_.resume, 0, token_gen_};

  while (!terminated_) {
    // Cancel/deadline, then the round budget (EngineError under Throw).
    // On a cooperative stop the chemistry/stirring/token phases end, but
    // unacked in-flight transfers are settled first so the partial
    // multiset is exact (see settle_in_flight).
    if (loop.should_stop() || !loop.admit(round_)) {
      settle_in_flight();
      break;
    }
    ++round_;
    obs::Span round_span(telemetry_.sink(), rec, "round");
    const auto round_t0 = std::chrono::steady_clock::now();
    crash_and_recover();
    membership();
    deliver();
    react();
    communicate();
    pass_tokens();
    token_watchdog();
    checkpoint();
    wal_roundmark();
    std::uint64_t fires_so_far = 0;
    for (const Node& n : nodes_) fires_so_far += n.fires;
    round_span.set_arg(fires_so_far);
    if (obs::Telemetry* tel = telemetry_.sink()) {
      const auto dt = std::chrono::steady_clock::now() - round_t0;
      tel->stats().observe_hist(
          "distrib.round_us",
          std::chrono::duration<double, std::micro>(dt).count());
    }
    // One journal round per cluster round. The snapshot is the union of
    // live shards; elements on the wire reappear when delivered (the
    // delta-vs-last-kept encoding keeps replay exact regardless).
    if (recording_) {
      Multiset all;
      for (Node& n : nodes_) all.add(n.shard.to_multiset());
      recording_.round(all);
    }
  }

  ClusterResult result;
  result.outcome = loop.outcome();
  result.rounds = round_;
  result.migrations = migrations_;
  result.messages = messages_;
  result.token_laps = laps_;
  result.acks = acks_;
  result.retransmissions = retransmissions_;
  result.messages_lost = lost_;
  result.messages_duplicated = duplicated_;
  result.messages_delayed = delayed_;
  result.duplicates_suppressed = dup_suppressed_;
  result.crashes = crashes_;
  result.recoveries = recoveries_;
  result.checkpoints = checkpoints_;
  result.token_regenerations = token_regens_;
  result.epochs = epochs_;
  result.joins = joins_;
  result.leaves = leaves_;
  result.rebalances = rebalances_;
  result.labels_moved = labels_moved_;
  result.replica_waits = replica_waits_;
  result.wal_replays = wal_replays_;
  for (const WalWriter& w : wal_) {
    result.wal_bytes += w.bytes();
    result.wal_records += w.records();
    result.wal_compactions += w.compactions();
  }
  for (Node& n : nodes_) {
    result.fires += n.fires;
    result.fires_by_node.push_back(n.fires);
    result.final_shard_sizes.push_back(n.shard.size());
    result.final_multiset.add(n.shard.to_multiset());
  }
  if (obs::Telemetry* tel = telemetry_.sink()) {
    auto& stats = tel->stats();
    stats.count("distrib.rounds", result.rounds);
    stats.count("distrib.fires", result.fires);
    stats.count("distrib.messages", result.messages);
    stats.count("distrib.migrations", result.migrations);
    stats.count("distrib.token_laps", result.token_laps);
    stats.count("distrib.acks", result.acks);
    stats.count("distrib.retransmissions", result.retransmissions);
    stats.count("distrib.messages_lost", result.messages_lost);
    stats.count("distrib.messages_duplicated", result.messages_duplicated);
    stats.count("distrib.messages_delayed", result.messages_delayed);
    stats.count("distrib.duplicates_suppressed",
                result.duplicates_suppressed);
    stats.count("distrib.crashes", result.crashes);
    stats.count("distrib.recoveries", result.recoveries);
    stats.count("distrib.checkpoints", result.checkpoints);
    stats.count("distrib.token_regenerations", result.token_regenerations);
    stats.count("distrib.epochs", result.epochs);
    stats.count("distrib.joins", result.joins);
    stats.count("distrib.leaves", result.leaves);
    stats.count("distrib.rebalances", result.rebalances);
    stats.count("distrib.labels_moved", result.labels_moved);
    stats.count("distrib.replica_waits", result.replica_waits);
    stats.count("distrib.wal_bytes", result.wal_bytes);
    stats.count("distrib.wal_records", result.wal_records);
    stats.count("distrib.wal_compactions", result.wal_compactions);
    stats.count("distrib.wal_replays", result.wal_replays);
    for (const std::size_t s : result.final_shard_sizes) {
      stats.observe_hist("distrib.final_shard_size",
                         static_cast<double>(s));
    }
    runtime::observe_reaction_compile(tel, program_);
  }
  telemetry_.finish(result.outcome, result.metrics);
  recording_.finish(result.outcome, result.final_multiset);
  return result;
}

// --- phase 0: crashes and restarts ---
void Simulation::crash_and_recover() {
  if (!options_.faults.crashes_possible()) return;
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (state_[i] == NState::Inactive) continue;
    if (nodes_[i].down_until != 0 && round_ >= nodes_[i].down_until) {
      try_restore(i);
    }
  }
  for (const FaultPlan::Crash& c : options_.faults.crashes) {
    if (c.round == round_ && state_[c.node] != NState::Inactive &&
        !down(c.node)) {
      crash(c.node, c.downtime);
    }
  }
  if (options_.faults.crash_rate > 0.0) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (state_[i] == NState::Inactive) continue;
      if (!down(i) && injector_.spontaneous_crash()) {
        crash(i, options_.faults.crash_downtime);
      }
    }
  }
}

void Simulation::crash(std::size_t i, std::size_t downtime) {
  ++crashes_;
  // The live in-memory state dies with the process. The stale Node is left
  // in place while the node is down (nothing reads it: deliver drops,
  // react/communicate/checkpoint skip) and overwritten at restart. A held
  // token dies with the crash — the watchdog regenerates it.
  nodes_[i].down_until = round_ + std::max<std::size_t>(1, downtime);
  nodes_[i].held_token.reset();
}

/// Restart: re-install durable state. Preference order — the local WAL
/// when it is fresher than the newest replica (the replica lags when
/// checkpoint_every > 1), else any up holder's replica, else the WAL again
/// (holders down but the disk survives), else WAIT a round and retry
/// (replication_factor crash overlap: with more holders this wait path is
/// what disappears). Rejoin blackened: the missed lap proves nothing.
void Simulation::try_restore(std::size_t i) {
  const bool wal_ok = wal_on_ && wal_[i].is_open();
  bool holder_ok = false;
  if (!holders_.empty()) {
    for (const std::size_t h : holders_[i]) {
      holder_ok = holder_ok || (state_[h] != NState::Inactive && !down(h));
    }
  }
  const bool wal_fresher =
      wal_ok && (!holder_ok || wal_rounds_[i] > replica_rounds_[i]);
  if (wal_fresher) {
    WalNodeState st = replay_node_wal(wal_node_path(options_.wal_dir, i));
    if (st.valid) {
      install_wal_state(i, std::move(st));
      ++wal_replays_;
      ++recoveries_;
      return;
    }
  }
  if (holder_ok) {
    Node restored = replicas_[i];
    restored.black = true;
    restored.down_until = 0;
    nodes_[i] = std::move(restored);
    ++recoveries_;
    return;
  }
  // No durable copy reachable this round: stay down, try again next round.
  ++replica_waits_;
  nodes_[i].down_until = round_ + 1;
}

// --- phase 0.5: membership churn ---
// Scheduled joins/leaves (deferred while the target is down), random churn,
// then drain completions. Every membership change is an EPOCH change: the
// ownership map is rebuilt (rendezvous hashing — only keys won by a joiner
// or orphaned by a leaver change owner), the Safra generation is bumped so
// in-flight tokens die, and an incremental rebalance ships exactly the
// moved labels.
void Simulation::membership() {
  if (!membership_on_) return;
  std::erase_if(pending_joins_, [&](const MembershipPlan::Event& e) {
    if (e.round > round_) return false;
    if (state_[e.node] != NState::Inactive) return true;  // stale: drop
    join_node(e.node);
    return true;
  });
  std::erase_if(pending_leaves_, [&](const MembershipPlan::Event& e) {
    if (e.round > round_) return false;
    if (state_[e.node] != NState::Member) {
      // Already draining/left (or never joined): nothing to start.
      return state_[e.node] != NState::Inactive || previously_left_[e.node];
    }
    if (down(e.node)) return false;  // defer until the node is back up
    leave_node(e.node);
    return true;
  });
  if (injector_.spontaneous_churn()) {
    std::vector<std::size_t> rejoinable;
    std::vector<std::size_t> leavable;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (state_[i] == NState::Inactive && previously_left_[i]) {
        rejoinable.push_back(i);
      }
      if (i != 0 && state_[i] == NState::Member && !down(i)) {
        leavable.push_back(i);
      }
    }
    const bool can_join = !rejoinable.empty();
    const bool can_leave = !leavable.empty();
    if (can_join && (!can_leave || churn_rng_.coin(0.5))) {
      join_node(rejoinable[churn_rng_.bounded(rejoinable.size())]);
    } else if (can_leave) {
      leave_node(leavable[churn_rng_.bounded(leavable.size())]);
    }
  }
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (state_[i] == NState::Draining && !down(i) && drained(i)) {
      deactivate(i);
    }
  }
}

void Simulation::join_node(std::size_t j) {
  const runtime::EpochShardMap old_map = epoch_map_;
  state_[j] = NState::Member;
  nodes_[j].quiescent_rounds = 0;
  ++joins_;
  bump_epoch();
  rebalance(old_map);
}

void Simulation::leave_node(std::size_t l) {
  const runtime::EpochShardMap old_map = epoch_map_;
  state_[l] = NState::Draining;
  // A pull it has not answered yet is moot: its whole shard leaves anyway.
  if (nodes_[l].pull_pending) {
    nodes_[l].pull_pending = false;
    if (wal_live(l)) wal_[l].log_pull_answered();
  }
  bump_epoch();
  rebalance(old_map);
}

/// A draining node may deactivate only when NOTHING in the cluster still
/// targets it: its shard and outbox are empty, no wire or token is on its
/// way to it, and no node (live, or frozen mid-crash — the frozen outbox is
/// exactly what a restart will retry) holds an unacked transfer to it.
/// Re-routing an unacked transfer instead would risk double delivery when
/// only the ack was lost; waiting for the ack is the safe drain.
bool Simulation::drained(std::size_t l) const {
  const Node& n = nodes_[l];
  if (n.shard.size() != 0 || !n.outbox.empty() || n.held_token) return false;
  for (const Wire& w : wires_) {
    if (w.to == l) return false;
  }
  for (const TokenMsg& t : token_msgs_) {
    if (t.to == l) return false;
  }
  for (std::size_t j = 0; j < capacity_; ++j) {
    if (j == l) continue;
    for (const OutboxEntry& e : nodes_[j].outbox) {
      if (e.to == l) return false;
    }
  }
  return true;
}

void Simulation::deactivate(std::size_t l) {
  // Fold the leaver's Safra counter into the RESIDUAL the initiator adds at
  // every lap decision: the ring sum stays equal to the number of in-flight
  // logical messages, so termination detection survives the ring shrinking.
  // The residual deliberately lives outside any Node — folding it into node
  // 0's counter would silently vanish if node 0 happened to be CRASHED at
  // this moment (its stale in-memory state is overwritten by the replica on
  // restart), leaving the global sum off by the fold forever: no lap could
  // ever be clean again. (In a real deployment this is the one counter the
  // initiator must persist outside its volatile state; the epoch bump below
  // already blackens the interrupted lap, which is what makes moving the
  // count sound.)
  residual_count_ += nodes_[l].message_count;
  const std::uint64_t keep_seq = nodes_[l].next_seq;
  const std::uint64_t keep_fires = nodes_[l].fires;
  nodes_[l] = Node{};
  nodes_[l].next_seq = keep_seq;  // receivers keep their seen-sets; a rejoin
                                  // must not reuse acknowledged numbers
  nodes_[l].fires = keep_fires;
  nodes_[l].rng = reseeder_.split();
  state_[l] = NState::Inactive;
  previously_left_[l] = true;
  ++leaves_;
  if (!holders_.empty()) {
    // Re-replication: before the process exits, the leaver streams every
    // replica it holds to the shrunken ring's successors (it is up — a
    // graceful leave — so it can). Without this hand-off a node that is
    // DOWN right now could lose its only holder forever: checkpoint()
    // skips down nodes, so nothing would ever refill holders_[i] and
    // try_restore would wait for eternity.
    for (std::size_t i = 0; i < capacity_; ++i) {
      std::erase(holders_[i], l);
      if (i != l && state_[i] != NState::Inactive && holders_[i].empty()) {
        holders_[i] = ring_successors(i, options_.replication_factor);
      }
    }
    holders_[l].clear();
  }
  if (wal_on_ && wal_[l].is_open()) {
    // Final compaction: an empty state that preserves the sequence
    // watermark, so a rejoin replays a clean prefix.
    wal_[l].compact(wal_state_of(l, round_));
    wal_rounds_[l] = round_;
  }
  bump_epoch();  // ring membership changed: tokens to the leaver must die
}

void Simulation::bump_epoch() {
  ++epoch_;
  ++epochs_;
  epoch_map_ = runtime::EpochShardMap(member_list(), epoch_);
  ++token_gen_;
  token_in_flight_ = false;
  token_idle_rounds_ = 0;
  verified_ = false;
  // Fresh BLACK token at the initiator: the interrupted lap proves nothing.
  // If the initiator is down the churn-aware watchdog regenerates later.
  if (!down(0)) nodes_[0].held_token = Token{true, 0, token_gen_};
}

/// Incremental rebalance after an epoch change: each ring node scans its
/// shard and ships ONLY the elements whose owner changed between the maps
/// (a draining node ships everything — it has no owner any more), using the
/// same acked, sequence-numbered transport as stirring. Elements that
/// merely diffused away from their unchanged owner stay put: the chemistry
/// owns those. Senders blacken (a passive node sending violates EWD998's
/// premise otherwise).
void Simulation::rebalance(const runtime::EpochShardMap& old_map) {
  ++rebalances_;
  if (epoch_map_.members().empty()) return;
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (state_[i] == NState::Inactive || down(i)) continue;
    Node& node = nodes_[i];
    if (node.shard.size() == 0) continue;
    const bool leaving = state_[i] == NState::Draining;
    std::map<std::size_t, std::vector<Element>> moves;
    Store kept;
    for (const Element& e : node.shard.to_multiset()) {
      const std::size_t owner = epoch_map_.owner(e);
      const bool move =
          owner != i && (leaving || old_map.owner(e) != owner);
      if (move) {
        moves[owner].push_back(e);
      } else {
        kept.insert(e);
      }
    }
    if (moves.empty()) continue;
    node.shard = std::move(kept);
    node.black = true;
    for (auto& [to, elems] : moves) {
      labels_moved_ += elems.size();
      send_reliable(i, to, MsgKind::Elements, std::move(elems));
    }
  }
}

WalNodeState Simulation::wal_state_of(std::size_t i,
                                      std::uint64_t round) const {
  const Node& n = nodes_[i];
  WalNodeState st;
  st.valid = true;
  st.node = i;
  st.round = round;
  st.epoch = epoch_;
  st.message_count = n.message_count;
  st.next_seq = n.next_seq;
  st.pull_pending = n.pull_pending;
  st.shard = n.shard.to_multiset();
  for (const auto& [from, seqs] : n.seen) {
    st.seen[from] = std::set<std::uint64_t>(seqs.begin(), seqs.end());
  }
  for (const OutboxEntry& e : n.outbox) {
    st.pending.push_back(WalPendingSend{
        e.to, e.seq, e.kind == MsgKind::Pull ? 1 : 0, e.elements});
  }
  return st;
}

// --- the simulated (faulty) network ---

/// Starts a LOGICAL transfer: sequence-numbered, Safra-counted once, kept
/// in the outbox until acked, retried with exponential backoff. With a WAL
/// the send record hits disk before the first copy hits the wire.
void Simulation::send_reliable(std::size_t from, std::size_t to,
                               MsgKind kind, std::vector<Element> elements) {
  if (to == from) return;
  if (kind == MsgKind::Elements && elements.empty()) return;
  Node& sender = nodes_[from];
  const std::uint64_t seq = sender.next_seq++;
  ++sender.message_count;
  if (kind == MsgKind::Elements) migrations_ += elements.size();
  if (wal_live(from)) {
    wal_[from].log_send(to, seq, kind == MsgKind::Pull ? 1 : 0, elements);
  }
  transmit(from, to, kind, seq, elements);
  sender.outbox.push_back(OutboxEntry{to, seq, kind, std::move(elements),
                                      round_ + rtt_, 0});
}

void Simulation::send_ack(std::size_t from, std::size_t to,
                          std::uint64_t seq) {
  ++acks_;
  transmit(from, to, MsgKind::Ack, seq, {});
}

/// One physical copy through the injector: partition/loss eat it,
/// reordering delays it, duplication enqueues a second copy.
void Simulation::transmit(std::size_t from, std::size_t to, MsgKind kind,
                          std::uint64_t seq, std::vector<Element> elements) {
  ++messages_;
  if (injector_.severed(from, to, round_) || injector_.lose()) {
    ++lost_;
    return;
  }
  std::size_t jitter = injector_.jitter();
  if (jitter > 0) ++delayed_;
  const bool duplicate = injector_.duplicate();
  if (duplicate) {
    ++duplicated_;
    ++messages_;
    wires_.push_back(Wire{from, to,
                          round_ + options_.latency + 1 + injector_.jitter(),
                          kind, seq, elements});
  }
  wires_.push_back(Wire{from, to, round_ + options_.latency + jitter, kind,
                        seq, std::move(elements)});
}

void Simulation::send_token(std::size_t from, std::size_t to,
                            const Token& token) {
  if (to == from) {  // degenerate 1-node ring: no network to cross
    nodes_[to].held_token = token;
    return;
  }
  // The token is control traffic: it can be lost or delayed (and then
  // regenerated by the watchdog), but the network never forges copies —
  // duplication is what the generation stamp guards against.
  if (injector_.severed(from, to, round_) || injector_.lose()) {
    ++lost_;
    return;
  }
  std::size_t jitter = injector_.jitter();
  if (jitter > 0) ++delayed_;
  token_msgs_.push_back(
      TokenMsg{to, round_ + options_.latency + jitter, token});
}

// --- phase 1: deliver messages due this round ---
void Simulation::deliver() {
  // Acks raised while sweeping the wire list are staged and sent after
  // the sweep: transmit() appends to wires_, which must not be mutated
  // mid-erase_if.
  struct PendingAck {
    std::size_t from, to;
    std::uint64_t seq;
  };
  std::vector<PendingAck> pending_acks;
  const auto ack = [&](std::size_t from, std::size_t to, std::uint64_t seq) {
    pending_acks.push_back(PendingAck{from, to, seq});
  };
  std::erase_if(wires_, [&](Wire& m) {
    if (m.arrival_round > round_) return false;
    if (state_[m.to] == NState::Inactive || down(m.to)) {
      // A dead process reads nothing off the wire; a departed node's
      // address is void (only late duplicate copies can land here — the
      // drain protocol waits for every unacked transfer before leaving).
      ++lost_;
      return true;
    }
    Node& node = nodes_[m.to];
    switch (m.kind) {
      case MsgKind::Elements: {
        node.black = true;  // Safra: receipt may reactivate; blacken
        if (!node.seen[m.from].insert(m.seq).second) {
          // Duplicate (network copy or retransmission): suppress so the
          // message counters stay balanced, but re-ack — the original
          // ack may be the thing that got lost.
          ++dup_suppressed_;
          ack(m.to, m.from, m.seq);
          return true;
        }
        // WAL before ack: once the ack closes the sender's retry loop the
        // receipt must already be durable.
        if (wal_live(m.to)) wal_[m.to].log_recv(m.from, m.seq, m.elements);
        for (Element& e : m.elements) node.shard.insert(std::move(e));
        --node.message_count;
        node.quiescent_rounds = 0;
        if (m.to == 0) verified_ = false;  // new material voids verification
        ack(m.to, m.from, m.seq);
        return true;
      }
      case MsgKind::Pull: {
        node.black = true;
        if (!node.seen[m.from].insert(m.seq).second) {
          ++dup_suppressed_;
        } else {
          if (wal_live(m.to)) wal_[m.to].log_pull(m.from, m.seq);
          --node.message_count;
          node.pull_pending = true;
        }
        ack(m.to, m.from, m.seq);
        return true;
      }
      case MsgKind::Ack: {
        // Control traffic: closes the retry loop, no Safra effect.
        auto it = std::find_if(
            node.outbox.begin(), node.outbox.end(),
            [&](const OutboxEntry& e) { return e.seq == m.seq; });
        if (it != node.outbox.end()) {
          if (wal_live(m.to)) wal_[m.to].log_ackd(m.seq);
          node.outbox.erase(it);
        }
        return true;
      }
    }
    return true;
  });
  for (const PendingAck& a : pending_acks) send_ack(a.from, a.to, a.seq);
  std::erase_if(token_msgs_, [&](TokenMsg& m) {
    if (m.arrival_round > round_) return false;
    if (state_[m.to] == NState::Inactive || down(m.to)) return true;
    if (m.token.gen != token_gen_) return true;  // stale generation
    nodes_[m.to].held_token = m.token;
    if (m.to == 0) token_idle_rounds_ = 0;
    return true;
  });
}

// --- phase 2: local chemistry (Members only; Draining nodes only drain) ---
void Simulation::react() {
  const auto& stage = program_.stages().front();
  for (std::size_t i = 0; i < capacity_; ++i) {
    Node& node = nodes_[i];
    node.fired_this_round = false;
    node.answered_pull_this_round = false;
    if (state_[i] != NState::Member || down(i)) {
      if (state_[i] != NState::Inactive && !down(i)) ++node.quiescent_rounds;
      continue;
    }
    for (std::size_t k = 0; k < options_.fires_per_round; ++k) {
      bool fired = false;
      for (const Reaction& r : stage) {
        if (auto match = runtime::MatchPipeline::find(
                node.shard, r, &node.rng, options_.eval_mode())) {
          const runtime::RecordCtx rctx =
              recording_.ctx(-1, -1, static_cast<std::int64_t>(i));
          if (wal_live(i)) {
            std::vector<Element> consumed;
            consumed.reserve(match->ids.size());
            for (const Store::Id id : match->ids) {
              consumed.push_back(node.shard.element(id));
            }
            wal_[i].log_fire(consumed, match->produced);
          }
          runtime::MatchPipeline::commit(node.shard, *match,
                                         recording_ ? &rctx : nullptr);
          ++node.fires;
          fired = true;
          node.fired_this_round = true;
          break;
        }
      }
      if (!fired) break;
    }
    if (node.fired_this_round) {
      node.quiescent_rounds = 0;
    } else {
      ++node.quiescent_rounds;
    }
  }
  if (nodes_[0].fired_this_round) verified_ = false;
}

/// Picks and removes one random live element from a shard.
std::optional<Element> Simulation::take_random(Node& node) {
  if (node.shard.size() == 0) return std::nullopt;
  const Multiset snapshot = node.shard.to_multiset();
  const auto& elems = snapshot.elements();
  const Element chosen = elems[node.rng.bounded(elems.size())];
  // Remove one matching instance.
  Store fresh;
  bool skipped = false;
  for (const Element& e : elems) {
    if (!skipped && e == chosen) {
      skipped = true;
      continue;
    }
    fresh.insert(e);
  }
  node.shard = std::move(fresh);
  return chosen;
}

/// Re-sends overdue unacked transfers. A retransmission may race the
/// token (the sender can be passive), so it blackens the sender — the
/// same conservative rule EWD998 uses for restarts.
void Simulation::flush_retries(std::size_t i) {
  Node& node = nodes_[i];
  for (OutboxEntry& e : node.outbox) {
    if (e.next_retry_round > round_) continue;
    ++retransmissions_;
    node.black = true;
    transmit(i, e.to, e.kind, e.seq, e.elements);
    ++e.attempts;
    e.next_retry_round =
        round_ + (rtt_ << std::min(e.attempts, 6u));  // exponential backoff
  }
}

// --- phase 3: stirring, draining and consolidation ---
//
// Every message here respects EWD998's premise so Safra stays sound:
//   * stirring sends come from machines that fired this round (active);
//   * a draining node's forwards are receipt-activated (it only holds
//     elements that just arrived — its own shard left at leave time);
//   * consolidation is PULL-based: node 0 requests shards (its own counter
//     is live at the termination decision, so its in-flight requests
//     always show up as q + c_0 != 0), and responders send while
//     activated by the request's receipt.
// A passive node pushing its shard spontaneously would violate the
// premise: its +1 could be snapshotted away and the initiator could
// declare a clean lap with the shard still in flight (elements lost).
// Retransmissions DO come from passive machines — that is why they
// blacken the sender (see flush_retries).
void Simulation::communicate() {
  if (capacity_ == 1) return;
  for (std::size_t i = 0; i < capacity_; ++i) {
    Node& node = nodes_[i];
    if (state_[i] == NState::Inactive || down(i)) continue;
    flush_retries(i);
    if (state_[i] == NState::Draining) {
      // Forward anything that landed here since the last round to its
      // owner under the current epoch (receipt-activated, so EWD-legal).
      if (node.shard.size() > 0) {
        std::map<std::size_t, std::vector<Element>> moves;
        for (const Element& e : node.shard.to_multiset()) {
          moves[epoch_map_.owner(e)].push_back(e);
        }
        node.shard = Store{};
        node.answered_pull_this_round = true;
        for (auto& [to, elems] : moves) {
          send_reliable(i, to, MsgKind::Elements, std::move(elems));
        }
      }
      continue;
    }
    if (node.pull_pending) {
      node.pull_pending = false;
      if (wal_live(i)) wal_[i].log_pull_answered();
      if (i != 0 && node.shard.size() > 0) {
        std::vector<Element> all = node.shard.to_multiset().elements();
        node.shard = Store{};
        node.answered_pull_this_round = true;  // receipt-activated
        send_reliable(i, 0, MsgKind::Elements, std::move(all));
      }
      continue;  // answering a pull supersedes stirring this round
    }
    if (node.fired_this_round) {
      // Active node: diffuse a few random elements (stir the solution).
      // With a label-affinity hint, stirring turns directed: a stray
      // element is routed to its class's home node (where its reaction
      // partners live), and an element already home stays put. Under
      // churn, peers are drawn from the CURRENT member set, and an
      // affinity home that left re-routes to the epoch owner. Sends
      // still come only from active nodes, so EWD998's premise holds.
      for (std::size_t k = 0; k < options_.migrations_per_round; ++k) {
        if (node.shard.size() <= 1) break;
        auto e = take_random(node);
        if (!e) break;
        std::size_t peer = 0;
        auto home = affinity_.home(*e);
        if (home && membership_on_ && state_[*home] != NState::Member) {
          home = epoch_map_.owner(*e);  // class home left the ring
        }
        if (home && *home != i) {
          peer = *home;
        } else if (home) {
          node.shard.insert(std::move(*e));  // already co-located: keep
          continue;
        } else if (!membership_on_) {
          peer = node.rng.bounded(capacity_ - 1);
          if (peer >= i) ++peer;  // uniform over the OTHER nodes
        } else {
          const auto& mem = epoch_map_.members();
          if (mem.size() <= 1) {
            node.shard.insert(std::move(*e));
            break;
          }
          std::size_t self = 0;
          while (self < mem.size() && mem[self] != i) ++self;
          std::size_t idx = node.rng.bounded(mem.size() - 1);
          if (self < mem.size() && idx >= self) ++idx;
          peer = mem[idx];
        }
        send_reliable(i, peer, MsgKind::Elements, {std::move(*e)});
      }
    }
  }
  // Collector: when node 0 has been quiet for a while, pull the other
  // shards in so any still-enabled cross-node match can assemble. The
  // pull is ARMED by collector activity (firing or receiving) and fires
  // once per quiescence episode — pulling on a timer forever would keep
  // blackening Safra laps and livelock the detection.
  if (down(0)) return;
  Node& collector = nodes_[0];
  if (collector.active_this_round() ||
      collector.quiescent_rounds == 0 /* received this round */) {
    pull_armed_ = true;
  }
  if (pull_armed_ && !collector.active_this_round() &&
      collector.quiescent_rounds >= options_.consolidate_after) {
    pull_armed_ = false;
    send_pull_burst();
  }
}

void Simulation::send_pull_burst() {
  for (std::size_t peer = 1; peer < capacity_; ++peer) {
    if (state_[peer] != NState::Member) continue;  // draining self-empties
    send_reliable(0, peer, MsgKind::Pull, {});
  }
}

// --- phase 4: Safra's termination detection ---
void Simulation::pass_tokens() {
  for (std::size_t i = 0; i < capacity_; ++i) {
    Node& node = nodes_[i];
    if (state_[i] == NState::Inactive) continue;  // not in the ring
    if (down(i)) continue;                        // a dead node forwards nothing
    if (node.held_token && node.held_token->gen != token_gen_) {
      node.held_token.reset();  // superseded by a regenerated token
    }
    if (!node.held_token) continue;
    // Hold the token while locally active; forward when passive.
    if (node.active_this_round()) continue;

    Token token = *node.held_token;
    if (i == 0 && token_in_flight_) {
      // Lap completed back at the initiator: decide or start a new lap.
      token_in_flight_ = false;
      ++laps_;
      const bool clean = !token.black && !node.black &&
                         token.count + node.message_count + residual_count_ == 0;
      if (clean && !node.active_this_round()) {
        // A clean lap proves no computation and no messages — but not
        // that remote shards are empty of jointly-enabled matches. Before
        // declaring, run one VERIFICATION pull: gather every shard at the
        // collector. If the silence survives the pull (nothing arrived,
        // next clean lap), the fixed point is global. Any arrival resets
        // verification (deliver() zeroes quiescent_rounds, and
        // communicate() re-arms the periodic pull).
        if (!verified_ && ring_size() > 1) {
          verified_ = true;
          send_pull_burst();
        } else {
          terminated_ = true;
          return;
        }
      }
      token = Token{false, 0, token_gen_};  // fresh white lap
      node.black = false;
      // fall through to forward the fresh token
    }
    // Forward to the ring successor (the next non-Inactive slot — Draining
    // nodes stay in the ring so their residual counters keep being summed).
    if (i != 0) {
      token.count += node.message_count;
      if (node.black) token.black = true;
      node.black = false;
    }
    node.held_token.reset();
    token_in_flight_ = true;
    if (i == 0) token_idle_rounds_ = 0;
    send_token(i, ring_next(i), token);
  }
}

/// Token-loss recovery: the initiator counts rounds without the token in
/// hand; past the timeout it declares the token eaten (crash, loss, a
/// severed ring, or an epoch bump that killed the old generation while the
/// replacement got lost) and issues a BLACK replacement under a new
/// generation — black because the lap it replaces proves nothing, a new
/// generation so a late-surfacing old token is discarded instead of
/// double-counted.
void Simulation::token_watchdog() {
  // Only an active fault plan or membership churn can eat a token; with a
  // perfect static network the watchdog would just add spurious
  // regenerations during long laps.
  if (terminated_ || capacity_ == 1 ||
      (!options_.faults.any() && !membership_on_)) {
    return;
  }
  Node& initiator = nodes_[0];
  const bool holds_current =
      initiator.held_token && initiator.held_token->gen == token_gen_;
  if (holds_current || down(0)) {
    token_idle_rounds_ = 0;
    return;
  }
  if (++token_idle_rounds_ <= token_timeout_) return;
  token_idle_rounds_ = 0;
  ++token_gen_;
  ++token_regens_;
  initiator.held_token = Token{true, 0, token_gen_};
  token_in_flight_ = false;
}

/// Early-stop settlement: every LOGICAL element transfer that is still
/// unacked lives in some sender's outbox (the payload is kept until the
/// ack lands), and the receiver's `seen` filter says whether it was
/// already delivered. The simulator has global knowledge, so the drain a
/// real deployment would run (retry until acked) collapses into one
/// deterministic pass: deliver each undelivered payload straight into the
/// receiver's shard, drop the rest. No element is lost on the wire and
/// none is double-counted, making the partial multiset exact. A receiver
/// that deactivated mid-flight (impossible for graceful leaves — drained()
/// waits for every targeting outbox — but cheap to guard) re-routes to the
/// collector.
void Simulation::settle_in_flight() {
  for (std::size_t i = 0; i < capacity_; ++i) {
    for (OutboxEntry& e : nodes_[i].outbox) {
      if (e.kind != MsgKind::Elements) continue;  // Pull: control only
      Node& receiver = nodes_[e.to];
      if (!receiver.seen[i].insert(e.seq).second) continue;  // delivered
      Node& sink = state_[e.to] == NState::Inactive ? nodes_[0] : receiver;
      for (Element& el : e.elements) sink.shard.insert(std::move(el));
    }
    nodes_[i].outbox.clear();
  }
  wires_.clear();
  token_msgs_.clear();
}

// --- phase 5: replication ---
// Primary-backup: every `checkpoint_every` rounds each node ships its
// end-of-round state to its up-to-R live ring successors (holders_). With
// checkpoint_every == 1 a replica is never behind the state a crash
// destroys — the property that makes replica-only recovery exact. With a
// larger cadence the replica lags and try_restore() prefers the local WAL
// whenever it is fresher.
void Simulation::checkpoint() {
  if (!options_.faults.crashes_possible() || terminated_) return;
  if (round_ % options_.checkpoint_every != 0) return;
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (state_[i] == NState::Inactive) continue;
    if (down(i)) continue;  // frozen state was checkpointed pre-crash
    // Holders are the R ring successors as of this checkpoint. The replica
    // refreshes whenever the PRIMARY is up — a holder that is down while
    // the primary streams catches up before serving (anti-entropy on
    // restart), so the copy is never staler than the primary's last
    // checkpoint; what a down holder cannot do is SERVE a restore, which is
    // what try_restore's up-holder check (and replica_waits) models.
    holders_[i] = ring_successors(i, options_.replication_factor);
    if (nodes_[i].shard.version() != replica_shard_versions_[i]) {
      replica_shard_versions_[i] = nodes_[i].shard.version();
      ++checkpoints_;
    }
    replicas_[i] = snapshot_of(nodes_[i]);
    replica_rounds_[i] = round_;
  }
}

// --- phase 6: durability ---
// End-of-round WAL marker + flush for every live node (write-ahead holds:
// everything this round acked is already logged), a compacting snapshot
// rewrite every wal_snapshot_every rounds, and an atomic manifest rewrite
// pinning the cluster-wide restart point.
void Simulation::wal_roundmark() {
  if (!wal_on_) return;
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (!wal_live(i) || down(i)) continue;
    if (round_ % options_.wal_snapshot_every == 0) {
      wal_[i].compact(wal_state_of(i, round_));
    } else {
      wal_[i].log_round(round_);
    }
    wal_rounds_[i] = round_;
  }
  wal_roundmark_manifest();
}

void Simulation::wal_roundmark_manifest() {
  WalManifest m;
  m.valid = true;
  m.round = round_;
  m.epoch = epoch_;
  m.token_gen = token_gen_;
  m.initial_nodes = options_.nodes;
  m.states.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    m.states.push_back(state_[i] == NState::Member     ? 'M'
                       : state_[i] == NState::Draining ? 'D'
                                                       : 'I');
  }
  write_manifest(options_.wal_dir, m);
}

}  // namespace

ClusterResult run_distributed(const gamma::Program& program,
                              const Multiset& initial,
                              const ClusterOptions& options) {
  Simulation sim(program, initial, options);
  return sim.run();
}

}  // namespace gammaflow::distrib
