// Per-node write-ahead log + cluster manifest for the durable cluster
// (distrib/cluster). The journal (obs/run_recorder) answers "what happened";
// the WAL answers "what must survive": it is the durability story behind
// `ClusterOptions::wal_dir` and `distrib --resume`.
//
// Format (versioned, line-oriented like the PR 6 journal, but CRC-guarded):
// each record is one line `R <crc32-hex8> <payload>` where the CRC covers
// exactly the payload bytes. A reader verifies every line; the first
// mismatch or incomplete line marks a TORN TAIL (the process died mid-write)
// and replay truncates there — everything before the tear is intact because
// records are appended and flushed in commit order (write-ahead: the record
// is on disk before the ack that makes it irrevocable goes out).
//
// Record payloads (space-separated tokens; elements use the exact
// round-trip encoding below, never the human printer):
//
//   gfwal <version> <node>            file header
//   snap <round> <epoch> <count> <next_seq> <pull>
//                                     begin compacting snapshot: resets the
//                                     replayed shard/seen/outbox, then...
//   selem <element>                   ...one shard element per line,
//   sseen <from> <seq...>             ...one dedup set per sender,
//   sout <to> <seq> <kind> <element...>   ...one unacked transfer per line.
//   fire <element...> ; <element...>  committed fire: consumed ; produced
//   recv <from> <seq> <element...>    delivered transfer (already deduped)
//   pull <from> <seq>                 delivered pull request
//   pulla                             pull answered (pending flag cleared)
//   send <to> <seq> <kind> <element...>   transfer started (outbox +)
//   ackd <seq>                        transfer acked (outbox -)
//   round <round>                     end-of-round marker (flush point)
//
// Element encoding is exact round-trip (unlike Element::to_string, which
// loses Real precision and string escaping): an element is `(` tok* `)`
// with one token per field — i<dec> | r<hex64 of the IEEE bits> | b0 | b1 |
// s<hex bytes> | n.
//
// Compaction rewrites the file as one fresh snapshot (shard + protocol
// state), bounding replay cost and disk growth; the cluster runs it every
// `wal_snapshot_every` rounds. The per-cluster `MANIFEST` file (same CRC
// framing, rewritten atomically each round) pins the round/epoch/Safra
// generation and per-node membership states a `--resume` restarts from.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gammaflow/gamma/multiset.hpp"

namespace gammaflow::distrib {

inline constexpr std::uint64_t kWalVersion = 1;

/// CRC-32 (IEEE, reflected) over a byte string — the per-record guard.
[[nodiscard]] std::uint32_t crc32(const std::string& data) noexcept;

/// Exact round-trip element codec (see the grammar above). decode_elements
/// consumes tokens from `pos`; throws ProgramError on malformed input.
[[nodiscard]] std::string encode_element(const gamma::Element& e);
[[nodiscard]] std::vector<gamma::Element> decode_elements(
    const std::vector<std::string>& tokens, std::size_t& pos);

/// An unacked transfer restored from the WAL: the sender must still retry
/// it (or resume settles it directly against the receiver's seen-set).
struct WalPendingSend {
  std::size_t to = 0;
  std::uint64_t seq = 0;
  int kind = 0;  // 0 = Elements, 1 = Pull (mirrors the cluster's MsgKind)
  std::vector<gamma::Element> elements;
};

/// Everything a node restart needs, reconstructed by replaying one WAL.
struct WalNodeState {
  bool valid = false;  // false: no file / no intact header
  std::size_t node = 0;
  std::uint64_t round = 0;  // last intact end-of-round marker
  std::uint64_t epoch = 0;
  std::int64_t message_count = 0;  // Safra: sends - receives, replayed
  std::uint64_t next_seq = 0;
  bool pull_pending = false;
  gamma::Multiset shard;
  std::map<std::size_t, std::set<std::uint64_t>> seen;
  std::vector<WalPendingSend> pending;
  std::uint64_t torn_bytes = 0;  // tail dropped by CRC/framing truncation
};

/// Append-only CRC-framed record writer for one node's WAL.
class WalWriter {
 public:
  /// Opens (truncating when `fresh`) and writes/expects the header line.
  void open(const std::string& path, std::size_t node, bool fresh);
  [[nodiscard]] bool is_open() const noexcept { return out_.is_open(); }

  void log_fire(const std::vector<gamma::Element>& consumed,
                const std::vector<gamma::Element>& produced);
  void log_recv(std::size_t from, std::uint64_t seq,
                const std::vector<gamma::Element>& elements);
  void log_pull(std::size_t from, std::uint64_t seq);
  void log_pull_answered();
  void log_send(std::size_t to, std::uint64_t seq, int kind,
                const std::vector<gamma::Element>& elements);
  void log_ackd(std::uint64_t seq);
  /// End-of-round marker + flush: everything up to here survives a kill.
  void log_round(std::uint64_t round);
  /// Rewrites the whole file as header + one snapshot of `state` (+ round
  /// marker), dropping the replay prefix — the compaction step.
  void compact(const WalNodeState& state);
  /// Appends a snapshot WITHOUT truncating history (used for the initial
  /// placement snapshot right after open).
  void snapshot(const WalNodeState& state);

  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

 private:
  void append(const std::string& payload);
  void snapshot_records(const WalNodeState& state);

  std::ofstream out_;
  std::string path_;
  std::size_t node_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t compactions_ = 0;
};

/// Replays one node's WAL: verifies every CRC, truncates the torn tail (in
/// memory AND on disk, so a subsequent append starts from the last intact
/// record), and folds the surviving records into the state at the last
/// intact round marker. Missing file => valid == false.
[[nodiscard]] WalNodeState replay_node_wal(const std::string& path);

/// The cluster-wide restart point, rewritten atomically each round.
struct WalManifest {
  bool valid = false;
  std::uint64_t round = 0;
  std::uint64_t epoch = 0;
  std::uint64_t token_gen = 0;
  std::size_t initial_nodes = 0;
  /// One char per node slot: 'M' member, 'D' draining, 'I' inactive.
  std::string states;
};

void write_manifest(const std::string& dir, const WalManifest& m);
[[nodiscard]] WalManifest read_manifest(const std::string& dir);

/// Path helpers shared by the cluster and the tests.
[[nodiscard]] std::string wal_node_path(const std::string& dir,
                                        std::size_t node);
[[nodiscard]] std::string wal_manifest_path(const std::string& dir);

}  // namespace gammaflow::distrib
