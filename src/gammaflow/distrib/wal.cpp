#include "gammaflow/distrib/wal.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "gammaflow/common/error.hpp"

namespace gammaflow::distrib {

using gamma::Element;
using gamma::Multiset;

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

std::string hex8(std::uint32_t v) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

std::string hex_bytes(const std::string& s) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (const char c : s) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(digits[b >> 4U]);
    out.push_back(digits[b & 0xFU]);
  }
  return out;
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string unhex_bytes(const std::string& s) {
  if (s.size() % 2 != 0) throw ProgramError("WAL: odd-length hex string");
  std::string out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = hex_val(s[i]);
    const int lo = hex_val(s[i + 1]);
    if (hi < 0 || lo < 0) throw ProgramError("WAL: bad hex byte");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream in(line);
  std::string t;
  while (in >> t) toks.push_back(std::move(t));
  return toks;
}

std::uint64_t to_u64(const std::string& s) {
  return std::stoull(s);
}

std::string frame(const std::string& payload) {
  return "R " + hex8(crc32(payload)) + ' ' + payload + '\n';
}

/// Parses one framed line; returns the payload or nullopt on a bad frame.
bool unframe(const std::string& line, std::string* payload) {
  // "R <8 hex> <payload>" — minimum 11 chars before the payload.
  if (line.size() < 11 || line[0] != 'R' || line[1] != ' ' ||
      line[10] != ' ') {
    return false;
  }
  std::uint32_t want = 0;
  for (std::size_t i = 2; i < 10; ++i) {
    const int v = hex_val(line[i]);
    if (v < 0) return false;
    want = (want << 4U) | static_cast<std::uint32_t>(v);
  }
  *payload = line.substr(11);
  return crc32(*payload) == want;
}

}  // namespace

std::uint32_t crc32(const std::string& data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

std::string encode_element(const Element& e) {
  std::string out = "(";
  for (std::size_t i = 0; i < e.arity(); ++i) {
    const Value& v = e.field(i);
    out += ' ';
    switch (v.kind()) {
      case ValueKind::Nil: out += 'n'; break;
      case ValueKind::Int: out += 'i' + std::to_string(v.as_int()); break;
      case ValueKind::Real: {
        // IEEE bit pattern, not decimal: the one encoding that is exact.
        std::uint64_t bits = 0;
        const double d = v.as_real();
        static_assert(sizeof bits == sizeof d);
        std::memcpy(&bits, &d, sizeof bits);
        char buf[17];
        std::snprintf(buf, sizeof buf, "%016llx",
                      static_cast<unsigned long long>(bits));
        out += 'r';
        out += buf;
        break;
      }
      case ValueKind::Bool: out += v.as_bool() ? "b1" : "b0"; break;
      case ValueKind::Str: out += 's' + hex_bytes(v.as_str()); break;
    }
  }
  out += " )";
  return out;
}

std::vector<Element> decode_elements(const std::vector<std::string>& tokens,
                                     std::size_t& pos) {
  std::vector<Element> out;
  while (pos < tokens.size() && tokens[pos] == "(") {
    ++pos;
    std::vector<Value> fields;
    while (pos < tokens.size() && tokens[pos] != ")") {
      const std::string& t = tokens[pos++];
      switch (t[0]) {
        case 'n': fields.emplace_back(); break;
        case 'i':
          fields.emplace_back(
              static_cast<std::int64_t>(std::stoll(t.substr(1))));
          break;
        case 'r': {
          const std::uint64_t bits = std::stoull(t.substr(1), nullptr, 16);
          double d = 0.0;
          std::memcpy(&d, &bits, sizeof d);
          fields.emplace_back(d);
          break;
        }
        case 'b': fields.emplace_back(t == "b1"); break;
        case 's': fields.emplace_back(unhex_bytes(t.substr(1))); break;
        default: throw ProgramError("WAL: unknown value token '" + t + "'");
      }
    }
    if (pos >= tokens.size()) {
      throw ProgramError("WAL: unterminated element");
    }
    ++pos;  // consume ')'
    out.emplace_back(std::move(fields));
  }
  return out;
}

void WalWriter::open(const std::string& path, std::size_t node, bool fresh) {
  path_ = path;
  node_ = node;
  out_.open(path, fresh ? std::ios::trunc : std::ios::app);
  if (!out_) throw ProgramError("WAL: cannot open " + path);
  if (fresh) {
    append("gfwal " + std::to_string(kWalVersion) + ' ' +
           std::to_string(node));
  }
}

void WalWriter::append(const std::string& payload) {
  const std::string line = frame(payload);
  out_ << line;
  bytes_ += line.size();
  ++records_;
}

void WalWriter::log_fire(const std::vector<Element>& consumed,
                         const std::vector<Element>& produced) {
  std::string p = "fire";
  for (const Element& e : consumed) p += ' ' + encode_element(e);
  p += " ;";
  for (const Element& e : produced) p += ' ' + encode_element(e);
  append(p);
}

void WalWriter::log_recv(std::size_t from, std::uint64_t seq,
                         const std::vector<Element>& elements) {
  std::string p =
      "recv " + std::to_string(from) + ' ' + std::to_string(seq);
  for (const Element& e : elements) p += ' ' + encode_element(e);
  append(p);
}

void WalWriter::log_pull(std::size_t from, std::uint64_t seq) {
  append("pull " + std::to_string(from) + ' ' + std::to_string(seq));
}

void WalWriter::log_pull_answered() { append("pulla"); }

void WalWriter::log_send(std::size_t to, std::uint64_t seq, int kind,
                         const std::vector<Element>& elements) {
  std::string p = "send " + std::to_string(to) + ' ' + std::to_string(seq) +
                  ' ' + std::to_string(kind);
  for (const Element& e : elements) p += ' ' + encode_element(e);
  append(p);
}

void WalWriter::log_ackd(std::uint64_t seq) {
  append("ackd " + std::to_string(seq));
}

void WalWriter::log_round(std::uint64_t round) {
  append("round " + std::to_string(round));
  out_.flush();
}

void WalWriter::snapshot_records(const WalNodeState& state) {
  append("snap " + std::to_string(state.round) + ' ' +
         std::to_string(state.epoch) + ' ' +
         std::to_string(state.message_count) + ' ' +
         std::to_string(state.next_seq) + ' ' +
         (state.pull_pending ? "1" : "0"));
  for (const Element& e : state.shard) append("selem " + encode_element(e));
  for (const auto& [from, seqs] : state.seen) {
    std::string p = "sseen " + std::to_string(from);
    for (const std::uint64_t s : seqs) p += ' ' + std::to_string(s);
    append(p);
  }
  for (const WalPendingSend& s : state.pending) {
    std::string p = "sout " + std::to_string(s.to) + ' ' +
                    std::to_string(s.seq) + ' ' + std::to_string(s.kind);
    for (const Element& e : s.elements) p += ' ' + encode_element(e);
    append(p);
  }
}

void WalWriter::snapshot(const WalNodeState& state) {
  snapshot_records(state);
  out_.flush();
}

void WalWriter::compact(const WalNodeState& state) {
  out_.close();
  out_.open(path_, std::ios::trunc);
  if (!out_) throw ProgramError("WAL: cannot rewrite " + path_);
  append("gfwal " + std::to_string(kWalVersion) + ' ' +
         std::to_string(node_));
  snapshot_records(state);
  append("round " + std::to_string(state.round));
  out_.flush();
  ++compactions_;
}

WalNodeState replay_node_wal(const std::string& path) {
  WalNodeState st;
  std::ifstream in(path, std::ios::binary);
  if (!in) return st;

  // Working state AHEAD of the last round marker; the returned state is the
  // checkpointed copy at the marker, so a torn mid-round suffix (records
  // whose effects were never acknowledged to anyone) is discarded wholesale.
  WalNodeState work;
  WalNodeState at_marker;
  bool have_marker = false;
  bool have_header = false;

  std::uint64_t good_bytes = 0;
  std::string line;
  while (std::getline(in, line)) {
    const bool complete = !in.eof();  // last line without '\n' is torn
    std::string payload;
    if (!complete || !unframe(line, &payload)) break;
    const std::vector<std::string> toks = split_tokens(payload);
    if (toks.empty()) break;
    try {
      const std::string& kind = toks.at(0);
      if (kind == "gfwal") {
        if (toks.size() < 3 || to_u64(toks.at(1)) != kWalVersion) break;
        work.node = to_u64(toks.at(2));
        work.valid = true;
        have_header = true;
      } else if (!have_header) {
        break;
      } else if (kind == "snap") {
        work.round = to_u64(toks.at(1));
        work.epoch = to_u64(toks.at(2));
        work.message_count = std::stoll(toks.at(3));
        work.next_seq = to_u64(toks.at(4));
        work.pull_pending = toks.at(5) == "1";
        work.shard = Multiset{};
        work.seen.clear();
        work.pending.clear();
      } else if (kind == "selem") {
        std::size_t pos = 1;
        for (Element& e : decode_elements(toks, pos)) {
          work.shard.add(std::move(e));
        }
      } else if (kind == "sseen") {
        auto& set = work.seen[to_u64(toks.at(1))];
        for (std::size_t i = 2; i < toks.size(); ++i) {
          set.insert(to_u64(toks[i]));
        }
      } else if (kind == "sout") {
        WalPendingSend s;
        s.to = to_u64(toks.at(1));
        s.seq = to_u64(toks.at(2));
        s.kind = static_cast<int>(to_u64(toks.at(3)));
        std::size_t pos = 4;
        s.elements = decode_elements(toks, pos);
        work.pending.push_back(std::move(s));
      } else if (kind == "fire") {
        std::size_t pos = 1;
        std::vector<Element> consumed = decode_elements(toks, pos);
        if (pos >= toks.size() || toks[pos] != ";") {
          throw ProgramError("WAL: fire without separator");
        }
        ++pos;
        std::vector<Element> produced = decode_elements(toks, pos);
        for (const Element& e : consumed) {
          if (!work.shard.remove_one(e)) {
            throw ProgramError("WAL: fire consumes absent element");
          }
        }
        for (Element& e : produced) work.shard.add(std::move(e));
      } else if (kind == "recv") {
        const std::size_t from = to_u64(toks.at(1));
        const std::uint64_t seq = to_u64(toks.at(2));
        if (work.seen[from].insert(seq).second) {
          std::size_t pos = 3;
          for (Element& e : decode_elements(toks, pos)) {
            work.shard.add(std::move(e));
          }
          --work.message_count;
        }
      } else if (kind == "pull") {
        const std::size_t from = to_u64(toks.at(1));
        const std::uint64_t seq = to_u64(toks.at(2));
        if (work.seen[from].insert(seq).second) {
          --work.message_count;
          work.pull_pending = true;
        }
      } else if (kind == "pulla") {
        work.pull_pending = false;
      } else if (kind == "send") {
        WalPendingSend s;
        s.to = to_u64(toks.at(1));
        s.seq = to_u64(toks.at(2));
        s.kind = static_cast<int>(to_u64(toks.at(3)));
        std::size_t pos = 4;
        s.elements = decode_elements(toks, pos);
        // The live path removes the payload from the shard BEFORE logging
        // the send (stirring's take_random, a pull answer, a rebalance all
        // extract first) — so `send` doubles as the shard-removal record.
        if (s.kind == 0) {
          for (const Element& e : s.elements) {
            if (!work.shard.remove_one(e)) {
              throw ProgramError("WAL: send ships absent element");
            }
          }
        }
        ++work.message_count;
        if (s.seq >= work.next_seq) work.next_seq = s.seq + 1;
        work.pending.push_back(std::move(s));
      } else if (kind == "ackd") {
        const std::uint64_t seq = to_u64(toks.at(1));
        std::erase_if(work.pending, [&](const WalPendingSend& s) {
          return s.seq == seq;
        });
      } else if (kind == "round") {
        work.round = to_u64(toks.at(1));
        at_marker = work;
        have_marker = true;
      } else {
        break;  // unknown record: treat as a tear, keep the intact prefix
      }
    } catch (const std::exception&) {
      break;  // malformed payload despite a good CRC: stop at the tear
    }
    good_bytes += line.size() + 1;
  }

  const auto file_size =
      static_cast<std::uint64_t>(std::filesystem::file_size(path));
  WalNodeState result = have_marker ? std::move(at_marker) : std::move(work);
  result.torn_bytes = file_size > good_bytes ? file_size - good_bytes : 0;
  if (result.torn_bytes > 0) {
    // Truncate on disk too, so appends after a crash-restart extend the
    // intact prefix instead of interleaving with garbage.
    in.close();
    std::error_code ec;
    std::filesystem::resize_file(path, good_bytes, ec);
  }
  return result;
}

std::string wal_node_path(const std::string& dir, std::size_t node) {
  return dir + "/node-" + std::to_string(node) + ".wal";
}

std::string wal_manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}

void write_manifest(const std::string& dir, const WalManifest& m) {
  const std::string payload =
      "manifest " + std::to_string(kWalVersion) + ' ' +
      std::to_string(m.round) + ' ' + std::to_string(m.epoch) + ' ' +
      std::to_string(m.token_gen) + ' ' + std::to_string(m.initial_nodes) +
      ' ' + m.states;
  // Write-to-temp + rename: the manifest is tiny and must never be torn.
  const std::string path = wal_manifest_path(dir);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw ProgramError("WAL: cannot write " + tmp);
    out << frame(payload);
  }
  std::filesystem::rename(tmp, path);
}

WalManifest read_manifest(const std::string& dir) {
  WalManifest m;
  std::ifstream in(wal_manifest_path(dir));
  if (!in) return m;
  std::string line;
  if (!std::getline(in, line)) return m;
  std::string payload;
  if (!unframe(line, &payload)) return m;
  const std::vector<std::string> toks = split_tokens(payload);
  if (toks.size() < 7 || toks[0] != "manifest" ||
      to_u64(toks[1]) != kWalVersion) {
    return m;
  }
  m.round = to_u64(toks[2]);
  m.epoch = to_u64(toks[3]);
  m.token_gen = to_u64(toks[4]);
  m.initial_nodes = to_u64(toks[5]);
  m.states = toks[6];
  m.valid = true;
  return m;
}

}  // namespace gammaflow::distrib
