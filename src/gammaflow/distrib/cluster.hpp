// Distributed Gamma: the paper's §IV research thread ("the implementation of
// Gamma distributed multisets" for IoT environments), as a deterministic
// round-based simulation.
//
// N nodes each hold a shard of the multiset and run LOCAL reaction matching
// (a reaction only fires on co-located elements — the physical constraint a
// distributed chemistry has). Between rounds, nodes exchange elements over a
// simulated ring network:
//
//   * active nodes fire up to `fires_per_round` local matches;
//   * nodes "stir the solution" by migrating a few random elements to random
//     peers (diffusion), so separated reaction partners eventually meet;
//   * a node that stays locally quiescent for `consolidate_after` rounds
//     ships its whole shard to its ring successor — shards snowball until
//     one node holds everything it needs to prove the global fixed point;
//   * global termination is detected with Safra's token algorithm: a
//     colored token circulates counting messages in flight; the initiator
//     declares termination only after a clean white lap with balanced
//     counters.
//
// The simulation is fully deterministic from the seed, making the protocol
// unit-testable — including the classic Safra pitfalls (a message in flight
// behind the token must blacken the next lap).
#pragma once

#include <cstdint>
#include <vector>

#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/gamma/multiset.hpp"
#include "gammaflow/gamma/program.hpp"

namespace gammaflow::distrib {

enum class Placement {
  Hash,        // element-hash sharding (scatters labels)
  RoundRobin,  // element i -> node i mod N
  Single,      // everything starts on node 0 (degenerate baseline)
};

struct ClusterOptions {
  std::size_t nodes = 4;
  std::uint64_t seed = 1;
  Placement placement = Placement::Hash;
  /// Local matches fired per node per round.
  std::size_t fires_per_round = 4;
  /// Random elements pushed to random peers per node per round (stirring).
  std::size_t migrations_per_round = 1;
  /// Rounds of local quiescence before a node ships its shard onward.
  std::size_t consolidate_after = 3;
  /// Network latency in rounds for every message (>= 1).
  std::size_t latency = 1;
  /// Safety cap; exceeded => EngineError.
  std::size_t max_rounds = 1'000'000;
};

struct ClusterResult {
  gamma::Multiset final_multiset;
  std::size_t rounds = 0;
  std::uint64_t fires = 0;
  std::uint64_t migrations = 0;       // elements moved (stir + consolidation)
  std::uint64_t messages = 0;         // network messages carried
  std::uint64_t token_laps = 0;       // Safra laps until termination
  std::vector<std::uint64_t> fires_by_node;
  std::vector<std::size_t> final_shard_sizes;
};

/// Runs `program` (single-stage) on `initial` distributed over the cluster.
/// The result multiset equals what a centralized engine computes whenever
/// the program is confluent (tested property). Throws ProgramError for
/// multi-stage programs and EngineError when max_rounds is exceeded.
[[nodiscard]] ClusterResult run_distributed(const gamma::Program& program,
                                            const gamma::Multiset& initial,
                                            const ClusterOptions& options = {});

}  // namespace gammaflow::distrib
