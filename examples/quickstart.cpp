// Quickstart: the paper's Fig. 1 end to end in ~60 lines of API.
//
//   1. build the dataflow graph for  m = (x + y) - (k * j)
//   2. run it on the tagged-token interpreter
//   3. convert it to a Gamma program with Algorithm 1
//   4. run the Gamma program on the multiset-rewriting engine
//   5. check both observables agree (the equivalence claim)
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "gammaflow/dataflow/dot.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/equivalence.hpp"

using namespace gammaflow;

int main() {
  // -- 1. the Fig. 1 graph ------------------------------------------------
  dataflow::GraphBuilder b;
  const auto x = b.constant(Value(1), "x");
  const auto y = b.constant(Value(5), "y");
  const auto k = b.constant(Value(3), "k");
  const auto j = b.constant(Value(2), "j");

  const auto r1 = b.arith(expr::BinOp::Add, "R1");
  const auto r2 = b.arith(expr::BinOp::Mul, "R2");
  const auto r3 = b.arith(expr::BinOp::Sub, "R3");
  b.connect(x, r1, 0, "A1");
  b.connect(y, r1, 1, "B1");
  b.connect(k, r2, 0, "C1");
  b.connect(j, r2, 1, "D1");
  b.connect(dataflow::GraphBuilder::out(r1), r3, 0, "B2");
  b.connect(dataflow::GraphBuilder::out(r2), r3, 1, "C2");
  b.connect(dataflow::GraphBuilder::out(r3), b.output("m"), 0, "m");
  const dataflow::Graph graph = std::move(b).build();

  std::cout << "== dataflow graph ==\n" << graph << '\n';

  // -- 2. run it ------------------------------------------------------------
  const dataflow::Interpreter interp;
  const auto df = interp.run(graph);
  std::cout << "dataflow result: m = " << df.single_output("m") << "  ("
            << df.fires << " firings)\n\n";

  // -- 3. Algorithm 1 ------------------------------------------------------
  const translate::GammaConversion conv = translate::dataflow_to_gamma(graph);
  std::cout << "== converted Gamma program (Algorithm 1) ==\n"
            << conv.program << "\n\n";
  std::cout << "initial multiset M = " << conv.initial << "\n\n";

  // -- 4. run the Gamma program --------------------------------------------
  const gamma::IndexedEngine engine;
  const auto gm = engine.run(conv.program, conv.initial);
  std::cout << "gamma final multiset = " << gm.final_multiset << "  ("
            << gm.steps << " reactions fired)\n\n";

  // -- 5. equivalence -------------------------------------------------------
  const auto report = translate::check_equivalence_seeds(graph, 1, 10);
  std::cout << "equivalent across 10 seeds: "
            << (report.equivalent ? "YES" : "NO") << '\n';
  if (!report.equivalent) {
    std::cout << report.detail << '\n';
    return 1;
  }

  std::cout << "\nGraphviz (pipe into `dot -Tpng`):\n"
            << dataflow::to_dot(graph, "fig1");
  return 0;
}
