// Fig. 2 end to end: the loop  for(i=z; i>0; i--) x = x + y  as a dynamic
// dataflow graph with steer/inctag control, converted to the paper's nine
// reactions, executed on every engine, plus the §III-A3 reduced form.
//
// Usage: loop_to_gamma [z] [y] [x]     (defaults: 4 5 100)
#include <cstdlib>
#include <iostream>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"
#include "gammaflow/translate/equivalence.hpp"

using namespace gammaflow;

int main(int argc, char** argv) {
  const std::int64_t z = argc > 1 ? std::atoll(argv[1]) : 4;
  const std::int64_t y = argc > 2 ? std::atoll(argv[2]) : 5;
  const std::int64_t x = argc > 3 ? std::atoll(argv[3]) : 100;

  std::cout << "loop: for(i=" << z << "; i>0; i--) x = x + " << y
            << "   starting x = " << x << '\n';
  std::cout << "expected x_final = " << x + z * y << "\n\n";

  // The paper's graph plus an observer on R17's FALSE port so the loop's
  // result is visible (the printed Fig. 2 discards it).
  const dataflow::Graph graph = paper::fig2_graph(z, y, x, /*observe=*/true);

  const dataflow::Interpreter interp;
  const auto df = interp.run(graph);
  std::cout << "dataflow interpreter : x_final = "
            << df.single_output("x_final") << "  (" << df.fires
            << " firings, " << df.wavefronts.size() << " wavefronts)\n";

  dataflow::DfRunOptions dopts;
  dopts.workers = 4;
  const auto dfp = dataflow::ParallelEngine().run(graph, dopts);
  std::cout << "dataflow parallel PEs: x_final = "
            << dfp.single_output("x_final") << '\n';

  const translate::GammaConversion conv = translate::dataflow_to_gamma(graph);
  std::cout << "\n== Gamma program from Algorithm 1 ("
            << conv.program.reaction_count() << " reactions) ==\n"
            << conv.program << "\n\n";

  auto show = [&](const gamma::Engine& engine) {
    gamma::RunOptions gopts;
    gopts.workers = 3;
    const auto run = engine.run(conv.program, conv.initial, gopts);
    const auto observed = run.final_multiset.with_label("x_final");
    std::cout << "gamma " << engine.name() << " engine";
    for (std::size_t pad = engine.name().size(); pad < 11; ++pad) {
      std::cout << ' ';
    }
    std::cout << ": x_final element = "
              << (observed.empty() ? std::string("<none>")
                                   : observed.front().to_string())
              << "  (" << run.steps << " reactions fired)\n";
  };
  show(gamma::SequentialEngine{});
  show(gamma::IndexedEngine{});
  show(gamma::ParallelEngine{});

  const auto report = translate::check_equivalence_seeds(graph, 1, 5);
  std::cout << "\nequivalence across 5 seeds: "
            << (report.equivalent ? "YES" : "NO") << '\n';

  // The paper's reduced six-reaction program (§III-A3). Note its final
  // multiset keeps the result inside the lingering C12 element.
  const auto reduced = gamma::IndexedEngine().run(
      paper::fig2_reduced_gamma(), paper::fig2_initial(z, y, x));
  std::cout << "\nreduced Rd11..Rd16 final multiset = "
            << reduced.final_multiset << '\n';
  return report.equivalent ? 0 : 1;
}
