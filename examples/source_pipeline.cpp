// The complete pipeline the paper implies but never builds: start from the
// von Neumann source code of §III-A1, end in executable chemistry.
//
//   C-like source ──frontend──► dynamic dataflow graph (Fig. 2 pattern)
//        │                             │
//        │                       Algorithm 1
//        ▼                             ▼
//   interpreter result    ==    Gamma program on any engine
//                                      │
//                                 distributed cluster (SIV)
//
// Usage: source_pipeline [file.src]   (defaults to the paper's loop example)
#include <fstream>
#include <iostream>
#include <sstream>

#include "gammaflow/dataflow/dot.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/frontend/compile.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/df_to_gamma.hpp"

using namespace gammaflow;

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  } else {
    // The paper's §III-A1 example 2 (with its evident i<0 typo corrected
    // to i>0, as the figure's "comparison with zero" implies).
    source = R"(
      int y = 5;
      int z = 4;
      int x = 100;
      for (i = z; i > 0; i--)
        x = x + y;
      output x;
    )";
  }
  std::cout << "== source ==\n" << source << '\n';

  // 1. compile
  const dataflow::Graph graph = frontend::compile_source(source);
  std::cout << "== compiled dataflow graph ==\n" << graph << '\n';

  // 2. run as dataflow
  const auto df = dataflow::Interpreter().run(graph);
  std::cout << "== dataflow execution ==\n";
  for (const auto& [name, tokens] : df.outputs) {
    std::cout << name << " =";
    for (const Value& v : df.output_values(name)) std::cout << ' ' << v;
    std::cout << '\n';
  }
  std::cout << df.fires << " firings over " << df.wavefronts.size()
            << " wavefronts\n\n";

  // 3. Algorithm 1
  const auto conv = translate::dataflow_to_gamma(graph);
  std::cout << "== Gamma program (Algorithm 1, "
            << conv.program.reaction_count() << " reactions) ==\n"
            << conv.program << "\n\nM = " << conv.initial << "\n\n";

  // 4. run as chemistry, centralized and distributed
  const auto gm = gamma::IndexedEngine().run(conv.program, conv.initial);
  std::cout << "== centralized rewriting ==\nfinal multiset (observables): ";
  for (const auto& [output, labels] : conv.output_labels) {
    for (const std::string& label : labels) {
      for (const auto& e : gm.final_multiset.with_label(label)) {
        std::cout << output << " = " << e.value() << "  ";
      }
    }
  }
  std::cout << '(' << gm.steps << " reactions)\n\n";

  distrib::ClusterOptions copts;
  copts.nodes = 4;
  const auto cluster =
      distrib::run_distributed(conv.program, conv.initial, copts);
  std::cout << "== distributed rewriting (4 nodes) ==\nobservables: ";
  for (const auto& [output, labels] : conv.output_labels) {
    for (const std::string& label : labels) {
      for (const auto& e : cluster.final_multiset.with_label(label)) {
        std::cout << output << " = " << e.value() << "  ";
      }
    }
  }
  std::cout << '(' << cluster.rounds << " rounds, " << cluster.messages
            << " messages)\n";
  return 0;
}
