// Round-trip explorer: generate random dataflow graphs, push them through
// Algorithm 1 (graph -> Gamma), the reconstruction pass (Gamma -> graph),
// and the reduction/expansion passes, verifying observables at every hop.
// Prints one worked example in full, then a sweep summary.
//
// Usage: roundtrip_explorer [graphs] [leaves] [seed]   (defaults 20 8 1)
#include <cstdlib>
#include <iostream>

#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/paper/figures.hpp"
#include "gammaflow/translate/equivalence.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"
#include "gammaflow/translate/reduce.hpp"

using namespace gammaflow;

int main(int argc, char** argv) {
  const std::size_t graphs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20;
  const std::size_t leaves = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::uint64_t seed0 = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  // ---- one worked example, printed in full --------------------------------
  const dataflow::Graph sample = paper::random_expression_graph(4, seed0);
  std::cout << "== sample graph ==\n" << sample << '\n';

  const auto conv = translate::dataflow_to_gamma(sample);
  std::cout << "== Algorithm 1 ==\n" << conv.program << "\n\nM = "
            << conv.initial << "\n\n";

  const auto fused = translate::fuse_reactions(conv.program, conv.initial);
  std::cout << "== fused (SIII-A3 reduction) ==\n" << fused << "\n\n";

  const auto expanded = translate::expand_program(fused);
  std::cout << "== re-expanded ==\n" << expanded << "\n\n";

  const dataflow::Graph rebuilt =
      translate::reconstruct_graph(conv.program, conv.initial);
  std::cout << "== reconstructed graph (future-work pass) ==\n"
            << rebuilt << '\n';

  // ---- sweep ---------------------------------------------------------------
  const dataflow::Interpreter interp;
  const gamma::IndexedEngine engine;
  std::size_t ok = 0;
  for (std::size_t g = 0; g < graphs; ++g) {
    const std::uint64_t seed = seed0 + g;
    const dataflow::Graph graph = paper::random_expression_graph(leaves, seed);
    const Value expected = interp.run(graph).single_output("m");

    const auto c = translate::dataflow_to_gamma(graph);
    bool all_ok = true;
    auto check = [&](const char* hop, const gamma::Program& p) {
      const auto run = engine.run(p, c.initial);
      const auto m = run.final_multiset.with_label("m");
      const bool good = m.size() == 1 && m[0].value() == expected;
      if (!good) {
        std::cout << "  seed " << seed << " MISMATCH at " << hop << '\n';
        all_ok = false;
      }
    };
    check("convert", c.program);
    check("fuse", translate::fuse_reactions(c.program, c.initial));
    check("fuse+expand", translate::expand_program(
                             translate::fuse_reactions(c.program, c.initial)));

    const dataflow::Graph back =
        translate::reconstruct_graph(c.program, c.initial);
    if (interp.run(back).single_output("m") != expected) {
      std::cout << "  seed " << seed << " MISMATCH at reconstruct\n";
      all_ok = false;
    }
    ok += all_ok;
  }
  std::cout << "sweep: " << ok << '/' << graphs << " graphs ("
            << leaves << " leaves each) survived every hop with identical"
            << " observables\n";
  return ok == graphs ? 0 : 1;
}
