// Classic Gamma programming in the DSL: the prime sieve and min/max written
// as one-reaction chemical programs, executed by multiset rewriting, and —
// where Algorithm 2 permits — run as mapped dataflow rounds (Fig. 4).
//
// Usage: gamma_primes [limit]          (default 50)
#include <cstdlib>
#include <iostream>

#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/gamma_to_df.hpp"

using namespace gammaflow;

int main(int argc, char** argv) {
  const std::int64_t limit = argc > 1 ? std::atoll(argv[1]) : 50;

  // --- the sieve: delete y whenever some x divides it ---------------------
  const gamma::Program sieve = gamma::dsl::parse_program(R"(
    # one reaction is the whole program: multiples dissolve
    Rsieve = replace x, y
             by [x]
             where (y % x == 0) and (x > 1)
  )");
  gamma::Multiset numbers;
  for (std::int64_t i = 2; i <= limit; ++i) numbers.add(gamma::Element{Value(i)});

  const gamma::IndexedEngine engine;
  const auto primes = engine.run(sieve, numbers);
  std::cout << "primes <= " << limit << ": " << primes.final_multiset << '\n';
  std::cout << "(" << primes.steps << " reactions fired to reach the fixpoint)\n\n";

  // --- min & max: Eq. (2) of the paper ------------------------------------
  const auto rmin =
      gamma::dsl::parse_reaction("Rmin = replace x, y by x where x < y");
  const auto rmax =
      gamma::dsl::parse_reaction("Rmax = replace x, y by x where x > y");
  gamma::Multiset sample;
  for (std::int64_t v : {42, 7, 99, 3, 56, 12, 71, 28}) {
    sample.add(gamma::Element{Value(v)});
  }
  std::cout << "sample multiset " << sample << '\n';
  std::cout << "min via rewriting: "
            << engine.run(gamma::Program(rmin), sample).final_multiset << '\n';
  std::cout << "max via rewriting: "
            << engine.run(gamma::Program(rmax), sample).final_multiset << "\n\n";

  // --- the same min reaction as MAPPED DATAFLOW (Fig. 4) ------------------
  // Algorithm 2 turns the reaction into a graph; the Fig. 4 mapping
  // replicates it over the multiset; rounds iterate to the fixpoint.
  const auto mapped = translate::instantiate_mapping(rmin, sample);
  std::cout << "Fig. 4 mapping of Rmin over " << sample.size()
            << " elements: " << mapped.instances << " graph instances, "
            << mapped.leftover << " leftover (graph has "
            << mapped.graph.node_count() << " nodes)\n";
  const auto rounds = translate::map_until_fixpoint(rmin, sample, /*seed=*/7);
  std::cout << "mapped dataflow rounds: result = " << rounds.result << " in "
            << rounds.rounds << " rounds / " << rounds.total_fires
            << " node firings\n\n";

  // --- gcd as a staged program: reduce pairwise, then dedupe --------------
  const gamma::Program gcd_then_one = gamma::dsl::parse_program(R"(
    Rgcd = replace x, y by [x - y], [y] where x > y ;
    Rdedupe = replace x, x by [x]
  )");
  gamma::Multiset nums{gamma::Element{Value(36)}, gamma::Element{Value(60)},
                       gamma::Element{Value(96)}};
  std::cout << "gcd" << nums << " = "
            << engine.run(gcd_then_one, nums).final_multiset
            << "   (two sequential stages: ';' composition)\n";
  return 0;
}
