// Sensor data fusion — the application domain the paper and its companion
// work (ref [1], data fusion for target tracking) motivate for Gamma, and
// the IoT setting §I calls out.
//
// Two complementary styles on the same problem:
//
//   A. A STATIC fusion pipeline (fixed 8 sensors) written as a dataflow
//      graph: a binary averaging tree, a threshold comparison, and a steer
//      routing the fused estimate to 'alarm' or 'ok'. Algorithm 1 converts
//      it to Gamma and the equivalence check validates both sides.
//
//   B. A DYNAMIC fusion rule (any number of readings) written natively in
//      Gamma: one reaction dissolves pairs of readings into their average —
//      impossible to express as a fixed graph, natural as chemistry. Run by
//      multiset rewriting on all three engines.
//
// Usage: iot_fusion [threshold]        (default 50)
#include <cstdlib>
#include <iostream>

#include "gammaflow/common/rng.hpp"
#include "gammaflow/dataflow/engine.hpp"
#include "gammaflow/distrib/cluster.hpp"
#include "gammaflow/gamma/dsl/parser.hpp"
#include "gammaflow/gamma/engine.hpp"
#include "gammaflow/translate/equivalence.hpp"

using namespace gammaflow;

namespace {

/// Part A: 8 sensor constants -> averaging tree -> threshold steer.
dataflow::Graph fusion_pipeline(const std::vector<double>& readings,
                                double threshold) {
  dataflow::GraphBuilder b;
  std::vector<dataflow::GraphBuilder::Port> level;
  level.reserve(readings.size());
  for (std::size_t i = 0; i < readings.size(); ++i) {
    level.push_back(
        b.constant(Value(readings[i]), "sensor" + std::to_string(i)));
  }
  // Binary averaging tree: avg(a, b) = (a + b) / 2.
  while (level.size() > 1) {
    std::vector<dataflow::GraphBuilder::Port> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const auto sum = b.arith(expr::BinOp::Add, level[i], level[i + 1]);
      next.push_back(b.arith_imm(expr::BinOp::Div, sum, Value(2.0)));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  const auto fused = level.front();
  const auto hot = b.cmp_imm(expr::BinOp::Gt, fused, Value(threshold), "hot");
  const auto route = b.steer(fused, hot, "route");
  b.connect(dataflow::GraphBuilder::true_out(route), b.output("alarm"), 0,
            "alarm");
  b.connect(dataflow::GraphBuilder::false_out(route), b.output("ok"), 0, "ok");
  return std::move(b).build();
}

}  // namespace

int main(int argc, char** argv) {
  const double threshold = argc > 1 ? std::atof(argv[1]) : 50.0;

  // Synthetic sensor field: a warm target near reading 60 with noise.
  Rng rng(2026);
  std::vector<double> readings;
  std::cout << "sensor readings:";
  for (int i = 0; i < 8; ++i) {
    readings.push_back(55.0 + 10.0 * rng.uniform());
    std::cout << ' ' << readings.back();
  }
  std::cout << "\nthreshold: " << threshold << "\n\n";

  // ---- A. static dataflow pipeline + Algorithm 1 -------------------------
  const dataflow::Graph pipeline = fusion_pipeline(readings, threshold);
  const auto df = dataflow::Interpreter().run(pipeline);
  const bool alarmed = df.outputs.contains("alarm");
  std::cout << "[static pipeline] fused estimate = "
            << (alarmed ? df.single_output("alarm") : df.single_output("ok"))
            << "  -> " << (alarmed ? "ALARM" : "ok") << '\n';

  const auto report = translate::check_equivalence_seeds(pipeline, 1, 5);
  std::cout << "[static pipeline] dataflow == Gamma conversion: "
            << (report.equivalent ? "YES" : "NO") << '\n';
  const auto conv = translate::dataflow_to_gamma(pipeline);
  std::cout << "[static pipeline] converted program has "
            << conv.program.reaction_count() << " reactions over "
            << conv.initial.size() << " initial elements\n\n";

  // ---- B. dynamic Gamma fusion -------------------------------------------
  // Readings arrive as ['r', value] elements; fusion dissolves pairs into
  // averages until one estimate remains, then a staged classifier fires.
  const gamma::Program fusion = gamma::dsl::parse_program(R"(
    Fuse = replace [a, 'r'], [b, 'r']
           by [(a + b) / 2.0, 'r'] ;
    Classify = replace [e, 'r']
               by [e, 'alarm'] if e > 50.0
               by [e, 'ok'] else
  )");
  gamma::Multiset field;
  for (const double r : readings) {
    field.add(gamma::Element::labeled(Value(r), "r"));
  }

  for (const auto* engine :
       std::initializer_list<const gamma::Engine*>{
           new gamma::SequentialEngine, new gamma::IndexedEngine,
           new gamma::ParallelEngine}) {
    gamma::RunOptions opts;
    opts.workers = 3;
    opts.seed = 11;
    const auto run = engine->run(fusion, field, opts);
    std::cout << "[dynamic fusion, " << engine->name()
              << "] final = " << run.final_multiset << '\n';
    delete engine;
  }
  std::cout << "\n(note: pairwise averaging is order-sensitive — engines may"
               " fuse in different orders,\n which is exactly the Gamma"
               " nondeterminism the paper describes; the CLASSIFICATION is"
               " stable.)\n\n";

  // ---- C. the IoT deployment (paper SIV): a DISTRIBUTED multiset ---------
  // Each sensor is a node of a simulated cluster holding its own readings;
  // fusion reactions run where their operands happen to be, elements
  // migrate ("the solution is stirred"), and Safra's algorithm detects the
  // global steady state — the paper's "Gamma distributed multisets" thread.
  distrib::ClusterOptions copts;
  copts.nodes = 4;
  copts.seed = 2026;
  copts.placement = distrib::Placement::RoundRobin;  // one shard per sensor hub
  const auto cluster = distrib::run_distributed(
      gamma::dsl::parse_program(
          "Fuse = replace [a, 'r'], [b, 'r'] by [(a + b) / 2.0, 'r']"),
      field, copts);
  std::cout << "[distributed fusion, " << copts.nodes
            << " IoT nodes] final = " << cluster.final_multiset << '\n'
            << "  " << cluster.rounds << " network rounds, "
            << cluster.messages << " messages, " << cluster.migrations
            << " element migrations, Safra terminated after "
            << cluster.token_laps << " token laps\n"
            << "  per-node reaction counts:";
  for (const auto f : cluster.fires_by_node) std::cout << ' ' << f;
  std::cout << '\n';
  return 0;
}
